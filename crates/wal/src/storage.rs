//! Storage abstraction: a directory of append-only files.
//!
//! The WAL itself never touches `std::fs` directly — it speaks to a
//! [`WalDir`] (create/list/read/remove/truncate) handing out [`WalFile`]s
//! (append/sync). Two implementations ship:
//!
//! * [`FsDir`] — real files under a root directory; what the serving
//!   path uses. File contents are made durable with `sync_data`, and
//!   directory *entries* with an fsync of the directory itself after
//!   every create/remove — without that, power loss (unlike `kill -9`)
//!   can lose a freshly rotated segment or checkpoint marker whose
//!   contents were already synced, and recovery would see a clean
//!   shorter chain instead of refusing.
//! * [`MemDir`] — an in-memory map with an optional
//!   [`CrashFuse`](tsad_faults::CrashFuse) so the crash harness can kill
//!   the writer at any byte offset of its write trace and then recover
//!   from exactly the bytes that made it "to disk". Writes are modeled
//!   write-through (every admitted byte survives), which is the adversarial
//!   case for torn records; the fsync-policy durability claims are about
//!   which *ACKs* may be trusted, and the harness checks those against the
//!   per-policy contract.
//!
//! The fuse is byte-granular on appends; metadata operations (create,
//! remove, truncate) fail once the fuse has tripped but are otherwise
//! atomic — a crash "inside" a metadata operation is not modeled.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use tsad_faults::CrashFuse;

/// An append-only file handle.
pub trait WalFile: Send {
    /// Appends `buf` at the end of the file. All-or-nothing on success;
    /// on failure any prefix may have been applied (torn write).
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Forces previously appended bytes to durable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// A flat directory of named append-only files.
pub trait WalDir: Send {
    /// The file handle type this directory hands out.
    type File: WalFile;

    /// Creates (or truncates) `name` and opens it for appending.
    fn create(&self, name: &str) -> io::Result<Self::File>;
    /// Opens an existing `name` for appending at its current end.
    fn open_append(&self, name: &str) -> io::Result<Self::File>;
    /// All file names in the directory, sorted.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Reads a whole file.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Current size of `name` in bytes.
    fn size(&self, name: &str) -> io::Result<u64>;
    /// Deletes `name`.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// Shrinks `name` to `len` bytes (recovery's torn-tail cut).
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
}

// ─── real filesystem ────────────────────────────────────────────────────

/// A [`WalDir`] over a real directory.
#[derive(Debug)]
pub struct FsDir {
    root: PathBuf,
}

impl FsDir {
    /// Opens (creating if needed) the directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Makes directory-entry changes (create/remove) durable. A file's
    /// `sync_data` persists its *contents*; the entry naming it lives in
    /// the directory and survives power loss only after the directory
    /// itself is fsynced.
    fn sync_dir(&self) -> io::Result<()> {
        #[cfg(unix)]
        {
            File::open(&self.root)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            // Directories cannot be opened as files here; entry
            // durability is best-effort (matches pre-existing behavior).
            Ok(())
        }
    }
}

/// File handle handed out by [`FsDir`].
#[derive(Debug)]
pub struct FsFile {
    file: File,
}

impl WalFile for FsFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl WalDir for FsDir {
    type File = FsFile;

    fn create(&self, name: &str) -> io::Result<FsFile> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.root.join(name))?;
        // The entry must be durable before any record in this file is
        // ACKed; rotation and checkpointing are cold paths, so the extra
        // fsync is off the per-batch budget.
        self.sync_dir()?;
        Ok(FsFile { file })
    }

    fn open_append(&self, name: &str) -> io::Result<FsFile> {
        let file = OpenOptions::new().append(true).open(self.root.join(name))?;
        Ok(FsFile { file })
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.root.join(name))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.root.join(name))?.len())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.root.join(name))?;
        self.sync_dir()
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(self.root.join(name))?;
        file.set_len(len)?;
        // Recovery's torn-tail cut must itself survive a crash: resumed
        // appends assume the torn bytes are gone.
        file.sync_all()
    }
}

// ─── in-memory shim with crash injection ────────────────────────────────

fn crash_err() -> io::Error {
    io::Error::other("crash fuse tripped: simulated process death")
}

/// An in-memory [`WalDir`] guarded by a [`CrashFuse`]. Cloning shares the
/// underlying files *and* the fuse; [`MemDir::survivor`] shares the files
/// but replaces the fuse — that is "the machine after the reboot".
#[derive(Debug, Clone)]
pub struct MemDir {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
    fuse: Arc<CrashFuse>,
}

impl Default for MemDir {
    fn default() -> Self {
        Self::new()
    }
}

impl MemDir {
    /// An empty directory with an unlimited fuse (healthy process).
    pub fn new() -> Self {
        Self::with_fuse(Arc::new(CrashFuse::unlimited()))
    }

    /// An empty directory whose writes are admitted by `fuse`.
    pub fn with_fuse(fuse: Arc<CrashFuse>) -> Self {
        Self {
            files: Arc::new(Mutex::new(BTreeMap::new())),
            fuse,
        }
    }

    /// A view of the same files through a fresh unlimited fuse: the state
    /// a recovering process observes after the crash.
    pub fn survivor(&self) -> Self {
        Self {
            files: Arc::clone(&self.files),
            fuse: Arc::new(CrashFuse::unlimited()),
        }
    }

    /// Snapshot of one file's bytes (test inspection).
    pub fn file(&self, name: &str) -> Option<Vec<u8>> {
        self.files.lock().unwrap().get(name).cloned()
    }

    /// Overwrites one file's bytes wholesale (test corruption).
    pub fn put(&self, name: &str, bytes: Vec<u8>) {
        self.files.lock().unwrap().insert(name.to_string(), bytes);
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files
            .lock()
            .unwrap()
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.fuse.tripped() {
            Err(crash_err())
        } else {
            Ok(())
        }
    }
}

/// File handle handed out by [`MemDir`].
#[derive(Debug)]
pub struct MemFile {
    name: String,
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
    fuse: Arc<CrashFuse>,
}

impl WalFile for MemFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let admitted = self.fuse.admit(buf.len());
        if admitted.allowed > 0 {
            let mut files = self.files.lock().unwrap();
            match files.get_mut(&self.name) {
                Some(data) => data.extend_from_slice(&buf[..admitted.allowed]),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("{}: removed while open", self.name),
                    ))
                }
            }
        }
        if admitted.crashed {
            Err(crash_err())
        } else {
            Ok(())
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.fuse.tripped() {
            Err(crash_err())
        } else {
            Ok(())
        }
    }
}

impl WalDir for MemDir {
    type File = MemFile;

    fn create(&self, name: &str) -> io::Result<MemFile> {
        self.check_alive()?;
        self.files
            .lock()
            .unwrap()
            .insert(name.to_string(), Vec::new());
        Ok(MemFile {
            name: name.to_string(),
            files: Arc::clone(&self.files),
            fuse: Arc::clone(&self.fuse),
        })
    }

    fn open_append(&self, name: &str) -> io::Result<MemFile> {
        self.check_alive()?;
        if !self.files.lock().unwrap().contains_key(name) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{name}: no such file"),
            ));
        }
        Ok(MemFile {
            name: name.to_string(),
            files: Arc::clone(&self.files),
            fuse: Arc::clone(&self.fuse),
        })
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.check_alive()?;
        Ok(self.files.lock().unwrap().keys().cloned().collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        self.files
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{name}: no such file")))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        self.check_alive()?;
        self.files
            .lock()
            .unwrap()
            .get(name)
            .map(|v| v.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{name}: no such file")))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.check_alive()?;
        self.files
            .lock()
            .unwrap()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{name}: no such file")))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.check_alive()?;
        let mut files = self.files.lock().unwrap();
        let data = files.get_mut(name).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("{name}: no such file"))
        })?;
        data.truncate(len as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdir_torn_write_keeps_the_admitted_prefix() {
        let dir = MemDir::with_fuse(Arc::new(CrashFuse::new(5)));
        let mut f = dir.create("a").unwrap();
        assert!(f.append(b"0123456789").is_err());
        // the process is dead: reads through the same dir fail...
        assert!(dir.read("a").is_err());
        // ...but the survivor sees exactly the admitted 5 bytes
        assert_eq!(dir.survivor().read("a").unwrap(), b"01234");
    }

    #[test]
    fn memdir_metadata_ops_fail_after_the_crash() {
        let dir = MemDir::with_fuse(Arc::new(CrashFuse::new(0)));
        let mut f = MemDir::new().create("x").unwrap(); // unrelated live file
        assert!(f.append(b"ok").is_ok());
        assert!(dir.create("a").is_err());
        assert!(dir.list().is_err());
        assert!(dir.remove("a").is_err());
        assert!(dir.truncate("a", 0).is_err());
    }

    #[test]
    fn fsdir_roundtrip_append_truncate_remove() {
        let root = std::env::temp_dir().join(format!("tsad-wal-fsdir-{}", std::process::id()));
        let dir = FsDir::open(&root).unwrap();
        let mut f = dir.create("seg").unwrap();
        f.append(b"hello world").unwrap();
        f.sync().unwrap();
        assert_eq!(dir.read("seg").unwrap(), b"hello world");
        assert_eq!(dir.size("seg").unwrap(), 11);
        dir.truncate("seg", 5).unwrap();
        assert_eq!(dir.read("seg").unwrap(), b"hello");
        assert_eq!(dir.list().unwrap(), vec!["seg".to_string()]);
        dir.remove("seg").unwrap();
        assert!(dir.list().unwrap().is_empty());
        std::fs::remove_dir_all(&root).ok();
    }
}
