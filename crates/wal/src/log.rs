//! The log itself: segment format, append path, recovery, truncation.
//!
//! ## On-disk layout
//!
//! A log is a flat directory of segment files `wal-<first_seq>.seg` plus
//! at most one checkpoint marker `ckpt-<seq>.tsck`. Every segment starts
//! with a header:
//!
//! ```text
//! magic "TSWL" · version u32 · first_seq u64 · fp_len u32 · fingerprint
//! · digest u64                       (FNV-1a over everything before it)
//! ```
//!
//! followed by records:
//!
//! ```text
//! len u32 · kind u8 · seq u64 · payload[len] · digest u64
//! ```
//!
//! `kind` is `DATA` (payload = `len/16` entries of `series_id u64` +
//! `f64::to_bits` value, the batch for sequence number `seq`) or `SEAL`
//! (empty payload, written as the final record when a segment rotates;
//! its `seq` is the first sequence number of the *next* segment). All
//! integers are little-endian; digests are [`tsad_core::ckpt::digest64`]
//! (the TSCK convention).
//!
//! ## The torn-tail rule
//!
//! Only the **last** segment of a log may end mid-record: that is what a
//! crash during an append leaves behind. Recovery truncates the tail at
//! the first byte that does not parse as a complete, digest-valid,
//! correctly-sequenced record and reports how many bytes it dropped — it
//! never panics and never guesses. Any scan anomaly in a *sealed* (non-
//! last) segment cannot be produced by a crash, only by corruption or
//! operator error, so recovery refuses with a precise [`WalError`] rather
//! than silently dropping admitted data.

use std::io;
use std::time::Instant;

use tsad_core::ckpt::{digest64, CkptReader, CkptWriter};

use crate::storage::{WalDir, WalFile};
use crate::{WAL_APPEND_NS, WAL_FSYNC_NS, WAL_GROUP_COMMIT_BATCHES, WAL_RECOVERY_TRUNCATED_BYTES};

const MAGIC: [u8; 4] = *b"TSWL";
const VERSION: u32 = 1;
const REC_DATA: u8 = 1;
const REC_SEAL: u8 = 2;
/// Fixed bytes around a record payload: `len u32 + kind u8 + seq u64`
/// before, `digest u64` after.
const REC_HEAD: usize = 4 + 1 + 8;
const REC_TRAILER: usize = 8;
/// Bytes per `(series_id, value)` entry in a `DATA` payload.
pub const ENTRY_BYTES: usize = 16;
/// Size of a `SEAL` record.
const SEAL_BYTES: u64 = (REC_HEAD + REC_TRAILER) as u64;
/// Most points one record can carry: the record length field is a `u32`
/// counting payload bytes, so anything larger would silently wrap it and
/// write a self-disagreeing record. [`Wal::append`] refuses bigger
/// batches up front (`InvalidInput`) instead.
pub const MAX_RECORD_POINTS: usize = u32::MAX as usize / ENTRY_BYTES;

fn seg_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.seg")
}

fn ckpt_name(seq: u64) -> String {
    format!("ckpt-{seq:020}.tsck")
}

fn parse_seg_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn parse_ckpt_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".tsck")?
        .parse()
        .ok()
}

// ─── configuration ──────────────────────────────────────────────────────

/// When appended records are forced to durable storage.
#[derive(Debug, Clone, PartialEq)]
pub enum FsyncPolicy {
    /// `fsync` after every batch: an ACK implies the batch survives any
    /// crash. The strongest (and slowest) policy.
    PerBatch,
    /// `fsync` once per group: after `batches` appends or once the oldest
    /// unsynced batch is `max_pending_micros` old, whichever comes first.
    /// A crash may lose up to one group of ACKed batches.
    ///
    /// The age bound is evaluated on the append path and by [`Wal::tick`];
    /// if appends stop *and* nothing drives `tick` (the ingest server
    /// calls it on idle poll passes), already-appended batches stay
    /// unsynced until the next append or an explicit [`Wal::flush`].
    GroupCommit {
        /// Sync after this many unsynced batches.
        batches: u32,
        /// ... or once the oldest unsynced batch is this old.
        max_pending_micros: u64,
    },
    /// Never `fsync` on the append path (segment seals still sync). A
    /// crash may lose everything since the last seal or checkpoint.
    Off,
}

impl FsyncPolicy {
    /// Stable label used in benchmark documents.
    pub fn label(&self) -> &'static str {
        match self {
            FsyncPolicy::PerBatch => "per-batch",
            FsyncPolicy::GroupCommit { .. } => "group",
            FsyncPolicy::Off => "off",
        }
    }
}

/// Log configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotation threshold: a segment is sealed once appending the next
    /// record (plus the seal) would push it past this size. Every segment
    /// holds at least one record regardless.
    pub segment_bytes: u64,
    /// Durability policy for the append path.
    pub policy: FsyncPolicy,
    /// Detector-factory fingerprint stamped into every segment header;
    /// recovery refuses a log recorded under a different fingerprint
    /// (replaying z-score batches into a CUSUM fleet is not a recovery,
    /// it is a silent corruption).
    pub fingerprint: String,
}

impl WalConfig {
    /// Defaults: 64 MiB segments, per-batch fsync.
    pub fn new(fingerprint: impl Into<String>) -> Self {
        Self {
            segment_bytes: 64 << 20,
            policy: FsyncPolicy::PerBatch,
            fingerprint: fingerprint.into(),
        }
    }
}

// ─── errors ─────────────────────────────────────────────────────────────

/// Recovery / append failures.
#[derive(Debug)]
pub enum WalError {
    /// Underlying storage failure (including simulated crashes).
    Io(io::Error),
    /// A sealed segment failed its scan — refusal, not truncation.
    Corrupt {
        /// Segment file name.
        segment: String,
        /// Byte offset of the first anomaly.
        offset: u64,
        /// What exactly failed to parse or verify.
        detail: String,
    },
    /// The log was recorded under a different detector-factory
    /// fingerprint than the one recovery is asked to replay into.
    FingerprintMismatch {
        /// Segment whose header carries the foreign fingerprint.
        segment: String,
        /// Fingerprint the recovering fleet expects.
        expected: String,
        /// Fingerprint found in the segment header.
        found: String,
    },
    /// Sequence numbers are not contiguous across checkpoint + segments.
    SequenceGap {
        /// The sequence number recovery needed next.
        expected: u64,
        /// The first sequence number actually available.
        found: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "wal segment {segment} corrupt at byte {offset}: {detail} \
                 (sealed segments must scan clean; refusing to recover)"
            ),
            WalError::FingerprintMismatch {
                segment,
                expected,
                found,
            } => write!(
                f,
                "wal segment {segment} was recorded under detector fingerprint \
                 {found:?} but recovery expects {expected:?}; refusing to replay"
            ),
            WalError::SequenceGap { expected, found } => write!(
                f,
                "wal sequence gap: needed batch {expected} next but the log \
                 resumes at {found}; refusing to recover"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, WalError>;

// ─── codec ──────────────────────────────────────────────────────────────

fn encode_header(out: &mut Vec<u8>, first_seq: u64, fingerprint: &str) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&first_seq.to_le_bytes());
    out.extend_from_slice(&(fingerprint.len() as u32).to_le_bytes());
    out.extend_from_slice(fingerprint.as_bytes());
    let d = digest64(out);
    out.extend_from_slice(&d.to_le_bytes());
}

struct Header {
    first_seq: u64,
    fingerprint: String,
    len: usize,
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
}

fn parse_header(bytes: &[u8]) -> std::result::Result<Header, String> {
    if bytes.len() < 4 || bytes[..4] != MAGIC {
        return Err("bad or truncated magic (want \"TSWL\")".to_string());
    }
    let version = read_u32(bytes, 4).ok_or("truncated header")?;
    if version != VERSION {
        return Err(format!("unsupported segment version {version}"));
    }
    let first_seq = read_u64(bytes, 8).ok_or("truncated header")?;
    let fp_len = read_u32(bytes, 16).ok_or("truncated header")? as usize;
    let fp_end = 20usize
        .checked_add(fp_len)
        .ok_or("absurd fingerprint length")?;
    let fp_bytes = bytes.get(20..fp_end).ok_or("truncated fingerprint")?;
    let stored = read_u64(bytes, fp_end).ok_or("truncated header digest")?;
    if digest64(&bytes[..fp_end]) != stored {
        return Err("header digest mismatch".to_string());
    }
    let fingerprint =
        String::from_utf8(fp_bytes.to_vec()).map_err(|_| "fingerprint is not utf-8".to_string())?;
    Ok(Header {
        first_seq,
        fingerprint,
        len: fp_end + 8,
    })
}

/// Encodes one record into `scratch` (cleared first). The payload comes
/// from an exact-size iterator so callers can stream straight out of
/// their batch slice without building an intermediate `Vec`.
fn encode_record_into<I>(scratch: &mut Vec<u8>, kind: u8, seq: u64, points: I)
where
    I: Iterator<Item = (u64, f64)> + ExactSizeIterator,
{
    scratch.clear();
    let len = (points.len() * ENTRY_BYTES) as u32;
    scratch.extend_from_slice(&len.to_le_bytes());
    scratch.push(kind);
    scratch.extend_from_slice(&seq.to_le_bytes());
    for (id, v) in points {
        scratch.extend_from_slice(&id.to_le_bytes());
        scratch.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let d = digest64(scratch);
    scratch.extend_from_slice(&d.to_le_bytes());
}

/// Everything a linear scan of one segment body finds.
struct SegScan {
    /// Decoded `DATA` records in order.
    records: Vec<(u64, Vec<(u64, f64)>)>,
    /// Whether the scan ended on a valid `SEAL` record.
    sealed: bool,
    /// Offset of the first byte that is not part of a valid record run
    /// (== file length when the segment scans clean).
    good_len: u64,
    /// Why the scan stopped early, if it did.
    stop: Option<String>,
    /// The sequence number expected after the last valid record.
    next_seq: u64,
}

fn scan_records(bytes: &[u8], header: &Header) -> SegScan {
    let mut records = Vec::new();
    let mut offset = header.len;
    let mut expected = header.first_seq;
    let mut sealed = false;
    let mut stop = None;
    loop {
        if offset == bytes.len() {
            break;
        }
        if sealed {
            stop = Some("trailing bytes after the seal record".to_string());
            break;
        }
        let Some(len) = read_u32(bytes, offset) else {
            stop = Some("truncated record length".to_string());
            break;
        };
        let len = len as usize;
        let Some(total) = len
            .checked_add(REC_HEAD + REC_TRAILER)
            .filter(|t| offset + t <= bytes.len())
        else {
            stop = Some(format!("truncated record (declared payload {len} bytes)"));
            break;
        };
        let body = &bytes[offset..offset + REC_HEAD + len];
        let stored = read_u64(bytes, offset + REC_HEAD + len).unwrap_or(0);
        if digest64(body) != stored {
            stop = Some("record digest mismatch".to_string());
            break;
        }
        let kind = bytes[offset + 4];
        let seq = read_u64(bytes, offset + 5).unwrap_or(0);
        if seq != expected {
            stop = Some(format!("record sequence {seq}, expected {expected}"));
            break;
        }
        match kind {
            REC_DATA => {
                if !len.is_multiple_of(ENTRY_BYTES) {
                    stop = Some(format!(
                        "data payload {len} not a multiple of {ENTRY_BYTES}"
                    ));
                    break;
                }
                let mut points = Vec::with_capacity(len / ENTRY_BYTES);
                let payload = &bytes[offset + REC_HEAD..offset + REC_HEAD + len];
                for entry in payload.chunks_exact(ENTRY_BYTES) {
                    let id = u64::from_le_bytes(entry[..8].try_into().unwrap());
                    let bits = u64::from_le_bytes(entry[8..].try_into().unwrap());
                    points.push((id, f64::from_bits(bits)));
                }
                records.push((seq, points));
                expected += 1;
            }
            REC_SEAL => {
                if len != 0 {
                    stop = Some("seal record with a payload".to_string());
                    break;
                }
                sealed = true;
            }
            other => {
                stop = Some(format!("unknown record kind {other}"));
                break;
            }
        }
        offset += total;
    }
    SegScan {
        records,
        sealed,
        good_len: offset as u64,
        stop,
        next_seq: expected,
    }
}

// ─── recovery ───────────────────────────────────────────────────────────

/// One batch replayed out of the log.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredBatch {
    /// Its sequence number (contiguous from `checkpoint seq + 1`).
    pub seq: u64,
    /// The `(series_id, value)` points exactly as admitted.
    pub points: Vec<(u64, f64)>,
}

/// What recovery did, for logs and assertions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Segments scanned (before any garbage collection).
    pub segments_scanned: usize,
    /// Bytes cut off the torn tail (or a torn tail-segment header).
    pub truncated_bytes: u64,
    /// Tail segment that was truncated or removed, if any.
    pub torn_tail: Option<String>,
    /// Torn/unreadable checkpoint marker files that were discarded.
    pub dropped_checkpoints: u64,
    /// Segments removed because a checkpoint already covers them.
    pub reclaimed_segments: usize,
    /// Sequence number of the checkpoint recovery restored from.
    pub checkpoint_seq: Option<u64>,
}

#[derive(Debug, Clone)]
pub(crate) struct ResumeState {
    pub(crate) next_seq: u64,
    /// `(name, first_seq, len, records)` of a reopenable unsealed tail.
    pub(crate) tail: Option<(String, u64, u64, u64)>,
    /// Surviving sealed segments, ascending by first sequence number.
    pub(crate) sealed: Vec<(u64, String)>,
    /// The surviving checkpoint marker, if any.
    pub(crate) ckpt: Option<(u64, String)>,
}

/// The outcome of scanning a log directory: the checkpoint to restore,
/// the batches to replay after it, and the state needed to [`resume`]
/// appending.
#[derive(Debug)]
pub struct Recovered {
    /// Newest digest-valid checkpoint payload, with its sequence number.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// Batches with sequence numbers beyond the checkpoint, in order.
    pub batches: Vec<RecoveredBatch>,
    /// What the scan found and fixed.
    pub report: RecoveryReport,
    pub(crate) resume: ResumeState,
}

impl Recovered {
    /// The sequence number the next appended batch will get.
    pub fn next_seq(&self) -> u64 {
        self.resume.next_seq
    }
}

/// Scans (and where the torn-tail rule allows, repairs) the log in `dir`.
///
/// Returns the checkpoint + tail batches to rebuild the fleet from, or a
/// precise refusal: corruption in a sealed segment, a foreign detector
/// fingerprint, or a sequence gap are never silently skipped.
pub fn recover<D: WalDir>(dir: &D, cfg: &WalConfig) -> Result<Recovered> {
    let names = dir.list()?;
    let mut segs: Vec<(u64, String)> = names
        .iter()
        .filter_map(|n| parse_seg_name(n).map(|s| (s, n.clone())))
        .collect();
    segs.sort();
    let mut ckpt_files: Vec<(u64, String)> = names
        .iter()
        .filter_map(|n| parse_ckpt_name(n).map(|s| (s, n.clone())))
        .collect();
    ckpt_files.sort();

    let mut report = RecoveryReport {
        segments_scanned: segs.len(),
        ..RecoveryReport::default()
    };

    // Newest digest-valid checkpoint wins; torn ones (a crash during
    // `store_checkpoint`) are discarded, stale valid ones are removed.
    let mut checkpoint: Option<(u64, Vec<u8>)> = None;
    let mut chosen_ckpt: Option<(u64, String)> = None;
    for (seq, name) in ckpt_files.iter().rev() {
        if checkpoint.is_some() {
            dir.remove(name)?;
            continue;
        }
        match dir.read(name).ok().and_then(|bytes| {
            let mut r = CkptReader::new(&bytes).ok()?;
            let inner = r.u64().ok()?;
            let payload = r.bytes_vec().ok()?;
            (inner == *seq).then_some(payload)
        }) {
            Some(payload) => {
                checkpoint = Some((*seq, payload));
                chosen_ckpt = Some((*seq, name.clone()));
            }
            None => {
                report.dropped_checkpoints += 1;
                dir.remove(name)?;
            }
        }
    }
    let ckpt_seq = checkpoint.as_ref().map_or(0, |c| c.0);

    let mut batches = Vec::new();
    let mut expected: Option<u64> = None;
    let mut tail: Option<(String, u64, u64, u64)> = None;
    let mut tail_sealed = false;
    let mut surviving: Vec<(u64, String)> = Vec::new();
    let count = segs.len();
    for (i, (name_seq, name)) in segs.iter().enumerate() {
        let bytes = dir.read(name)?;
        let last = i + 1 == count;
        let header = match parse_header(&bytes) {
            Ok(h) => h,
            Err(detail) => {
                if last {
                    // A crash during segment creation tore the header:
                    // nothing in this file was ever ACK-durable, drop it.
                    report.truncated_bytes += bytes.len() as u64;
                    report.torn_tail = Some(name.clone());
                    dir.remove(name)?;
                    break;
                }
                return Err(WalError::Corrupt {
                    segment: name.clone(),
                    offset: 0,
                    detail,
                });
            }
        };
        if header.fingerprint != cfg.fingerprint {
            return Err(WalError::FingerprintMismatch {
                segment: name.clone(),
                expected: cfg.fingerprint.clone(),
                found: header.fingerprint,
            });
        }
        if header.first_seq != *name_seq {
            return Err(WalError::Corrupt {
                segment: name.clone(),
                offset: 8,
                detail: format!(
                    "header first_seq {} disagrees with the file name",
                    header.first_seq
                ),
            });
        }
        match expected {
            None if header.first_seq > ckpt_seq + 1 => {
                return Err(WalError::SequenceGap {
                    expected: ckpt_seq + 1,
                    found: header.first_seq,
                });
            }
            Some(e) if header.first_seq != e => {
                return Err(WalError::SequenceGap {
                    expected: e,
                    found: header.first_seq,
                });
            }
            _ => {}
        }

        let scan = scan_records(&bytes, &header);
        if !last {
            if let Some(detail) = scan.stop {
                return Err(WalError::Corrupt {
                    segment: name.clone(),
                    offset: scan.good_len,
                    detail,
                });
            }
            if !scan.sealed {
                return Err(WalError::Corrupt {
                    segment: name.clone(),
                    offset: scan.good_len,
                    detail: "segment is not sealed but is not the last".to_string(),
                });
            }
        } else {
            if scan.good_len < bytes.len() as u64 {
                dir.truncate(name, scan.good_len)?;
                let cut = bytes.len() as u64 - scan.good_len;
                report.truncated_bytes += cut;
                report.torn_tail = Some(name.clone());
                WAL_RECOVERY_TRUNCATED_BYTES.add(cut);
            }
            tail = Some((
                name.clone(),
                header.first_seq,
                scan.good_len,
                scan.records.len() as u64,
            ));
            tail_sealed = scan.sealed;
        }
        for (seq, points) in scan.records {
            if seq > ckpt_seq {
                batches.push(RecoveredBatch { seq, points });
            }
        }
        expected = Some(scan.next_seq);
        if !last {
            surviving.push((header.first_seq, name.clone()));
        }
    }

    let next_seq = expected.unwrap_or(1).max(ckpt_seq + 1);

    // The tail is only reusable for further appends if the next batch's
    // sequence number is exactly the one its record run expects; a tail
    // whose records all fall at or below the checkpoint (fsync-off crash
    // after a checkpoint) would otherwise accumulate an in-segment gap.
    let resume_tail = match tail {
        Some((name, first_seq, len, records)) if !tail_sealed => {
            if first_seq + records == next_seq {
                Some((name, first_seq, len, records))
            } else {
                report.reclaimed_segments += 1;
                dir.remove(&name)?;
                None
            }
        }
        Some((name, first_seq, _, _)) => {
            surviving.push((first_seq, name));
            None
        }
        None => None,
    };

    // Garbage-collect sealed segments a checkpoint fully covers (the
    // crash-between-checkpoint-and-truncation window): a segment is
    // covered when its successor starts at or below `ckpt_seq + 1`.
    let mut kept: Vec<(u64, String)> = Vec::new();
    for (i, seg) in surviving.iter().enumerate() {
        let next_first = surviving
            .get(i + 1)
            .map(|s| s.0)
            .or(resume_tail.as_ref().map(|t| t.1))
            .unwrap_or(next_seq);
        if next_first <= ckpt_seq + 1 {
            report.reclaimed_segments += 1;
            dir.remove(&seg.1)?;
        } else {
            kept.push(seg.clone());
        }
    }

    report.checkpoint_seq = checkpoint.as_ref().map(|c| c.0);
    Ok(Recovered {
        checkpoint,
        batches,
        report,
        resume: ResumeState {
            next_seq,
            tail: resume_tail,
            sealed: kept,
            ckpt: chosen_ckpt,
        },
    })
}

// ─── the writer ─────────────────────────────────────────────────────────

/// An open, appendable write-ahead log.
///
/// The warm append path — encode into a reusable scratch buffer, one
/// `append` on the current segment, policy-driven `sync` — performs zero
/// heap allocations (gated in `crates/bench/tests/wal_gates.rs`); segment
/// rotation and checkpointing are cold paths and may allocate.
pub struct Wal<D: WalDir> {
    dir: D,
    cfg: WalConfig,
    file: D::File,
    seg_name: String,
    seg_first_seq: u64,
    seg_len: u64,
    seg_records: u64,
    sealed: Vec<(u64, String)>,
    ckpt: Option<(u64, String)>,
    next_seq: u64,
    scratch: Vec<u8>,
    pending: u32,
    pending_since: Option<Instant>,
    fsyncs: u64,
    bytes_written: u64,
    /// Set after any I/O failure on the segment write stream (a torn
    /// append, a failed seal, a failed fsync). A poisoned log refuses
    /// every further append: writing past a possibly-torn prefix would
    /// make recovery's tail truncation swallow *later, ACKed* records.
    poisoned: bool,
}

fn open_segment<D: WalDir>(
    dir: &D,
    fingerprint: &str,
    first_seq: u64,
) -> io::Result<(D::File, String, u64)> {
    let name = seg_name(first_seq);
    let mut file = dir.create(&name)?;
    let mut header = Vec::with_capacity(64 + fingerprint.len());
    encode_header(&mut header, first_seq, fingerprint);
    file.append(&header)?;
    Ok((file, name, header.len() as u64))
}

impl<D: WalDir> Wal<D> {
    /// Creates a fresh log in `dir`. Fails if `dir` already holds
    /// segments — recover those with [`recover`] + [`resume`] instead of
    /// silently shadowing them.
    pub fn create(dir: D, cfg: WalConfig) -> Result<Self> {
        if dir.list()?.iter().any(|n| parse_seg_name(n).is_some()) {
            return Err(WalError::Io(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "directory already contains wal segments; use recover + resume",
            )));
        }
        let (file, name, header_len) = open_segment(&dir, &cfg.fingerprint, 1)?;
        Ok(Self {
            dir,
            cfg,
            file,
            seg_name: name,
            seg_first_seq: 1,
            seg_len: header_len,
            seg_records: 0,
            sealed: Vec::new(),
            ckpt: None,
            next_seq: 1,
            scratch: Vec::with_capacity(4096),
            pending: 0,
            pending_since: None,
            fsyncs: 0,
            bytes_written: header_len,
            poisoned: false,
        })
    }

    /// Reopens the log described by a [`recover`] scan for appending:
    /// either continues the surviving unsealed tail or starts a fresh
    /// segment at the recovered sequence number.
    pub fn resume(dir: D, cfg: WalConfig, recovered: &Recovered) -> Result<Self> {
        let state = &recovered.resume;
        let (file, seg_name, seg_first_seq, seg_len, seg_records) = match &state.tail {
            Some((name, first_seq, len, records)) => (
                dir.open_append(name)?,
                name.clone(),
                *first_seq,
                *len,
                *records,
            ),
            None => {
                let (file, name, header_len) =
                    open_segment(&dir, &cfg.fingerprint, state.next_seq)?;
                (file, name, state.next_seq, header_len, 0)
            }
        };
        Ok(Self {
            dir,
            cfg,
            file,
            seg_name,
            seg_first_seq,
            seg_len,
            seg_records,
            sealed: state.sealed.clone(),
            ckpt: state.ckpt.clone(),
            next_seq: state.next_seq,
            scratch: Vec::with_capacity(4096),
            pending: 0,
            pending_since: None,
            fsyncs: 0,
            bytes_written: 0,
            poisoned: false,
        })
    }

    /// The sequence number the next appended batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Fsync calls issued so far (append path + seals + checkpoints).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Bytes appended so far (headers, records, seals, checkpoints).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Live segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Whether an earlier append-path I/O failure poisoned the log
    /// (every further append is refused until [`recover`] + [`resume`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_usable(&self) -> io::Result<()> {
        if self.poisoned {
            Err(io::Error::other(
                "wal poisoned by an earlier I/O failure: the segment tail \
                 may be torn; run recovery before appending",
            ))
        } else {
            Ok(())
        }
    }

    fn sync_file(&mut self) -> io::Result<()> {
        let _g = WAL_FSYNC_NS.start();
        self.file.sync()?;
        self.fsyncs += 1;
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        // seal: an empty record whose seq is the next segment's first
        let mut buf = Vec::with_capacity(64);
        encode_record_into(&mut buf, REC_SEAL, self.next_seq, std::iter::empty());
        self.file.append(&buf)?;
        self.bytes_written += buf.len() as u64;
        // a seal always syncs: the segment's contents become immutable
        // and later recovery treats any anomaly in it as refusal-worthy
        self.sync_file()?;
        self.pending = 0;
        self.pending_since = None;
        self.sealed
            .push((self.seg_first_seq, std::mem::take(&mut self.seg_name)));
        let (file, name, header_len) =
            open_segment(&self.dir, &self.cfg.fingerprint, self.next_seq)?;
        self.file = file;
        self.seg_name = name;
        self.seg_first_seq = self.next_seq;
        self.seg_len = header_len;
        self.seg_records = 0;
        self.bytes_written += header_len;
        Ok(())
    }

    /// Appends one batch, returning its sequence number. On `Err` the
    /// record may be torn on disk and the log **poisons itself**: every
    /// further append is refused until [`recover`] truncates the torn
    /// tail. (Appending past torn bytes would put valid records behind
    /// them, and recovery's tail truncation would then silently drop
    /// those later, possibly ACKed, records.) Callers must not ACK the
    /// failed batch. Batches over [`MAX_RECORD_POINTS`] are refused with
    /// `InvalidInput` before anything is written — the log stays usable.
    pub fn append<I>(&mut self, points: I) -> io::Result<u64>
    where
        I: IntoIterator<Item = (u64, f64)>,
        I::IntoIter: ExactSizeIterator<Item = (u64, f64)>,
    {
        let _g = WAL_APPEND_NS.start();
        self.check_usable()?;
        let points = points.into_iter();
        if points.len() > MAX_RECORD_POINTS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "batch of {} points exceeds the {MAX_RECORD_POINTS} a record can carry",
                    points.len()
                ),
            ));
        }
        let r = self.append_record(points);
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    fn append_record<I>(&mut self, points: I) -> io::Result<u64>
    where
        I: Iterator<Item = (u64, f64)> + ExactSizeIterator,
    {
        let seq = self.next_seq;
        // Encoding before the rotation check requires a second buffer in
        // rotate(); encoding after would need the record length first.
        // The scratch holds the data record; rotate uses its own Vec.
        encode_record_into(&mut self.scratch, REC_DATA, seq, points);
        let rec_len = self.scratch.len() as u64;
        if self.seg_records > 0 && self.seg_len + rec_len + SEAL_BYTES > self.cfg.segment_bytes {
            self.rotate()?;
        }
        self.file.append(&self.scratch)?;
        self.seg_len += rec_len;
        self.seg_records += 1;
        self.bytes_written += rec_len;
        self.next_seq += 1;
        match self.cfg.policy {
            FsyncPolicy::PerBatch => self.sync_file()?,
            FsyncPolicy::GroupCommit {
                batches,
                max_pending_micros,
            } => {
                if self.pending == 0 {
                    self.pending_since = Some(Instant::now());
                }
                self.pending += 1;
                let due = self.pending >= batches
                    || self
                        .pending_since
                        .is_some_and(|t| t.elapsed().as_micros() as u64 >= max_pending_micros);
                if due {
                    self.sync_file()?;
                    WAL_GROUP_COMMIT_BATCHES.add(self.pending as u64);
                    self.pending = 0;
                    self.pending_since = None;
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(seq)
    }

    /// Forces everything appended so far to durable storage (group-commit
    /// stragglers included). A failed sync poisons the log: the kernel
    /// may have dropped the dirty pages, so later syncs cannot vouch for
    /// the earlier bytes.
    pub fn flush(&mut self) -> io::Result<()> {
        self.check_usable()?;
        if self.pending > 0 {
            WAL_GROUP_COMMIT_BATCHES.add(self.pending as u64);
            self.pending = 0;
            self.pending_since = None;
        }
        let r = self.sync_file();
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    /// Enforces the group-commit age bound without a new append: syncs
    /// if unsynced batches older than `max_pending_micros` are pending.
    /// Returns whether a sync happened. The ingest server drives this
    /// from its idle poll passes; without such a driver the age bound
    /// only holds while appends keep arriving (see
    /// [`FsyncPolicy::GroupCommit`]). No-op under other policies.
    pub fn tick(&mut self) -> io::Result<bool> {
        let FsyncPolicy::GroupCommit {
            max_pending_micros, ..
        } = self.cfg.policy
        else {
            return Ok(false);
        };
        self.check_usable()?;
        let due = self.pending > 0
            && self
                .pending_since
                .is_some_and(|t| t.elapsed().as_micros() as u64 >= max_pending_micros);
        if !due {
            return Ok(false);
        }
        self.flush().map(|()| true)
    }

    /// Records a fleet checkpoint covering every batch up to and
    /// including `seq`, then truncates the log: segments whose records
    /// the checkpoint fully covers are deleted, as are older checkpoint
    /// markers. Returns the storage bytes reclaimed.
    ///
    /// Crash-safety ordering: the new marker is written and synced
    /// *before* anything is deleted, so a crash at any byte of this
    /// method leaves either the old state, both checkpoints, or the new
    /// state — recovery handles each (stale markers and covered segments
    /// are garbage-collected on the next scan).
    pub fn store_checkpoint(&mut self, seq: u64, payload: &[u8]) -> io::Result<u64> {
        // everything the checkpoint covers must be on disk first
        self.flush()?;
        let name = ckpt_name(seq);
        let mut w = CkptWriter::new();
        w.u64(seq);
        w.bytes(payload);
        let bytes = w.finish();
        let mut file = self.dir.create(&name)?;
        file.append(&bytes)?;
        {
            let _g = WAL_FSYNC_NS.start();
            file.sync()?;
            self.fsyncs += 1;
        }
        self.bytes_written += bytes.len() as u64;

        let mut reclaimed = 0u64;
        if let Some((_, old)) = self.ckpt.take() {
            reclaimed += self.dir.size(&old).unwrap_or(0);
            self.dir.remove(&old)?;
        }
        self.ckpt = Some((seq, name));
        // a sealed segment is covered when its successor starts at or
        // below seq + 1
        let mut kept = Vec::with_capacity(self.sealed.len());
        for (i, seg) in self.sealed.iter().enumerate() {
            let next_first = self.sealed.get(i + 1).map_or(self.seg_first_seq, |s| s.0);
            if next_first <= seq + 1 {
                reclaimed += self.dir.size(&seg.1).unwrap_or(0);
                self.dir.remove(&seg.1)?;
            } else {
                kept.push(seg.clone());
            }
        }
        self.sealed = kept;
        Ok(reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemDir;

    fn batch(seq: u64, n: usize) -> Vec<(u64, f64)> {
        (0..n as u64)
            .map(|i| (i, seq as f64 + i as f64 * 0.5))
            .collect()
    }

    fn cfg() -> WalConfig {
        WalConfig::new("test-fp")
    }

    #[test]
    fn roundtrip_single_segment() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        for seq in 1..=5u64 {
            assert_eq!(wal.append(batch(seq, 3)).unwrap(), seq);
        }
        let rec = recover(&dir, &cfg()).unwrap();
        assert!(rec.checkpoint.is_none());
        assert_eq!(rec.batches.len(), 5);
        for (i, b) in rec.batches.iter().enumerate() {
            assert_eq!(b.seq, i as u64 + 1);
            assert_eq!(b.points, batch(b.seq, 3));
        }
        assert_eq!(rec.report.truncated_bytes, 0);
        assert_eq!(rec.next_seq(), 6);
    }

    #[test]
    fn rotation_produces_sealed_segments_that_recover() {
        let dir = MemDir::new();
        let mut cfg = cfg();
        cfg.segment_bytes = 160; // tiny: forces a rotation every 1-2 batches
        let mut wal = Wal::create(dir.clone(), cfg.clone()).unwrap();
        for seq in 1..=20u64 {
            wal.append(batch(seq, 4)).unwrap();
        }
        assert!(wal.segment_count() > 3, "expected rotations");
        let rec = recover(&dir, &cfg).unwrap();
        assert_eq!(rec.batches.len(), 20);
        assert_eq!(rec.next_seq(), 21);
        // resume continues the numbering
        let mut wal = Wal::resume(dir.clone(), cfg.clone(), &rec).unwrap();
        assert_eq!(wal.append(batch(21, 4)).unwrap(), 21);
        let rec = recover(&dir, &cfg).unwrap();
        assert_eq!(rec.batches.len(), 21);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        for seq in 1..=4u64 {
            wal.append(batch(seq, 3)).unwrap();
        }
        // tear the tail: chop 5 bytes off the last record
        let name = seg_name(1);
        let mut bytes = dir.file(&name).unwrap();
        let torn = bytes.len() - 5;
        bytes.truncate(torn);
        dir.put(&name, bytes);
        let rec = recover(&dir, &cfg()).unwrap();
        assert_eq!(rec.batches.len(), 3);
        assert_eq!(rec.report.truncated_bytes as usize, {
            // what remained of record 4 after the tear
            3 * ENTRY_BYTES + REC_HEAD + REC_TRAILER - 5
        });
        assert_eq!(rec.report.torn_tail.as_deref(), Some(name.as_str()));
        assert_eq!(rec.next_seq(), 4);
        // the file was physically truncated: a second recovery is clean
        let rec = recover(&dir, &cfg()).unwrap();
        assert_eq!(rec.batches.len(), 3);
        assert_eq!(rec.report.truncated_bytes, 0);
    }

    #[test]
    fn corrupt_sealed_segment_is_refused_not_truncated() {
        let dir = MemDir::new();
        let mut cfg = cfg();
        cfg.segment_bytes = 160;
        let mut wal = Wal::create(dir.clone(), cfg.clone()).unwrap();
        for seq in 1..=12u64 {
            wal.append(batch(seq, 4)).unwrap();
        }
        // flip one payload byte in the FIRST (sealed) segment
        let name = seg_name(1);
        let mut bytes = dir.file(&name).unwrap();
        let at = bytes.len() - 12;
        bytes[at] ^= 0x40;
        dir.put(&name, bytes);
        match recover(&dir, &cfg) {
            Err(WalError::Corrupt { segment, .. }) => assert_eq!(segment, name),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        wal.append(batch(1, 3)).unwrap();
        let mut other = cfg();
        other.fingerprint = "some-other-detector".to_string();
        match recover(&dir, &other) {
            Err(WalError::FingerprintMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, "some-other-detector");
                assert_eq!(found, "test-fp");
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_truncates_covered_segments() {
        let dir = MemDir::new();
        let mut cfg = cfg();
        cfg.segment_bytes = 160;
        let mut wal = Wal::create(dir.clone(), cfg.clone()).unwrap();
        for seq in 1..=10u64 {
            wal.append(batch(seq, 4)).unwrap();
        }
        let before = wal.segment_count();
        assert!(before > 2);
        let reclaimed = wal.store_checkpoint(8, b"fleet-state-8").unwrap();
        assert!(reclaimed > 0, "expected covered segments to be reclaimed");
        assert!(wal.segment_count() < before);
        // recovery: checkpoint + tail replay == full-log replay
        let rec = recover(&dir, &cfg).unwrap();
        assert_eq!(rec.checkpoint, Some((8, b"fleet-state-8".to_vec())));
        let seqs: Vec<u64> = rec.batches.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, vec![9, 10]);
        assert_eq!(rec.next_seq(), 11);
    }

    #[test]
    fn newer_checkpoint_wins_and_stale_ones_are_removed() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        for seq in 1..=6u64 {
            wal.append(batch(seq, 2)).unwrap();
        }
        wal.store_checkpoint(2, b"at-2").unwrap();
        wal.store_checkpoint(5, b"at-5").unwrap();
        // store_checkpoint removed the older marker already; plant a fake
        // stale one to model a crash between write and cleanup
        dir.put(&ckpt_name(2), dir.file(&ckpt_name(5)).unwrap());
        let rec = recover(&dir, &cfg()).unwrap();
        assert_eq!(rec.checkpoint.as_ref().map(|c| c.0), Some(5));
        assert_eq!(
            rec.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![6]
        );
        // stale marker is gone
        assert!(dir.file(&ckpt_name(2)).is_none());
    }

    #[test]
    fn torn_checkpoint_marker_falls_back_to_full_replay() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        for seq in 1..=4u64 {
            wal.append(batch(seq, 2)).unwrap();
        }
        // a torn marker: valid name, garbage bytes
        dir.put(&ckpt_name(3), vec![0xde, 0xad, 0xbe, 0xef]);
        let rec = recover(&dir, &cfg()).unwrap();
        assert!(rec.checkpoint.is_none());
        assert_eq!(rec.batches.len(), 4);
        assert_eq!(rec.report.dropped_checkpoints, 1);
        assert!(dir.file(&ckpt_name(3)).is_none());
    }

    #[test]
    fn sequence_gap_is_refused() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        for seq in 1..=3u64 {
            wal.append(batch(seq, 2)).unwrap();
        }
        // replace the log with a segment that claims to start at 7
        dir.remove(&seg_name(1)).unwrap();
        let mut fresh = Vec::new();
        encode_header(&mut fresh, 7, "test-fp");
        dir.put(&seg_name(7), fresh);
        match recover(&dir, &cfg()) {
            Err(WalError::SequenceGap { expected, found }) => {
                assert_eq!((expected, found), (1, 7));
            }
            other => panic!("expected SequenceGap, got {other:?}"),
        }
    }

    #[test]
    fn empty_directory_recovers_to_a_fresh_log() {
        let dir = MemDir::new();
        let rec = recover(&dir, &cfg()).unwrap();
        assert!(rec.checkpoint.is_none());
        assert!(rec.batches.is_empty());
        assert_eq!(rec.next_seq(), 1);
        let mut wal = Wal::resume(dir.clone(), cfg(), &rec).unwrap();
        assert_eq!(wal.append(batch(1, 2)).unwrap(), 1);
    }

    #[test]
    fn create_refuses_a_directory_with_existing_segments() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        wal.append(batch(1, 2)).unwrap();
        assert!(Wal::create(dir, cfg()).is_err());
    }

    #[test]
    fn group_commit_syncs_by_count() {
        let dir = MemDir::new();
        let mut cfg = cfg();
        cfg.policy = FsyncPolicy::GroupCommit {
            batches: 4,
            max_pending_micros: u64::MAX,
        };
        let mut wal = Wal::create(dir.clone(), cfg).unwrap();
        for seq in 1..=8u64 {
            wal.append(batch(seq, 2)).unwrap();
        }
        assert_eq!(wal.fsyncs(), 2, "one sync per 4-batch group");
        wal.append(batch(9, 2)).unwrap();
        wal.flush().unwrap();
        assert_eq!(wal.fsyncs(), 3);
    }

    /// A [`WalDir`] wrapper modeling a *transient* storage fault: the
    /// next append after [`TearNext::arm`] applies only half its bytes
    /// and fails (ENOSPC-style torn write), then everything works again.
    /// This is the adversarial case for poisoning — the device recovers,
    /// but the log must not write past the torn bytes.
    #[derive(Clone)]
    struct TearNext {
        inner: MemDir,
        armed: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl TearNext {
        fn new(inner: MemDir) -> Self {
            Self {
                inner,
                armed: Default::default(),
            }
        }

        fn arm(&self) {
            self.armed.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    struct TearFile {
        inner: crate::storage::MemFile,
        armed: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl crate::storage::WalFile for TearFile {
        fn append(&mut self, buf: &[u8]) -> io::Result<()> {
            if self.armed.swap(false, std::sync::atomic::Ordering::SeqCst) {
                self.inner.append(&buf[..buf.len() / 2])?;
                return Err(io::Error::other("transient device error (torn write)"));
            }
            self.inner.append(buf)
        }

        fn sync(&mut self) -> io::Result<()> {
            self.inner.sync()
        }
    }

    impl WalDir for TearNext {
        type File = TearFile;

        fn create(&self, name: &str) -> io::Result<TearFile> {
            Ok(TearFile {
                inner: self.inner.create(name)?,
                armed: std::sync::Arc::clone(&self.armed),
            })
        }

        fn open_append(&self, name: &str) -> io::Result<TearFile> {
            Ok(TearFile {
                inner: self.inner.open_append(name)?,
                armed: std::sync::Arc::clone(&self.armed),
            })
        }

        fn list(&self) -> io::Result<Vec<String>> {
            self.inner.list()
        }

        fn read(&self, name: &str) -> io::Result<Vec<u8>> {
            self.inner.read(name)
        }

        fn size(&self, name: &str) -> io::Result<u64> {
            self.inner.size(name)
        }

        fn remove(&self, name: &str) -> io::Result<()> {
            self.inner.remove(name)
        }

        fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
            self.inner.truncate(name, len)
        }
    }

    #[test]
    fn a_torn_append_poisons_the_log_until_recovery() {
        let mem = MemDir::new();
        let dir = TearNext::new(mem.clone());
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        for seq in 1..=3u64 {
            wal.append(batch(seq, 3)).unwrap();
        }
        // batch 4 tears mid-record; the device then recovers
        dir.arm();
        assert!(wal.append(batch(4, 3)).is_err());
        assert!(wal.is_poisoned());
        // the poisoned log refuses to write past the torn bytes even
        // though the device works again — otherwise recovery's tail
        // truncation would swallow this (ACK-able) batch too
        let frozen = mem.file(&seg_name(1)).unwrap();
        let err = wal.append(batch(5, 3)).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "got: {err}");
        assert!(wal.flush().is_err());
        assert_eq!(mem.file(&seg_name(1)).unwrap(), frozen, "wrote past tear");
        // recovery truncates exactly the torn record; batches 1-3 (all
        // ACKed) survive and appending resumes at 4
        let rec = recover(&mem, &cfg()).unwrap();
        assert_eq!(
            rec.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(rec.report.truncated_bytes > 0);
        assert_eq!(rec.next_seq(), 4);
        let mut wal = Wal::resume(mem.clone(), cfg(), &rec).unwrap();
        assert_eq!(wal.append(batch(4, 3)).unwrap(), 4);
        let rec = recover(&mem, &cfg()).unwrap();
        assert_eq!(rec.batches.len(), 4);
        assert_eq!(rec.report.truncated_bytes, 0);
    }

    #[test]
    fn oversized_batches_are_refused_without_poisoning() {
        /// Claims `MAX_RECORD_POINTS + 1` items without materializing
        /// them (the refusal must trigger before any encoding).
        struct Huge;
        impl Iterator for Huge {
            type Item = (u64, f64);
            fn next(&mut self) -> Option<(u64, f64)> {
                Some((0, 0.0))
            }
            fn size_hint(&self) -> (usize, Option<usize>) {
                (MAX_RECORD_POINTS + 1, Some(MAX_RECORD_POINTS + 1))
            }
        }
        impl ExactSizeIterator for Huge {}

        let dir = MemDir::new();
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        wal.append(batch(1, 3)).unwrap();
        let err = wal.append(Huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // nothing was written and the log stays usable
        assert!(!wal.is_poisoned());
        assert_eq!(wal.append(batch(2, 3)).unwrap(), 2);
        let rec = recover(&dir, &cfg()).unwrap();
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.report.truncated_bytes, 0);
    }

    #[test]
    fn tick_enforces_the_group_commit_age_bound() {
        let dir = MemDir::new();
        let mut cfg = cfg();
        cfg.policy = FsyncPolicy::GroupCommit {
            batches: 1000,
            max_pending_micros: 2_000,
        };
        let mut wal = Wal::create(dir.clone(), cfg).unwrap();
        wal.append(batch(1, 2)).unwrap();
        assert_eq!(wal.fsyncs(), 0, "far below the group size");
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(wal.tick().unwrap(), "age bound passed: tick must sync");
        assert_eq!(wal.fsyncs(), 1);
        // nothing pending: the next tick is a no-op
        assert!(!wal.tick().unwrap());
        assert_eq!(wal.fsyncs(), 1);
    }

    #[test]
    fn tick_is_a_noop_under_per_batch_and_off() {
        for policy in [FsyncPolicy::PerBatch, FsyncPolicy::Off] {
            let dir = MemDir::new();
            let mut c = cfg();
            c.policy = policy;
            let mut wal = Wal::create(dir, c).unwrap();
            wal.append(batch(1, 2)).unwrap();
            let before = wal.fsyncs();
            assert!(!wal.tick().unwrap());
            assert_eq!(wal.fsyncs(), before);
        }
    }

    #[test]
    fn per_batch_syncs_every_append_and_off_never_does() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.clone(), cfg()).unwrap();
        for seq in 1..=5u64 {
            wal.append(batch(seq, 2)).unwrap();
        }
        assert_eq!(wal.fsyncs(), 5);

        let dir = MemDir::new();
        let mut off = cfg();
        off.policy = FsyncPolicy::Off;
        let mut wal = Wal::create(dir.clone(), off).unwrap();
        for seq in 1..=5u64 {
            wal.append(batch(seq, 2)).unwrap();
        }
        assert_eq!(wal.fsyncs(), 0);
    }
}
