//! # tsad-wal — crash-durable write-ahead log for the serving path
//!
//! The ingest front-end ACKs a batch the moment the fleet has scored it;
//! until this crate, a process crash silently dropped every ACKed point.
//! That is precisely the kind of unexamined operating condition the
//! benchmark-flaws paper warns about: a system that looks accurate on
//! curated data but loses admitted data on the first `kill -9` is not
//! reproducing anything credible. `tsad-wal` closes the gap with a
//! segment-based append-only log sitting between `tsad-ingest` and
//! `tsad-fleet`:
//!
//! * **Record format** — length-prefixed `(series_id, f64)` batch records,
//!   monotonically sequenced, each sealed with the TSCK FNV-1a digest
//!   ([`tsad_core::ckpt::digest64`]); segment headers carry the detector
//!   factory fingerprint so a log is never replayed into the wrong fleet.
//! * **Fsync policy** — [`FsyncPolicy::PerBatch`] (an ACK survives any
//!   crash), [`FsyncPolicy::GroupCommit`] (bounded ACK loss window), or
//!   [`FsyncPolicy::Off`] (seals and checkpoints only). The policy trades
//!   durable-ingest throughput for ACK strength; `repro -- wal` measures
//!   all three into `BENCH_wal.json`.
//! * **Recovery** — [`recover`] scans the segments, truncates a torn tail
//!   at the first corrupt record (never panics, reports the dropped
//!   bytes), refuses corruption in sealed segments with a precise
//!   [`WalError`], and hands back the newest checkpoint plus the batches
//!   to replay after it; checkpoint + WAL-tail replay is bitwise equal to
//!   full-log replay, which is bitwise equal to an uncrashed run.
//! * **Crash proof, not crash hope** — storage sits behind
//!   [`WalDir`]/[`WalFile`] so the kill-at-any-byte harness
//!   (`crates/faults/tests/wal_crash.rs`) runs the real append/recover
//!   code against [`MemDir`] + [`tsad_faults::CrashFuse`], crashing the
//!   writer at *every* byte offset of its write trace; a proptest suite
//!   (`crates/wal/tests/corruption.rs`) flips arbitrary bytes of sealed
//!   segments and asserts refusal.
//!
//! The warm append path performs zero heap allocations (gated with the
//! counting allocator in `crates/bench/tests/wal_gates.rs`, obs on and
//! off). Observability: `wal.append_ns`, `wal.fsync_ns`,
//! `wal.group_commit_batches`, `wal.recovery_truncated_bytes`.

mod log;
mod storage;

pub use crate::log::{
    recover, FsyncPolicy, Recovered, RecoveredBatch, RecoveryReport, Result, Wal, WalConfig,
    WalError, ENTRY_BYTES, MAX_RECORD_POINTS,
};
pub use storage::{FsDir, FsFile, MemDir, MemFile, WalDir, WalFile};

use tsad_obs::{Counter, Span};

/// Append path: encode + write (+ policy fsync) per batch.
pub(crate) static WAL_APPEND_NS: Span = Span::new("wal.append_ns");
/// Every fsync the log issues (appends, seals, checkpoints).
pub(crate) static WAL_FSYNC_NS: Span = Span::new("wal.fsync_ns");
/// Batches made durable by group-commit syncs.
pub(crate) static WAL_GROUP_COMMIT_BATCHES: Counter = Counter::new("wal.group_commit_batches");
/// Bytes cut off torn tails by recovery.
pub(crate) static WAL_RECOVERY_TRUNCATED_BYTES: Counter =
    Counter::new("wal.recovery_truncated_bytes");
