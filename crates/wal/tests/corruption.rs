//! Property suite: arbitrary single-byte corruption of log files.
//!
//! The recovery contract under corruption has two sides:
//!
//! * a corrupt **sealed** segment is *refused* with a precise
//!   [`WalError`] — sealed bytes can only be damaged by bit rot or
//!   operator error, never by a crash, and silently dropping admitted
//!   records would be exactly the illusion this repo exists to dispel;
//! * a corrupt **tail** segment is *repaired* by the torn-tail rule —
//!   recovery truncates at the first invalid record, reports the cut,
//!   and the surviving batches are always a strict prefix of what was
//!   appended.
//!
//! Neither side may ever panic, whatever byte is flipped.

use proptest::prelude::*;
use tsad_wal::{recover, MemDir, Wal, WalConfig, WalDir, WalError};

const FP: &str = "corruption-suite-fp";

/// (directory, appended batches, sorted segment names).
type BuiltLog = (MemDir, Vec<Vec<(u64, f64)>>, Vec<String>);

/// Builds a deterministic log with several sealed segments plus an
/// unsealed multi-record tail; returns the directory, the appended
/// batches, and the sorted segment file names.
fn build_log() -> BuiltLog {
    let dir = MemDir::new();
    let cfg = WalConfig {
        segment_bytes: 256,
        ..WalConfig::new(FP)
    };
    let mut wal = Wal::create(dir.clone(), cfg).unwrap();
    let mut batches = Vec::new();
    for seq in 1..=18u64 {
        let batch: Vec<(u64, f64)> = (0..5u64)
            .map(|i| (i * 3 + 1, (seq as f64 * 0.7 + i as f64 * 0.31).sin()))
            .collect();
        wal.append(batch.iter().copied()).unwrap();
        batches.push(batch);
    }
    drop(wal);
    let mut segs: Vec<String> = dir
        .survivor()
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("wal-"))
        .collect();
    segs.sort();
    assert!(segs.len() >= 3, "need sealed segments: {segs:?}");
    (dir, batches, segs)
}

fn cfg() -> WalConfig {
    WalConfig {
        segment_bytes: 256,
        ..WalConfig::new(FP)
    }
}

/// Asserts `got` is a prefix of the original `batches`, contiguous from
/// sequence 1.
fn assert_prefix(got: &[tsad_wal::RecoveredBatch], batches: &[Vec<(u64, f64)>]) {
    for (i, b) in got.iter().enumerate() {
        assert_eq!(b.seq, i as u64 + 1, "non-contiguous recovery");
        assert_eq!(b.points, batches[i], "batch {} diverged", b.seq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sealed_segment_corruption_is_always_refused(
        seg_pick in 0usize..1024,
        offset_pick in 0usize..65536,
        mask in 0u8..255,
    ) {
        let (dir, _batches, segs) = build_log();
        // all but the final segment are sealed
        let name = &segs[seg_pick % (segs.len() - 1)];
        let mut bytes = dir.file(name).unwrap();
        let at = offset_pick % bytes.len();
        bytes[at] ^= mask.wrapping_add(1); // a nonzero xor: always a real flip
        dir.put(name, bytes);
        match recover(&dir, &cfg()) {
            Err(WalError::Corrupt { segment, .. }) => prop_assert_eq!(&segment, name),
            Err(WalError::FingerprintMismatch { segment, .. }) => {
                // a flip inside the fingerprint bytes itself would break
                // the header digest first; mismatch can only come from a
                // flip that somehow left the digest valid — never happens
                // for single-byte flips, so reaching here is a bug
                prop_assert!(false, "fingerprint mismatch from a flip in {}", segment);
            }
            Err(WalError::SequenceGap { .. }) => {
                prop_assert!(false, "sequence gap from a single flip");
            }
            other => prop_assert!(false, "expected refusal, got {:?}", other.map(|r| r.report)),
        }
    }

    #[test]
    fn tail_segment_corruption_is_repaired_to_a_prefix(
        offset_pick in 0usize..65536,
        mask in 0u8..255,
    ) {
        let (dir, batches, segs) = build_log();
        let name = segs.last().unwrap();
        let mut bytes = dir.file(name).unwrap();
        let len = bytes.len() as u64;
        let at = offset_pick % bytes.len();
        bytes[at] ^= mask.wrapping_add(1);
        dir.put(name, bytes);
        let rec = recover(&dir, &cfg()).unwrap();
        prop_assert!(rec.batches.len() <= batches.len());
        assert_prefix(&rec.batches, &batches);
        // a flip in the tail always drops at least the record it hit
        prop_assert!(rec.batches.len() < batches.len());
        prop_assert!(rec.report.torn_tail.is_some());
        prop_assert!(rec.report.truncated_bytes > 0 || rec.report.torn_tail.as_deref() == Some(name));
        prop_assert!(rec.report.truncated_bytes <= len);
        // and the repair is stable: a second scan is clean
        let again = recover(&dir, &cfg()).unwrap();
        prop_assert_eq!(again.batches.len(), rec.batches.len());
        prop_assert_eq!(again.report.truncated_bytes, 0);
    }

    #[test]
    fn garbage_files_never_panic_recovery(
        garbage in prop::collection::vec(0u8..=255u8, 0..512),
    ) {
        // a lone tail segment made of arbitrary bytes: recovery may
        // refuse (if it happens to scan as a foreign fingerprint) but
        // normally repairs to an empty log — and never panics
        let dir = MemDir::new();
        dir.put("wal-00000000000000000001.seg", garbage);
        match recover(&dir, &cfg()) {
            Ok(rec) => {
                prop_assert!(rec.batches.is_empty());
                prop_assert_eq!(rec.next_seq(), 1);
            }
            Err(e) => {
                // precise, printable refusal
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn corrupt_checkpoint_markers_never_panic_recovery(
        garbage in prop::collection::vec(0u8..=255u8, 0..256),
    ) {
        let (dir, batches, _segs) = build_log();
        dir.put("ckpt-00000000000000000009.tsck", garbage);
        let rec = recover(&dir, &cfg()).unwrap();
        // the marker is digest-guarded: arbitrary bytes are dropped and
        // the full log replays
        prop_assert!(rec.checkpoint.is_none());
        prop_assert_eq!(rec.batches.len(), batches.len());
        prop_assert_eq!(rec.report.dropped_checkpoints, 1);
    }
}

#[test]
fn every_single_byte_flip_of_the_tail_recovers_a_prefix() {
    // exhaustive over the tail (not sampled): the tail is small enough
    // to try literally every byte offset
    let (dir0, batches, segs) = build_log();
    let name = segs.last().unwrap();
    let tail_len = dir0.file(name).unwrap().len();
    for at in 0..tail_len {
        let (dir, _, _) = build_log();
        let mut bytes = dir.file(name).unwrap();
        bytes[at] ^= 0x80;
        dir.put(name, bytes);
        let rec = recover(&dir, &cfg()).unwrap_or_else(|e| panic!("offset {at}: {e}"));
        assert_prefix(&rec.batches, &batches);
        assert!(
            rec.batches.len() < batches.len(),
            "offset {at}: flip dropped nothing"
        );
    }
}
