//! On-disk archive manifest: provenance metadata alongside the data files.
//!
//! §3 of the paper: "the archive does have detailed provenance and
//! metadata for each dataset". We ship a `MANIFEST.tsv` (one row per
//! dataset: file name, domain, difficulty, construction, seed) and a
//! generated `README.md` summarizing the archive, both plain text so the
//! archive remains toolchain-free.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::builder::{ArchiveEntry, Difficulty, Domain};
use crate::error::{ArchiveError, Result};
use crate::io::write_dataset;

/// One manifest row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestRow {
    /// Data file name.
    pub file: String,
    /// Domain label.
    pub domain: String,
    /// Difficulty label.
    pub difficulty: String,
    /// Construction note.
    pub construction: String,
    /// Generator seed.
    pub seed: u64,
}

fn domain_label(d: Domain) -> &'static str {
    match d {
        Domain::Physiology => "physiology",
        Domain::Gait => "gait",
        Domain::Industry => "industry",
        Domain::Space => "space",
        Domain::Robotics => "robotics",
        Domain::Entomology => "entomology",
        Domain::Respiration => "respiration",
    }
}

fn difficulty_label(d: Difficulty) -> &'static str {
    match d {
        Difficulty::Easy => "easy",
        Difficulty::Medium => "medium",
        Difficulty::Hard => "hard",
    }
}

/// Writes the full archive — data files, `MANIFEST.tsv`, and a generated
/// `README.md` — into `dir`. Returns the manifest rows in written order.
pub fn write_archive(dir: &Path, entries: &[ArchiveEntry]) -> Result<Vec<ManifestRow>> {
    if entries.len() > 999 {
        // the 3-digit index prefix keeps lexicographic and numeric order in
        // agreement; beyond that, directory loading order would diverge
        // from the manifest
        return Err(ArchiveError::InvalidDataset {
            name: "archive".to_string(),
            reason: format!(
                "{} entries exceed the 999 the naming scheme orders",
                entries.len()
            ),
        });
    }
    fs::create_dir_all(dir).map_err(|source| ArchiveError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut rows = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let path = write_dataset(dir, Some(i as u32 + 1), &entry.dataset)?;
        rows.push(ManifestRow {
            file: path
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default(),
            domain: domain_label(entry.provenance.domain).to_string(),
            difficulty: difficulty_label(entry.provenance.difficulty).to_string(),
            construction: entry.provenance.construction.to_string(),
            seed: entry.provenance.seed,
        });
    }

    let manifest_path = dir.join("MANIFEST.tsv");
    let mut manifest = fs::File::create(&manifest_path).map_err(|source| ArchiveError::Io {
        path: manifest_path.clone(),
        source,
    })?;
    writeln!(manifest, "file\tdomain\tdifficulty\tseed\tconstruction")
        .and_then(|_| {
            for r in &rows {
                writeln!(
                    manifest,
                    "{}\t{}\t{}\t{}\t{}",
                    r.file, r.domain, r.difficulty, r.seed, r.construction
                )?;
            }
            Ok(())
        })
        .map_err(|source| ArchiveError::Io {
            path: manifest_path.clone(),
            source,
        })?;

    let readme_path = dir.join("README.md");
    let readme = render_readme(&rows);
    fs::write(&readme_path, readme).map_err(|source| ArchiveError::Io {
        path: readme_path,
        source,
    })?;
    Ok(rows)
}

/// Reads `MANIFEST.tsv` back.
pub fn read_manifest(dir: &Path) -> Result<Vec<ManifestRow>> {
    let path = dir.join("MANIFEST.tsv");
    let text = fs::read_to_string(&path).map_err(|source| ArchiveError::Io {
        path: path.clone(),
        source,
    })?;
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.splitn(5, '\t').collect();
        if cols.len() != 5 {
            return Err(ArchiveError::InvalidDataset {
                name: format!("{}:{}", path.display(), lineno + 1),
                reason: format!("expected 5 tab-separated columns, found {}", cols.len()),
            });
        }
        let seed: u64 = cols[3].parse().map_err(|e| ArchiveError::InvalidDataset {
            name: format!("{}:{}", path.display(), lineno + 1),
            reason: format!("bad seed {:?}: {e}", cols[3]),
        })?;
        rows.push(ManifestRow {
            file: cols[0].to_string(),
            domain: cols[1].to_string(),
            difficulty: cols[2].to_string(),
            seed,
            construction: cols[4].to_string(),
        });
    }
    Ok(rows)
}

fn render_readme(rows: &[ManifestRow]) -> String {
    let mut out = String::from(
        "# Synthetic UCR-style anomaly archive\n\n\
         Each `.txt` file holds one value per line. The file name carries the\n\
         supervision: `NNN_UCR_Anomaly_<name>_<train>_<begin>_<end>.txt` — the\n\
         first `<train>` points are anomaly-free training data and the single\n\
         anomaly spans `[begin, end)`. A prediction is correct iff it falls\n\
         within `max(100, end-begin)` points of the labeled region.\n\n\
         Provenance for every dataset is in `MANIFEST.tsv`.\n\n",
    );
    let mut by_domain: std::collections::BTreeMap<&str, usize> = Default::default();
    for r in rows {
        *by_domain.entry(r.domain.as_str()).or_insert(0) += 1;
    }
    out.push_str(&format!("{} datasets: ", rows.len()));
    let parts: Vec<String> = by_domain.iter().map(|(d, c)| format!("{d} ×{c}")).collect();
    out.push_str(&parts.join(", "));
    out.push('\n');
    out
}

/// Convenience: archive directory for a `(seed, count)` pair, built and
/// written in one call.
pub fn build_and_write(dir: &Path, seed: u64, count: usize) -> Result<Vec<ManifestRow>> {
    let entries = crate::builder::build_archive(seed, count)?;
    write_archive(dir, &entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_archive;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tsad-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_and_read_manifest_roundtrip() {
        let dir = tmpdir("roundtrip");
        let entries = build_archive(42, 5).unwrap();
        let written = write_archive(&dir, &entries).unwrap();
        assert_eq!(written.len(), 5);
        assert!(dir.join("MANIFEST.tsv").exists());
        assert!(dir.join("README.md").exists());

        let read_back = read_manifest(&dir).unwrap();
        assert_eq!(read_back, written);
        // datasets load alongside the manifest
        let datasets = crate::io::read_archive_dir(&dir).unwrap();
        assert_eq!(datasets.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn readme_summarizes_domains() {
        let dir = tmpdir("readme");
        build_and_write(&dir, 7, 7).unwrap();
        let readme = fs::read_to_string(dir.join("README.md")).unwrap();
        assert!(readme.contains("7 datasets"));
        assert!(readme.contains("physiology"));
        assert!(readme.contains("MANIFEST.tsv"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_manifest_rejects_malformed_rows() {
        let dir = tmpdir("bad");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST.tsv"), "header\nonly-one-column\n").unwrap();
        assert!(read_manifest(&dir).is_err());
        fs::write(
            dir.join("MANIFEST.tsv"),
            "header\na\tb\tc\tnot-a-number\td\n",
        )
        .unwrap();
        assert!(read_manifest(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
