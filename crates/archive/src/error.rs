//! Archive-level error type: core validation errors plus filesystem IO.

use std::fmt;

use tsad_core::CoreError;

/// Errors from archive construction, serialization, and scoring.
#[derive(Debug)]
pub enum ArchiveError {
    /// A validation error from `tsad-core`.
    Core(CoreError),
    /// A filesystem error, tagged with the path involved.
    Io {
        path: std::path::PathBuf,
        source: std::io::Error,
    },
    /// A generated dataset failed an archive invariant.
    InvalidDataset { name: String, reason: String },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Core(e) => write!(f, "{e}"),
            ArchiveError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            ArchiveError::InvalidDataset { name, reason } => {
                write!(f, "dataset {name:?} violates archive invariant: {reason}")
            }
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::Core(e) => Some(e),
            ArchiveError::Io { source, .. } => Some(source),
            ArchiveError::InvalidDataset { .. } => None,
        }
    }
}

impl From<CoreError> for ArchiveError {
    fn from(e: CoreError) -> Self {
        ArchiveError::Core(e)
    }
}

/// Result alias for archive operations.
pub type Result<T> = std::result::Result<T, ArchiveError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let core: ArchiveError = CoreError::EmptySeries.into();
        assert!(core.to_string().contains("non-empty"));
        let io = ArchiveError::Io {
            path: "/tmp/x".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(io.to_string().contains("/tmp/x"));
        use std::error::Error;
        assert!(io.source().is_some());
        let inv = ArchiveError::InvalidDataset {
            name: "d".into(),
            reason: "two anomalies".into(),
        };
        assert!(inv.to_string().contains("two anomalies"));
        assert!(inv.source().is_none());
    }
}
