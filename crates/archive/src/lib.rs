//! # tsad-archive
//!
//! The UCR-style anomaly archive (§3 of the paper): single-anomaly
//! datasets whose supervision lives in their file names, built from the
//! generators in `tsad-synth`, validated against the archive invariants,
//! and scored as a contest by location accuracy.
//!
//! * [`name`] — the `UCR_Anomaly_<name>_<train>_<begin>_<end>` codec;
//! * [`io`] — one-value-per-line text serialization and directory loading;
//! * [`validate`] — the §3 invariants (exactly one anomaly, anomaly-free
//!   train prefix, test behavior modes covered by training data);
//! * [`builder`] — a deterministic archive builder spanning five domains
//!   and three difficulty levels, with provenance metadata;
//! * [`manifest`] — on-disk provenance (`MANIFEST.tsv` + generated README);
//! * [`contest`] — run detectors over an archive and report UCR accuracy.

pub mod builder;
pub mod contest;
pub mod error;
pub mod io;
pub mod manifest;
pub mod name;
pub mod validate;

pub use error::{ArchiveError, Result};
