//! Contest-style evaluation over an archive: every detector returns one
//! location per dataset; accuracy is the fraction of locations falling
//! within the UCR tolerance of the labeled anomaly (§2.3's binary
//! evaluation, aggregated as "simple accuracy, which is intuitively
//! interpretable").

use tsad_core::Dataset;
use tsad_detectors::{most_anomalous_point, Detector};
use tsad_eval::ucr::ucr_correct;

use crate::error::Result;

/// Per-dataset outcome for one detector.
#[derive(Debug, Clone)]
pub struct ContestOutcome {
    /// Dataset name.
    pub dataset: String,
    /// Predicted location (arg-max of the detector's test-region score).
    pub predicted: usize,
    /// Whether the prediction falls within the UCR tolerance.
    pub correct: bool,
}

/// A detector's full contest run.
#[derive(Debug, Clone)]
pub struct ContestResult {
    /// Detector name.
    pub detector: &'static str,
    /// Per-dataset outcomes.
    pub outcomes: Vec<ContestOutcome>,
}

impl ContestResult {
    /// Aggregate accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.correct).count() as f64 / self.outcomes.len() as f64
    }
}

/// Runs one detector over a slice of datasets. Detectors that error on a
/// dataset (e.g. a window longer than the series) score that dataset as
/// incorrect with `predicted = 0` rather than aborting the contest.
pub fn run_contest(detector: &dyn Detector, datasets: &[Dataset]) -> Result<ContestResult> {
    let mut outcomes = Vec::with_capacity(datasets.len());
    for d in datasets {
        let outcome = match most_anomalous_point(detector, d.series(), d.train_len()) {
            Ok(predicted) => {
                let correct = ucr_correct(predicted, d.labels())?;
                ContestOutcome {
                    dataset: d.name().to_string(),
                    predicted,
                    correct,
                }
            }
            Err(_) => ContestOutcome {
                dataset: d.name().to_string(),
                predicted: 0,
                correct: false,
            },
        };
        outcomes.push(outcome);
    }
    Ok(ContestResult {
        detector: detector.name(),
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::{Labels, Region, Result as CoreResult, TimeSeries};
    use tsad_detectors::baselines::{GlobalZScore, RandomDetector};

    fn spike_dataset(n: usize, at: usize) -> Dataset {
        let mut x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() * 0.2).collect();
        x[at] += 6.0;
        let ts = TimeSeries::new(format!("spike-{at}"), x).unwrap();
        let labels = Labels::single(n, Region::point(at)).unwrap();
        Dataset::new(ts, labels, n / 4).unwrap()
    }

    #[test]
    fn zscore_wins_random_loses_on_spikes() {
        let datasets: Vec<Dataset> = (0..8)
            .map(|k| spike_dataset(4000, 2000 + k * 137))
            .collect();
        let z = run_contest(&GlobalZScore, &datasets).unwrap();
        assert_eq!(z.accuracy(), 1.0, "{:?}", z.outcomes);
        let r = run_contest(&RandomDetector::new(3), &datasets).unwrap();
        assert!(
            r.accuracy() < 0.5,
            "random should mostly miss: {}",
            r.accuracy()
        );
    }

    #[test]
    fn erroring_detector_scores_zero_not_abort() {
        struct Broken;
        impl Detector for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn score(&self, _ts: &TimeSeries, _train_len: usize) -> CoreResult<Vec<f64>> {
                Err(tsad_core::CoreError::EmptySeries)
            }
        }
        let datasets = vec![spike_dataset(2000, 1500)];
        let res = run_contest(&Broken, &datasets).unwrap();
        assert_eq!(res.accuracy(), 0.0);
        assert_eq!(res.outcomes.len(), 1);
    }

    #[test]
    fn empty_contest_accuracy_zero() {
        let res = run_contest(&GlobalZScore, &[]).unwrap();
        assert_eq!(res.accuracy(), 0.0);
    }
}
