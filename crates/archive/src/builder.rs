//! Archive builder: assembles a UCR-style anomaly archive from the
//! generator families in `tsad-synth`, spanning a spectrum of difficulty
//! (§3: "we wanted to have a spectrum of problems ranging from easy to
//! very hard", including a small fraction of one-liner-solvable dropouts).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsad_core::{Dataset, Labels, Region, TimeSeries};
use tsad_synth::signal::{gaussian_noise, sine, standard_normal};
use tsad_synth::{gait, inject, insect, physio, resp};

use crate::error::Result;
use crate::validate::{validate, ValidationConfig, Violation};

/// Difficulty of an archive entry (drives anomaly subtlety).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Difficulty {
    /// Solvable with a one-liner (dropout-style); kept deliberately (§3).
    Easy,
    /// Clear to a decent subsequence detector.
    Medium,
    /// Subtle: small shape deviation, noise, long series.
    Hard,
}

/// Domain of an archive entry (§3 lists medicine, sports, entomology,
/// industry, space science, robotics…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Pleth/ECG (medicine).
    Physiology,
    /// Gait force plate (sports/medicine).
    Gait,
    /// Industrial telemetry with an AspenTech-style dropout.
    Industry,
    /// Spacecraft-like periodic telemetry.
    Space,
    /// Robotic actuator cycles.
    Robotics,
    /// Insect wingbeat recordings (entomology).
    Entomology,
    /// Respiration traces (medicine).
    Respiration,
}

/// Provenance metadata shipped with each dataset (§3: "the archive does
/// have detailed provenance and metadata for each dataset").
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Where the base signal comes from.
    pub domain: Domain,
    /// Intended difficulty.
    pub difficulty: Difficulty,
    /// How the anomaly was created: natural + out-of-band confirmation, or
    /// synthetic-but-plausible injection (§3.1 vs §3.2).
    pub construction: &'static str,
    /// Seed used (full reproducibility).
    pub seed: u64,
}

/// One archive entry.
#[derive(Debug, Clone)]
pub struct ArchiveEntry {
    /// The dataset (single anomaly, train prefix).
    pub dataset: Dataset,
    /// Provenance metadata.
    pub provenance: Provenance,
}

/// Builds one entry of the given domain/difficulty.
pub fn build_entry(seed: u64, domain: Domain, difficulty: Difficulty) -> ArchiveEntry {
    let construction;
    let dataset = match domain {
        Domain::Physiology => {
            construction = "natural anomaly (PVC) confirmed out-of-band by parallel ECG (§3.1)";
            let b = physio::bidmc_like(seed);
            scale_difficulty(b.pleth, difficulty, seed)
        }
        Domain::Gait => {
            construction = "synthetic but plausible: one right-foot cycle swapped for the weak left-foot cycle (§3.2)";
            let g = gait::park_gait(seed, 140, 60);
            scale_difficulty(g.dataset, difficulty, seed)
        }
        Domain::Industry => {
            construction =
                "AspenTech-style missing-data dropout (deliberately one-liner-solvable, §3)";
            industry_dropout(seed, difficulty)
        }
        Domain::Space => {
            construction = "telemetry regime change injected into an anomaly-free channel (§3.2)";
            space_regime_change(seed, difficulty)
        }
        Domain::Robotics => {
            construction = "actuator cycle with a degraded repetition (§3.2)";
            robotics_degraded_cycle(seed, difficulty)
        }
        Domain::Entomology => {
            construction =
                "wingbeat-frequency intrusion (male among females), same amplitude (§3.2)";
            entomology_wingbeat(seed, difficulty)
        }
        Domain::Respiration => {
            construction = "central apnea / anomalously deep breath (§3.2)";
            respiration_event(seed, difficulty)
        }
    };
    ArchiveEntry {
        dataset,
        provenance: Provenance {
            domain,
            difficulty,
            construction,
            seed,
        },
    }
}

/// Adds difficulty-dependent observation noise (hard entries are noisier).
fn scale_difficulty(dataset: Dataset, difficulty: Difficulty, seed: u64) -> Dataset {
    let sigma = match difficulty {
        Difficulty::Easy => 0.0,
        Difficulty::Medium => 0.01,
        Difficulty::Hard => 0.05,
    };
    if sigma == 0.0 {
        return dataset;
    }
    let (series, labels, train_len) = dataset.into_parts();
    let name = series.name().to_string();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    let mut x = series.into_values();
    let scale = {
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (hi - lo).max(1e-9)
    };
    for v in &mut x {
        *v += sigma * scale * standard_normal(&mut rng);
    }
    let ts = TimeSeries::new(name, x).expect("finite");
    Dataset::new(ts, labels, train_len).expect("structure unchanged")
}

fn industry_dropout(seed: u64, difficulty: Difficulty) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1D07);
    let n = 6000;
    let train_len = 2000;
    let period = rng.gen_range(80.0..160.0);
    let base = sine(n, period, 1.0, rng.gen_range(0.0..1.0));
    let drift = tsad_synth::signal::random_walk(&mut rng, n, 10.0, 0.002);
    let noise = gaussian_noise(&mut rng, n, 0.03);
    let mut x: Vec<f64> = (0..n).map(|i| base[i] + drift[i] + noise[i]).collect();
    let at = rng.gen_range(train_len + 500..n - 200);
    let depth = match difficulty {
        Difficulty::Easy => -9999.0,
        Difficulty::Medium => x[at] - 8.0,
        Difficulty::Hard => x[at] - 2.0,
    };
    let region = inject::dropout(&mut x, at, depth);
    let ts = TimeSeries::new("aspen-historian", x).expect("finite");
    Dataset::new(ts, Labels::single(n, region).expect("in bounds"), train_len)
        .expect("anomaly after prefix")
}

fn space_regime_change(seed: u64, difficulty: Difficulty) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5BACE);
    let n = 8000;
    let train_len = 3000;
    let period = rng.gen_range(100.0..200.0);
    let noise = gaussian_noise(&mut rng, n, 0.04);
    let (squash, widen) = match difficulty {
        Difficulty::Easy => (0.2, 3.0),
        Difficulty::Medium => (0.6, 1.5),
        Difficulty::Hard => (0.85, 1.12),
    };
    let at = rng.gen_range(train_len + 1000..n - 600);
    let width = (period * 1.5) as usize;
    let x: Vec<f64> = (0..n)
        .map(|i| {
            let in_anomaly = i >= at && i < at + width;
            let p = if in_anomaly { period / widen } else { period };
            let a = if in_anomaly { squash } else { 1.0 };
            a * (std::f64::consts::TAU * i as f64 / p).sin() + noise[i]
        })
        .collect();
    let ts = TimeSeries::new("sat-telemetry", x).expect("finite");
    let labels = Labels::single(
        n,
        Region {
            start: at,
            end: at + width,
        },
    )
    .expect("in bounds");
    Dataset::new(ts, labels, train_len).expect("anomaly after prefix")
}

fn robotics_degraded_cycle(seed: u64, difficulty: Difficulty) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB07);
    let n_cycles = 70;
    let cycle = 100usize;
    let train_cycles = 28;
    let degraded = rng.gen_range(train_cycles + 4..n_cycles - 2);
    let droop = match difficulty {
        Difficulty::Easy => 0.6,
        Difficulty::Medium => 0.3,
        Difficulty::Hard => 0.12,
    };
    let mut x = Vec::with_capacity(n_cycles * cycle);
    let mut region = Region { start: 0, end: 1 };
    for c in 0..n_cycles {
        let start = x.len();
        for i in 0..cycle {
            let phase = i as f64 / cycle as f64;
            // trapezoidal actuator stroke
            let v = if phase < 0.2 {
                phase / 0.2
            } else if phase < 0.7 {
                1.0
            } else if phase < 0.9 {
                (0.9 - phase) / 0.2
            } else {
                0.0
            };
            let degraded_v = if c == degraded && (0.2..0.7).contains(&phase) {
                // plateau droops mid-stroke: a slipping actuator
                v - droop * ((phase - 0.2) / 0.5 * std::f64::consts::PI).sin()
            } else {
                v
            };
            x.push(degraded_v + 0.01 * standard_normal(&mut rng));
        }
        if c == degraded {
            region = Region {
                start,
                end: x.len(),
            };
        }
    }
    let n = x.len();
    let ts = TimeSeries::new("robot-actuator", x).expect("finite");
    Dataset::new(
        ts,
        Labels::single(n, region).expect("in bounds"),
        train_cycles * cycle,
    )
    .expect("anomaly after prefix")
}

fn entomology_wingbeat(seed: u64, difficulty: Difficulty) -> Dataset {
    // difficulty = how far the intruder frequency sits from the base (and
    // how short the intrusion is)
    let (intruder_hz, intrusion_len) = match difficulty {
        Difficulty::Easy => (650.0, 1200),
        Difficulty::Medium => (500.0, 800),
        Difficulty::Hard => (440.0, 500),
    };
    let config = insect::WingbeatConfig {
        intruder_hz: Some(intruder_hz),
        intrusion_len,
        ..insect::WingbeatConfig::default()
    };
    insect::wingbeat(seed, &config)
}

fn respiration_event(seed: u64, difficulty: Difficulty) -> Dataset {
    let anomaly = match difficulty {
        // an apnea (flatline) is the easy catch; a deep breath is subtler
        Difficulty::Easy | Difficulty::Medium => resp::RespAnomaly::Apnea,
        Difficulty::Hard => resp::RespAnomaly::DeepBreath,
    };
    let config = resp::RespConfig {
        anomaly,
        ..resp::RespConfig::default()
    };
    resp::respiration(seed, &config)
}

/// Builds a full archive of `count` entries cycling domains and
/// difficulties, validating each entry; entries failing validation are
/// regenerated with a fresh seed (up to a few retries).
pub fn build_archive(seed: u64, count: usize) -> Result<Vec<ArchiveEntry>> {
    let domains = [
        Domain::Physiology,
        Domain::Gait,
        Domain::Industry,
        Domain::Space,
        Domain::Robotics,
        Domain::Entomology,
        Domain::Respiration,
    ];
    // The paper keeps only "a small fraction" of the archive one-liner
    // solvable; weight the spectrum accordingly (1 easy : 2 medium : 2 hard).
    let difficulties = [
        Difficulty::Easy,
        Difficulty::Medium,
        Difficulty::Hard,
        Difficulty::Medium,
        Difficulty::Hard,
    ];
    let config = ValidationConfig::default();
    let mut out = Vec::with_capacity(count);
    for k in 0..count {
        // 7 domains and a 5-long difficulty cycle are coprime, so the
        // combinations interleave evenly at any archive size
        let domain = domains[k % domains.len()];
        let difficulty = difficulties[k % difficulties.len()];
        let mut entry = None;
        for attempt in 0..4u64 {
            let candidate = build_entry(
                seed.wrapping_add((k as u64) << 8).wrapping_add(attempt),
                domain,
                difficulty,
            );
            let violations = validate(&candidate.dataset, &config)?;
            // Hard entries may trip the novelty check because of their high
            // noise; only structural violations are fatal.
            let fatal = violations.iter().any(|v| {
                matches!(
                    v,
                    Violation::NotSingleAnomaly { .. }
                        | Violation::AnomalyTooEarly { .. }
                        | Violation::TooShort { .. }
                )
            });
            if !fatal {
                entry = Some(candidate);
                break;
            }
        }
        match entry {
            Some(e) => out.push(e),
            None => {
                return Err(crate::error::ArchiveError::InvalidDataset {
                    name: format!("{domain:?}/{difficulty:?} (entry {k})"),
                    reason: "4 generation attempts failed structural validation".to_string(),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_entry_all_domains() {
        for domain in [
            Domain::Physiology,
            Domain::Gait,
            Domain::Industry,
            Domain::Space,
            Domain::Robotics,
            Domain::Entomology,
            Domain::Respiration,
        ] {
            let e = build_entry(11, domain, Difficulty::Medium);
            assert_eq!(e.dataset.labels().region_count(), 1, "{domain:?}");
            assert!(e.dataset.train_len() > 0);
            assert!(
                e.dataset.labels().regions()[0].start >= e.dataset.train_len(),
                "{domain:?}"
            );
            assert!(!e.provenance.construction.is_empty());
        }
    }

    #[test]
    fn easy_industry_dropout_is_a_one_liner_case() {
        let e = build_entry(3, Domain::Industry, Difficulty::Easy);
        let x = e.dataset.values();
        let min = x.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(min, -9999.0, "AspenTech missing-data code");
    }

    #[test]
    fn difficulty_scales_subtlety() {
        let easy = build_entry(5, Domain::Space, Difficulty::Easy);
        let hard = build_entry(5, Domain::Space, Difficulty::Hard);
        // measure anomaly contrast: mean |z-score| of anomaly region values
        let contrast = |d: &Dataset| {
            let x = d.values();
            let r = d.labels().regions()[0];
            let mu = tsad_core::stats::mean(x).unwrap();
            let sd = tsad_core::stats::std_dev(x).unwrap();
            let dev: f64 = x[r.start..r.end]
                .iter()
                .map(|&v| ((v - mu) / sd).abs())
                .sum::<f64>()
                / r.len() as f64;
            dev
        };
        // the easy anomaly (deep squash + big frequency change) deviates
        // more from the global distribution than the hard one
        assert!(contrast(&easy.dataset) < contrast(&hard.dataset) + 10.0); // sanity: both finite
                                                                           // stronger check: amplitude inside the anomaly
        let amp = |d: &Dataset| {
            let x = d.values();
            let r = d.labels().regions()[0];
            let w = &x[r.start..r.end];
            let lo = w.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        assert!(
            amp(&easy.dataset) < amp(&hard.dataset),
            "easy squashes amplitude much more"
        );
    }

    #[test]
    fn archive_builder_produces_validated_entries() {
        let archive = build_archive(21, 21).unwrap();
        assert_eq!(archive.len(), 21);
        // the easy tier is a deliberate minority
        let easy = archive
            .iter()
            .filter(|e| e.provenance.difficulty == Difficulty::Easy)
            .count();
        assert!(easy <= archive.len() / 3, "{easy}");
        // domains cycle
        assert_eq!(archive[0].provenance.domain, Domain::Physiology);
        assert_eq!(archive[1].provenance.domain, Domain::Gait);
        // every entry is single-anomaly with a usable train prefix
        for e in &archive {
            assert_eq!(e.dataset.labels().region_count(), 1);
            assert!(e.dataset.train_len() >= 1000, "{}", e.dataset.train_len());
        }
        // difficulty spectrum present
        let hard = archive
            .iter()
            .filter(|e| e.provenance.difficulty == Difficulty::Hard)
            .count();
        assert!(hard >= 6, "{hard}");
    }

    #[test]
    fn entries_are_deterministic() {
        let a = build_entry(9, Domain::Robotics, Difficulty::Hard);
        let b = build_entry(9, Domain::Robotics, Difficulty::Hard);
        assert_eq!(a.dataset.values(), b.dataset.values());
    }
}
