//! The UCR anomaly archive file-name convention.
//!
//! Every dataset's supervision signal lives *in its file name*:
//! `<index>_UCR_Anomaly_<name>_<train>_<begin>_<end>.txt` (the index prefix
//! is optional), e.g. `004_UCR_Anomaly_BIDMC1_2500_5400_5600.txt` — the
//! first 2 500 points are training data and the anomaly spans
//! `[5400, 5600)`. This module parses and formats that convention.

use std::fmt;

use tsad_core::error::{CoreError, Result};
use tsad_core::Region;

/// Parsed UCR archive file name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UcrName {
    /// Optional archive index (the `004` prefix).
    pub index: Option<u32>,
    /// Dataset mnemonic (e.g. `BIDMC1`, `park3m`).
    pub name: String,
    /// Length of the training prefix.
    pub train_len: usize,
    /// Anomaly region (half-open, matching [`Region`]).
    pub anomaly: Region,
}

impl UcrName {
    /// Creates a name, validating the ordering invariants
    /// (`train < begin < end`).
    pub fn new(
        index: Option<u32>,
        name: impl Into<String>,
        train_len: usize,
        anomaly: Region,
    ) -> Result<Self> {
        let name = name.into();
        if name.is_empty() || name.contains('_') || name.contains('.') {
            return Err(CoreError::BadParameter {
                name: "name",
                value: f64::NAN,
                expected: "a non-empty mnemonic without '_' or '.'",
            });
        }
        if anomaly.start < train_len {
            return Err(CoreError::BadRegion {
                start: anomaly.start,
                end: anomaly.end,
                len: train_len,
            });
        }
        Ok(Self {
            index,
            name,
            train_len,
            anomaly,
        })
    }

    /// Parses `"[<idx>_]UCR_Anomaly_<name>_<train>_<begin>_<end>[.txt]"`.
    pub fn parse(s: &str) -> Result<Self> {
        let stem = s.strip_suffix(".txt").unwrap_or(s);
        let parts: Vec<&str> = stem.split('_').collect();
        let bad = || CoreError::BadParameter {
            name: "ucr_name",
            value: f64::NAN,
            expected: "[<idx>_]UCR_Anomaly_<name>_<train>_<begin>_<end>[.txt]",
        };
        // locate the "UCR" "Anomaly" marker
        let marker = parts
            .windows(2)
            .position(|w| w[0] == "UCR" && w[1] == "Anomaly")
            .ok_or_else(bad)?;
        let index = if marker == 1 {
            Some(parts[0].parse::<u32>().map_err(|_| bad())?)
        } else if marker == 0 {
            None
        } else {
            return Err(bad());
        };
        let rest = &parts[marker + 2..];
        if rest.len() < 4 {
            return Err(bad());
        }
        // the last three parts are the numbers; everything before is the name
        let numbers = &rest[rest.len() - 3..];
        let name = rest[..rest.len() - 3].join("-");
        let train_len: usize = numbers[0].parse().map_err(|_| bad())?;
        let begin: usize = numbers[1].parse().map_err(|_| bad())?;
        let end: usize = numbers[2].parse().map_err(|_| bad())?;
        // The real archive encodes inclusive end positions in some entries;
        // we normalize to half-open and require begin < end.
        let anomaly = Region::new(begin, end)?;
        Self::new(index, name, train_len, anomaly)
    }

    /// The file name (with `.txt`).
    pub fn file_name(&self) -> String {
        format!("{self}.txt")
    }
}

impl fmt::Display for UcrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(i) = self.index {
            write!(f, "{i:03}_")?;
        }
        write!(
            f,
            "UCR_Anomaly_{}_{}_{}_{}",
            self.name, self.train_len, self.anomaly.start, self.anomaly.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_index() {
        let n = UcrName::new(Some(4), "BIDMC1", 2500, Region::new(5400, 5600).unwrap()).unwrap();
        assert_eq!(n.to_string(), "004_UCR_Anomaly_BIDMC1_2500_5400_5600");
        assert_eq!(n.file_name(), "004_UCR_Anomaly_BIDMC1_2500_5400_5600.txt");
        let parsed = UcrName::parse(&n.file_name()).unwrap();
        assert_eq!(parsed, n);
    }

    #[test]
    fn roundtrip_without_index() {
        let n = UcrName::new(None, "park3m", 60000, Region::new(72150, 72495).unwrap()).unwrap();
        assert_eq!(n.to_string(), "UCR_Anomaly_park3m_60000_72150_72495");
        assert_eq!(UcrName::parse(&n.to_string()).unwrap(), n);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "nonsense.txt",
            "UCR_Anomaly_x_10.txt",
            "UCR_Anomaly_x_a_b_c.txt",
            "UCR_Anomaly_x_100_50_60.txt", // anomaly before train end
            "UCR_Anomaly_x_10_60_50.txt",  // inverted region
            "extra_stuff_UCR_Anomaly_x_1_2_3.txt",
        ] {
            assert!(UcrName::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn multi_part_names_are_joined() {
        let parsed = UcrName::parse("UCR_Anomaly_resp-deep-breath_4000_5000_5100").unwrap();
        assert_eq!(parsed.name, "resp-deep-breath");
        assert_eq!(parsed.train_len, 4000);
    }

    #[test]
    fn new_validates() {
        assert!(UcrName::new(None, "with_underscore", 10, Region::new(20, 30).unwrap()).is_err());
        assert!(UcrName::new(None, "", 10, Region::new(20, 30).unwrap()).is_err());
        assert!(UcrName::new(None, "ok", 100, Region::new(20, 30).unwrap()).is_err());
    }
}
