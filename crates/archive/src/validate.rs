//! Archive invariants (§3): the checks every dataset must pass before it
//! ships in the archive.
//!
//! * exactly **one** labeled anomaly (§2.3's "ideal number … is exactly
//!   one");
//! * the anomaly lies strictly after the train prefix, with a margin so
//!   windowed detectors fitting on the prefix cannot touch it;
//! * the train prefix is plausibly anomaly-free: its maximum discord
//!   (matrix-profile peak) is not an outlier relative to the prefix's own
//!   discord distribution;
//! * behavior modes present in the test region also appear in the train
//!   region (the paper's gait turnaround requirement) — checked as: the
//!   worst 1-NN distance from test windows (outside the anomaly) to the
//!   train prefix stays within a factor of the train's internal NN
//!   distances.

use tsad_core::dist::mass;
use tsad_core::windows::subsequence_count;
use tsad_core::Dataset;

use crate::error::{ArchiveError, Result};

/// Validation configuration.
#[derive(Debug, Clone)]
pub struct ValidationConfig {
    /// Window length used for the similarity checks.
    pub window: usize,
    /// Margin (points) required between train end and anomaly start.
    pub margin: usize,
    /// Allowed ratio of test-window novelty to train-internal novelty for
    /// *normal* test windows.
    pub novelty_ratio: f64,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        Self {
            window: 64,
            margin: 32,
            novelty_ratio: 2.5,
        }
    }
}

/// One validation failure (datasets can fail several checks at once).
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Not exactly one labeled region.
    NotSingleAnomaly { regions: usize },
    /// The anomaly starts too close to (or inside) the train prefix.
    AnomalyTooEarly { start: usize, required: usize },
    /// A normal test window has no similar counterpart in the train data.
    UncoveredTestMode {
        window_start: usize,
        distance: f64,
        allowed: f64,
    },
    /// The series is too short for the checks.
    TooShort { len: usize, needed: usize },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotSingleAnomaly { regions } => {
                write!(f, "expected exactly 1 labeled region, found {regions}")
            }
            Violation::AnomalyTooEarly { start, required } => {
                write!(f, "anomaly starts at {start}, required >= {required}")
            }
            Violation::UncoveredTestMode { window_start, distance, allowed } => write!(
                f,
                "test window at {window_start} is novel (distance {distance:.2} > allowed {allowed:.2}) but unlabeled"
            ),
            Violation::TooShort { len, needed } => {
                write!(f, "series length {len} below the {needed} the checks need")
            }
        }
    }
}

/// Runs all archive checks; returns the violations (empty = valid).
pub fn validate(dataset: &Dataset, config: &ValidationConfig) -> Result<Vec<Violation>> {
    let mut violations = Vec::new();
    let labels = dataset.labels();
    if labels.region_count() != 1 {
        violations.push(Violation::NotSingleAnomaly {
            regions: labels.region_count(),
        });
        return Ok(violations);
    }
    let anomaly = labels.regions()[0];
    let train_len = dataset.train_len();
    let x = dataset.values();
    let m = config.window;

    let needed = train_len + 3 * m;
    if x.len() < needed || subsequence_count(train_len.max(1), m.min(train_len.max(1))).is_err() {
        violations.push(Violation::TooShort {
            len: x.len(),
            needed,
        });
        return Ok(violations);
    }

    if anomaly.start < train_len + config.margin {
        violations.push(Violation::AnomalyTooEarly {
            start: anomaly.start,
            required: train_len + config.margin,
        });
    }

    // Train-internal novelty scale: NN distance of sampled train windows to
    // the rest of the train prefix.
    let train = &x[..train_len];
    let mut internal = Vec::new();
    let hop = (train_len / 32).max(1);
    let mut i = 0;
    while i + m <= train_len {
        let d = mass(&train[i..i + m], train)?;
        let nn = d
            .iter()
            .enumerate()
            .filter(|(j, _)| j.abs_diff(i) >= m)
            .map(|(_, &v)| v)
            .fold(f64::INFINITY, f64::min);
        if nn.is_finite() {
            internal.push(nn);
        }
        i += hop;
    }
    if internal.is_empty() {
        violations.push(Violation::TooShort {
            len: train_len,
            needed: 2 * m,
        });
        return Ok(violations);
    }
    let scale = tsad_core::stats::quantile(&internal, 0.95)?;
    let allowed = (scale * config.novelty_ratio).max(1e-6);

    // Every *normal* test window must have a counterpart in the train data.
    let mut j = train_len;
    let hop_test = (x.len() - train_len).div_ceil(128).max(1);
    while j + m <= x.len() {
        let near_anomaly = anomaly.dilate(m, x.len()).overlaps(&tsad_core::Region {
            start: j,
            end: j + m,
        });
        if !near_anomaly {
            let d = mass(&x[j..j + m], train)?;
            let nn = d.iter().copied().fold(f64::INFINITY, f64::min);
            if nn.is_finite() && nn > allowed {
                violations.push(Violation::UncoveredTestMode {
                    window_start: j,
                    distance: nn,
                    allowed,
                });
            }
        }
        j += hop_test;
    }
    Ok(violations)
}

/// Convenience: validate and convert violations into an error.
pub fn validate_strict(dataset: &Dataset, config: &ValidationConfig) -> Result<()> {
    let violations = validate(dataset, config)?;
    if violations.is_empty() {
        return Ok(());
    }
    let reason = violations
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("; ");
    Err(ArchiveError::InvalidDataset {
        name: dataset.name().to_string(),
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::{Labels, Region, TimeSeries};

    fn periodic_with_anomaly(n: usize, train: usize, at: usize) -> Dataset {
        let mut x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / 50.0).sin())
            .collect();
        for (k, v) in x.iter_mut().enumerate().skip(at).take(25) {
            *v = 1.5 + (k as f64 * 0.5).sin() * 0.2;
        }
        let ts = TimeSeries::new("v", x).unwrap();
        let labels = Labels::single(
            n,
            Region {
                start: at,
                end: at + 25,
            },
        )
        .unwrap();
        Dataset::new(ts, labels, train).unwrap()
    }

    #[test]
    fn clean_dataset_validates() {
        let d = periodic_with_anomaly(3000, 1000, 2000);
        let v = validate(&d, &ValidationConfig::default()).unwrap();
        assert!(v.is_empty(), "{v:?}");
        assert!(validate_strict(&d, &ValidationConfig::default()).is_ok());
    }

    #[test]
    fn multi_anomaly_fails() {
        let ts = TimeSeries::new("m", vec![0.0; 4000]).unwrap();
        let labels = Labels::new(
            4000,
            vec![
                Region::new(2000, 2010).unwrap(),
                Region::new(3000, 3010).unwrap(),
            ],
        )
        .unwrap();
        let d = Dataset::new(ts, labels, 1000).unwrap();
        let v = validate(&d, &ValidationConfig::default()).unwrap();
        assert_eq!(v, vec![Violation::NotSingleAnomaly { regions: 2 }]);
        assert!(validate_strict(&d, &ValidationConfig::default()).is_err());
    }

    #[test]
    fn anomaly_too_close_to_train_fails() {
        let d = periodic_with_anomaly(3000, 1000, 1005);
        let v = validate(&d, &ValidationConfig::default()).unwrap();
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::AnomalyTooEarly { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn uncovered_test_mode_fails() {
        // test region contains an unlabeled novel mode (a square wave) the
        // train prefix never shows
        let n = 3000;
        let mut x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / 50.0).sin())
            .collect();
        // labeled anomaly at 2000
        for (k, v) in x.iter_mut().enumerate().skip(2000).take(25) {
            *v = 1.5 + (k as f64 * 0.5).sin() * 0.2;
        }
        // unlabeled novel mode at 2500..2800
        for (k, v) in x.iter_mut().enumerate().skip(2500).take(300) {
            *v = if (k / 10) % 2 == 0 { 1.0 } else { -1.0 };
        }
        let ts = TimeSeries::new("u", x).unwrap();
        let labels = Labels::single(
            n,
            Region {
                start: 2000,
                end: 2025,
            },
        )
        .unwrap();
        let d = Dataset::new(ts, labels, 1000).unwrap();
        let v = validate(&d, &ValidationConfig::default()).unwrap();
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::UncoveredTestMode { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn too_short_fails() {
        let ts = TimeSeries::new("s", vec![0.0; 120]).unwrap();
        let labels = Labels::single(120, Region::new(100, 105).unwrap()).unwrap();
        let d = Dataset::new(ts, labels, 50).unwrap();
        let v = validate(&d, &ValidationConfig::default()).unwrap();
        assert!(
            v.iter().any(|x| matches!(x, Violation::TooShort { .. })),
            "{v:?}"
        );
    }
}
