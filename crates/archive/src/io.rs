//! Text serialization of archive datasets (one value per line, as the UCR
//! archive distributes them) and directory-level read/write.

use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use tsad_core::error::CoreError;
use tsad_core::{Dataset, Labels, TimeSeries};

use crate::error::{ArchiveError, Result};
use crate::name::UcrName;

/// Serializes values one-per-line.
pub fn write_values(path: &Path, values: &[f64]) -> std::io::Result<()> {
    let file = fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for v in values {
        writeln!(w, "{v}")?;
    }
    w.flush()
}

/// Reads one-value-per-line text data (blank lines ignored).
pub fn read_values(path: &Path) -> std::io::Result<Vec<f64>> {
    let file = fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let v: f64 = t.parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad value {t:?}: {e}"),
            )
        })?;
        out.push(v);
    }
    Ok(out)
}

/// Writes a dataset into `dir` under its UCR name; returns the path.
///
/// The dataset must satisfy the archive invariants (exactly one labeled
/// region, after the train prefix) so the name can carry the labels.
pub fn write_dataset(dir: &Path, index: Option<u32>, dataset: &Dataset) -> Result<PathBuf> {
    let labels = dataset.labels();
    if labels.region_count() != 1 {
        return Err(ArchiveError::InvalidDataset {
            name: dataset.name().to_string(),
            reason: format!(
                "{} labeled regions; the archive requires exactly one",
                labels.region_count()
            ),
        });
    }
    // A dataset named with the UCR convention already carries a mnemonic;
    // reuse it rather than re-wrapping the whole name.
    let base = match UcrName::parse(dataset.name()) {
        Ok(parsed) => parsed.name,
        Err(_) => dataset.name().to_string(),
    };
    let mnemonic: String = base
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    let mnemonic = if mnemonic.is_empty() {
        "unnamed".to_string()
    } else {
        mnemonic
    };
    let name = UcrName::new(index, mnemonic, dataset.train_len(), labels.regions()[0])?;
    let path = dir.join(name.file_name());
    write_values(&path, dataset.values()).map_err(|source| ArchiveError::Io {
        path: path.clone(),
        source,
    })?;
    Ok(path)
}

/// Loads a dataset from a UCR-named file (labels come from the name).
pub fn read_dataset(path: &Path) -> Result<Dataset> {
    let file_name = path.file_name().and_then(|s| s.to_str()).ok_or_else(|| {
        ArchiveError::from(CoreError::BadParameter {
            name: "path",
            value: f64::NAN,
            expected: "a UTF-8 file name",
        })
    })?;
    let name = UcrName::parse(file_name)?;
    let values = read_values(path).map_err(|source| ArchiveError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let ts = TimeSeries::new(name.to_string(), values)?;
    let labels = Labels::single(ts.len(), name.anomaly)?;
    Ok(Dataset::new(ts, labels, name.train_len)?)
}

/// Loads every `.txt` UCR dataset in a directory, sorted by file name.
pub fn read_archive_dir(dir: &Path) -> Result<Vec<Dataset>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|source| ArchiveError::Io {
            path: dir.to_path_buf(),
            source,
        })?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    paths.sort();
    paths.iter().map(|p| read_dataset(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::Region;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tsad-archive-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_dataset() -> Dataset {
        let mut x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).sin()).collect();
        x[400] += 4.0;
        let ts = TimeSeries::new("demo", x).unwrap();
        let labels = Labels::single(500, Region::new(400, 402).unwrap()).unwrap();
        Dataset::new(ts, labels, 200).unwrap()
    }

    #[test]
    fn roundtrip_dataset() {
        let dir = tmpdir("roundtrip");
        let d = sample_dataset();
        let path = write_dataset(&dir, Some(7), &d).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("007_UCR_Anomaly_demo_200_400_402"));
        let loaded = read_dataset(&path).unwrap();
        assert_eq!(loaded.len(), d.len());
        assert_eq!(loaded.train_len(), 200);
        assert_eq!(loaded.labels().regions(), d.labels().regions());
        for (a, b) in loaded.values().iter().zip(d.values()) {
            assert!((a - b).abs() < 1e-12);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_rejects_multi_region() {
        let dir = tmpdir("multi");
        let ts = TimeSeries::new("m", vec![0.0; 100]).unwrap();
        let labels = Labels::new(
            100,
            vec![Region::new(50, 52).unwrap(), Region::new(70, 72).unwrap()],
        )
        .unwrap();
        let d = Dataset::new(ts, labels, 10).unwrap();
        assert!(write_dataset(&dir, None, &d).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_archive_dir_sorts() {
        let dir = tmpdir("dir");
        let d = sample_dataset();
        write_dataset(&dir, Some(2), &d).unwrap();
        write_dataset(&dir, Some(1), &d).unwrap();
        // non-txt files are ignored
        fs::write(dir.join("README.md"), "ignore me").unwrap();
        let all = read_archive_dir(&dir).unwrap();
        assert_eq!(all.len(), 2);
        assert!(all[0].name().starts_with("001_"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_values_skips_blank_lines_rejects_garbage() {
        let dir = tmpdir("values");
        let p = dir.join("v.txt");
        fs::write(&p, "1.5\n\n2.5\n").unwrap();
        assert_eq!(read_values(&p).unwrap(), vec![1.5, 2.5]);
        fs::write(&p, "1.5\nnot-a-number\n").unwrap();
        assert!(read_values(&p).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
