//! Property-based tests for the archive: name-codec round-trips and
//! builder invariants across the seed space.

use proptest::prelude::*;
use tsad_archive::builder::{build_entry, Difficulty, Domain};
use tsad_archive::name::UcrName;
use tsad_core::Region;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn name_codec_roundtrips(
        index in prop::option::of(0u32..1000),
        train in 1usize..100_000,
        width in 1usize..5_000,
        offset in 1usize..50_000,
    ) {
        let begin = train + offset;
        let anomaly = Region::new(begin, begin + width).unwrap();
        let name = UcrName::new(index, "prop", train, anomaly).unwrap();
        let file = name.file_name();
        prop_assert!(file.ends_with(".txt"));
        let parsed = UcrName::parse(&file).unwrap();
        prop_assert_eq!(parsed, name);
    }

    #[test]
    fn name_parse_never_panics(s in ".{0,60}") {
        let _ = UcrName::parse(&s);
    }

    #[test]
    fn name_rejects_anomaly_before_train(
        train in 100usize..10_000,
        begin in 1usize..99,
    ) {
        let anomaly = Region::new(begin, begin + 5).unwrap();
        prop_assert!(UcrName::new(None, "x", train, anomaly).is_err());
    }
}

proptest! {
    // builder entries are expensive; keep the case count low
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn every_domain_builds_valid_entries(seed in 0u64..100_000) {
        for domain in [
            Domain::Physiology,
            Domain::Gait,
            Domain::Industry,
            Domain::Space,
            Domain::Robotics,
            Domain::Entomology,
            Domain::Respiration,
        ] {
            for difficulty in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
                let e = build_entry(seed, domain, difficulty);
                prop_assert_eq!(e.dataset.labels().region_count(), 1, "{:?}", domain);
                let r = e.dataset.labels().regions()[0];
                prop_assert!(r.start >= e.dataset.train_len(), "{:?}", domain);
                prop_assert!(e.dataset.values().iter().all(|v| v.is_finite()));
                prop_assert_eq!(e.provenance.seed, seed);
            }
        }
    }
}
