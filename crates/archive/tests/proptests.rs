//! Property-based tests for the archive: name-codec round-trips and
//! builder invariants across the seed space.

use proptest::prelude::*;
use tsad_archive::builder::{build_entry, Difficulty, Domain};
use tsad_archive::name::UcrName;
use tsad_core::Region;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn name_codec_roundtrips(
        index in prop::option::of(0u32..1000),
        train in 1usize..100_000,
        width in 1usize..5_000,
        offset in 1usize..50_000,
    ) {
        let begin = train + offset;
        let anomaly = Region::new(begin, begin + width).unwrap();
        let name = UcrName::new(index, "prop", train, anomaly).unwrap();
        let file = name.file_name();
        prop_assert!(file.ends_with(".txt"));
        let parsed = UcrName::parse(&file).unwrap();
        prop_assert_eq!(parsed, name);
    }

    #[test]
    fn name_parse_never_panics(s in ".{0,60}") {
        let _ = UcrName::parse(&s);
    }

    #[test]
    fn name_parse_survives_hostile_numeric_fields(
        a in ".{0,12}",
        b in ".{0,12}",
        big in prop::collection::vec(0u8..10, 18..26),
    ) {
        // overlong digit runs must overflow gracefully, not panic
        let digits: String = big.iter().map(|d| char::from(b'0' + d)).collect();
        for candidate in [
            format!("001_UCR_Anomaly_{a}_{digits}_{b}_{digits}.txt"),
            format!("{digits}_UCR_Anomaly_x_{digits}_{digits}_{digits}.txt"),
            format!("_UCR_Anomaly_{a}_{b}__.txt"),
        ] {
            let _ = UcrName::parse(&candidate);
        }
    }

    #[test]
    fn name_rejects_anomaly_before_train(
        train in 100usize..10_000,
        begin in 1usize..99,
    ) {
        let anomaly = Region::new(begin, begin + 5).unwrap();
        prop_assert!(UcrName::new(None, "x", train, anomaly).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn manifest_reader_never_panics_on_arbitrary_text(
        body in ".{0,200}",
        case in 0u32..1_000_000,
    ) {
        // read_manifest must reject (or tolerate) any file content with a
        // typed error, never a panic
        let dir = std::env::temp_dir().join(format!("tsad-archive-fuzz-{case}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("MANIFEST.tsv"), &body).unwrap();
        let _ = tsad_archive::manifest::read_manifest(&dir);
        // hostile tab layouts: right column count, garbage fields
        std::fs::write(
            dir.join("MANIFEST.tsv"),
            format!("header\na\tb\tc\t{body}\te\n\t\t\t\t\n"),
        )
        .unwrap();
        let _ = tsad_archive::manifest::read_manifest(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    // builder entries are expensive; keep the case count low
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn every_domain_builds_valid_entries(seed in 0u64..100_000) {
        for domain in [
            Domain::Physiology,
            Domain::Gait,
            Domain::Industry,
            Domain::Space,
            Domain::Robotics,
            Domain::Entomology,
            Domain::Respiration,
        ] {
            for difficulty in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
                let e = build_entry(seed, domain, difficulty);
                prop_assert_eq!(e.dataset.labels().region_count(), 1, "{:?}", domain);
                let r = e.dataset.labels().regions()[0];
                prop_assert!(r.start >= e.dataset.train_len(), "{:?}", domain);
                prop_assert!(e.dataset.values().iter().all(|v| v.is_finite()));
                prop_assert_eq!(e.provenance.seed, seed);
            }
        }
    }
}
