//! Offline stand-in for the subset of the `criterion` API used by the
//! workspace's benches.
//!
//! Provides genuine wall-clock measurement — per benchmark: a warm-up
//! phase, then `sample_size` timed samples whose iteration count is chosen
//! so each sample runs ≳ `TARGET_SAMPLE` — and prints
//! `group/name  mean  [min .. max]` lines. The statistical analysis,
//! plotting, and regression detection of the real crate are out of scope;
//! the numbers are honest and comparable run-to-run on the same machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock duration of one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (`--bench`, an optional name filter;
    /// everything else is accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        self.filter = filter;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: None,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let full = id.to_string();
        if self.matches(&full) {
            run_benchmark(&full, 10, None, f);
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets a target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Benches `f` under `group-name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_benchmark(&full, self.sample_size, self.measurement_time, f);
        }
    }

    /// Benches `f` with a borrowed input under `group-name/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (output is already flushed; kept for API parity).
    pub fn finish(self) {}
}

/// Benchmark identifier (mirror of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Per-benchmark timing harness handed to the closure.
pub struct Bencher {
    /// Iterations per timed sample (calibrated before sampling).
    iters: u64,
    /// Collected per-iteration durations, one entry per sample.
    samples: Vec<Duration>,
    /// When set, run exactly one iteration and record nothing (calibration).
    calibrating: bool,
    /// Duration of the last calibration iteration.
    last_calibration: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.calibrating {
            let start = Instant::now();
            black_box(routine());
            self.last_calibration = start.elapsed();
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.samples.push(total / self.iters.max(1) as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Option<Duration>,
    mut f: F,
) {
    // calibration: run single iterations until we know roughly how long one
    // takes (also serves as warm-up)
    let mut b = Bencher {
        iters: 1,
        samples: Vec::new(),
        calibrating: true,
        last_calibration: Duration::ZERO,
    };
    let calib_start = Instant::now();
    let mut one_iter = Duration::ZERO;
    let mut calib_runs = 0u32;
    while calib_runs < 3 || (calib_start.elapsed() < Duration::from_millis(50) && calib_runs < 100)
    {
        f(&mut b);
        one_iter = b.last_calibration.max(Duration::from_nanos(1));
        calib_runs += 1;
    }

    let per_sample = measurement_time
        .map(|t| t / sample_size.max(1) as u32)
        .unwrap_or(TARGET_SAMPLE)
        .max(Duration::from_millis(1));
    let iters = (per_sample.as_nanos() / one_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    b.calibrating = false;
    b.iters = iters;
    for _ in 0..sample_size {
        f(&mut b);
    }

    let mean = b.samples.iter().sum::<Duration>() / b.samples.len().max(1) as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<56} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        b.samples.len(),
        iters
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main` (mirror of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        let data = vec![1.0f64; 64];
        group.bench_with_input(BenchmarkId::from_parameter(64), &data, |b, d| {
            b.iter(|| d.iter().sum::<f64>())
        });
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("something-else", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(!ran);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
