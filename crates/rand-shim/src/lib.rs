//! Offline stand-in for the subset of the `rand` 0.8 API used in this
//! workspace.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` crate can never be resolved. This shim implements the
//! same *source-level* API for the calls the repository makes:
//!
//! * `rand::rngs::StdRng` + `SeedableRng::seed_from_u64`
//! * `Rng::{gen, gen_range, gen_bool, fill}` for the types actually used
//!   (`f64`, the integer primitives, ranges and inclusive ranges)
//!
//! The generator behind [`rngs::StdRng`] is ChaCha with 12 rounds — the
//! same algorithm the real `rand` 0.8 `StdRng` uses — seeded through the
//! standard SplitMix64 expansion, so streams are deterministic, of
//! cryptographic quality, and stable across platforms. Bit-exact equality
//! with crates.io `rand` is *not* guaranteed and nothing in the workspace
//! relies on it; every test asserts statistical properties, not literal
//! streams.

/// Core random-number-generator interface (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator constructible from a seed (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same derivation `rand_core` documents.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), the standard construction
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_lossless)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform, unbiased draw below `n` (Lemire's widening-multiply method).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = n.wrapping_neg() % n; // 2^64 mod n low values are rejected
    loop {
        let v = rng.next_u64();
        let wide = (v as u128) * (n as u128);
        if (wide as u64) >= zone {
            return (wide >> 64) as u64;
        }
    }
}

/// Types with a uniform sampler over arbitrary sub-ranges. The single
/// blanket [`SampleRange`] impl below goes through this trait so type
/// inference can link a range literal's element type to `gen_range`'s
/// return type (mirrors the real crate's `SampleUniform` design).
pub trait SampleUniform: Copy {
    #[doc(hidden)]
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = sample_below(rng, span + 1);
                    ((lo as $wide).wrapping_add(off as $wide)) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let off = sample_below(rng, span);
                    ((lo as $wide).wrapping_add(off as $wide)) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(
                    lo < hi && (hi - lo).is_finite(),
                    "cannot sample empty or non-finite float range"
                );
                let unit = <$t as Standard>::sample_standard(rng);
                let v = lo + unit * (hi - lo);
                // guard against `lo + 1.0 * span` rounding up to `hi`
                if v < hi { v } else { <$t>::from_bits(hi.to_bits() - 1) }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges a value can be drawn from (`Rng::gen_range`).
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing convenience methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample over a type's full domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: ChaCha (12 rounds), the
    /// same algorithm crates.io `rand` 0.8 uses for its `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// ChaCha state: 4 constant words, 8 key words, 2 counter words,
        /// 2 nonce words.
        state: [u32; 16],
        /// Current 16-word output block.
        block: [u32; 16],
        /// Next unread word in `block` (16 = exhausted).
        cursor: usize,
    }

    const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    #[inline(always)]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut w = self.state;
            for _ in 0..6 {
                // double round = column round + diagonal round
                quarter_round(&mut w, 0, 4, 8, 12);
                quarter_round(&mut w, 1, 5, 9, 13);
                quarter_round(&mut w, 2, 6, 10, 14);
                quarter_round(&mut w, 3, 7, 11, 15);
                quarter_round(&mut w, 0, 5, 10, 15);
                quarter_round(&mut w, 1, 6, 11, 12);
                quarter_round(&mut w, 2, 7, 8, 13);
                quarter_round(&mut w, 3, 4, 9, 14);
            }
            for (out, (&work, &init)) in self.block.iter_mut().zip(w.iter().zip(&self.state)) {
                *out = work.wrapping_add(init);
            }
            // 64-bit block counter in words 12/13
            let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
            self.state[12] = counter as u32;
            self.state[13] = (counter >> 32) as u32;
            self.cursor = 0;
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.cursor >= 16 {
                self.refill();
            }
            let v = self.block[self.cursor];
            self.cursor += 1;
            v
        }

        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            lo | (hi << 32)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&CHACHA_CONSTANTS);
            for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
                *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            // counter and nonce start at zero
            Self {
                state,
                block: [0; 16],
                cursor: 16,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn unit_floats_have_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
