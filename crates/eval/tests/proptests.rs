//! Property-based tests for scoring-protocol invariants.

use proptest::prelude::*;
use tsad_core::{Labels, Region};
use tsad_eval::auc::{pr_auc, roc_auc};
use tsad_eval::confusion::Confusion;
use tsad_eval::nab::{nab_score, NabProfile};
use tsad_eval::range::{range_f1, range_precision, range_recall, Bias, RangeParams};
use tsad_eval::scoring::{point_adjust_f1, pointwise_f1, tolerance_f1};

fn mask(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(prop::bool::weighted(0.1), len..=len)
}

fn labels_strategy(len: usize) -> impl Strategy<Value = Labels> {
    (1usize..6).prop_flat_map(move |count| {
        prop::collection::vec((0usize..len.saturating_sub(6), 1usize..5), count..=count).prop_map(
            move |raw| {
                let mut mask = vec![false; len];
                for (start, width) in raw {
                    for m in mask.iter_mut().skip(start).take(width) {
                        *m = true;
                    }
                }
                Labels::from_mask(&mask)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f1_protocols_are_bounded_and_ordered(
        pred in mask(300),
        labels in labels_strategy(300),
    ) {
        let pw = pointwise_f1(&pred, &labels).unwrap();
        let pa = point_adjust_f1(&pred, &labels).unwrap();
        let tol0 = tolerance_f1(&pred, &labels, 0).unwrap();
        let tol5 = tolerance_f1(&pred, &labels, 5).unwrap();
        for v in [pw, pa, tol0, tol5] {
            prop_assert!((0.0..=1.0).contains(&v), "{}", v);
        }
        // point-adjust can only help
        prop_assert!(pa >= pw - 1e-12);
        // more slop can only help
        prop_assert!(tol5 >= tol0 - 1e-12);
    }

    #[test]
    fn perfect_prediction_maxes_every_protocol(labels in labels_strategy(300)) {
        prop_assume!(labels.region_count() > 0);
        let truth = labels.to_mask();
        prop_assert!((pointwise_f1(&truth, &labels).unwrap() - 1.0).abs() < 1e-12);
        prop_assert!((point_adjust_f1(&truth, &labels).unwrap() - 1.0).abs() < 1e-12);
        prop_assert!((tolerance_f1(&truth, &labels, 3).unwrap() - 1.0).abs() < 1e-12);
        prop_assert!((range_f1(&labels, &labels, RangeParams::default()).unwrap() - 1.0).abs() < 1e-9);
        // NAB: detecting the start of every window is (near-)perfect
        let detections: Vec<usize> =
            tsad_eval::nab::nab_windows(&labels).iter().map(|w| w.start).collect();
        let s = nab_score(&detections, &labels, NabProfile::standard()).unwrap();
        prop_assert!(s > 95.0, "{}", s);
    }

    #[test]
    fn confusion_counts_partition_the_series(
        pred in mask(200),
        truth in mask(200),
    ) {
        let c = Confusion::from_masks(&pred, &truth).unwrap();
        prop_assert_eq!(c.tp + c.fp + c.fn_ + c.tn, 200);
        prop_assert!((0.0..=1.0).contains(&c.precision()));
        prop_assert!((0.0..=1.0).contains(&c.recall()));
        prop_assert!((0.0..=1.0).contains(&c.f1()));
    }

    #[test]
    fn range_metrics_bounded(
        pred in labels_strategy(300),
        real in labels_strategy(300),
    ) {
        let r = range_recall(&pred, &real, RangeParams::default()).unwrap();
        let p = range_precision(&pred, &real, Bias::Flat).unwrap();
        prop_assert!((0.0..=1.0).contains(&r), "{}", r);
        prop_assert!((0.0..=1.0).contains(&p), "{}", p);
    }

    #[test]
    fn auc_bounds_and_flip_antisymmetry(
        score in prop::collection::vec(-10.0f64..10.0, 100..200),
    ) {
        // build labels guaranteed non-degenerate
        let len = score.len();
        let labels = Labels::single(len, Region::new(len / 2, len / 2 + 5).unwrap()).unwrap();
        let auc = roc_auc(&score, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&auc));
        // negating the score mirrors ROC-AUC around 0.5
        let neg: Vec<f64> = score.iter().map(|v| -v).collect();
        let auc_neg = roc_auc(&neg, &labels).unwrap();
        prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9, "{} + {}", auc, auc_neg);
        let pr = pr_auc(&score, &labels).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&pr), "{}", pr);
    }

    #[test]
    fn auc_is_rank_invariant(
        score in prop::collection::vec(0.0f64..1.0, 60..120),
    ) {
        // any strictly monotone transform preserves ROC-AUC
        let len = score.len();
        let labels = Labels::single(len, Region::new(10, 20).unwrap()).unwrap();
        let auc = roc_auc(&score, &labels).unwrap();
        let warped: Vec<f64> = score.iter().map(|v| v.exp() * 3.0 + 1.0).collect();
        let auc_warped = roc_auc(&warped, &labels).unwrap();
        prop_assert!((auc - auc_warped).abs() < 1e-9);
    }

    #[test]
    fn nab_score_is_at_most_100(
        detections in prop::collection::vec(0usize..500, 0..20),
        labels in labels_strategy(500),
    ) {
        prop_assume!(labels.region_count() > 0);
        let s = nab_score(&detections, &labels, NabProfile::standard()).unwrap();
        prop_assert!(s <= 100.0 + 1e-9, "{}", s);
    }
}
