//! Threshold-free metrics: ROC-AUC and PR-AUC (average precision) of a
//! continuous anomaly score against point labels.
//!
//! These complete the §2.6 protocol zoo — several of the papers the study
//! critiques report AUCs instead of F1, and the flaws distort them just as
//! badly (an end-biased benchmark hands the naive last-point detector a
//! respectable AUC for free).

use tsad_core::error::{CoreError, Result};
use tsad_core::Labels;

/// Sorts indices by descending score (ties keep index order, which makes
/// the metrics deterministic).
fn ranked_indices(score: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..score.len()).collect();
    idx.sort_by(|&a, &b| score[b].total_cmp(&score[a]).then(a.cmp(&b)));
    idx
}

fn validate(score: &[f64], labels: &Labels) -> Result<(usize, usize)> {
    if score.len() != labels.len() {
        return Err(CoreError::LengthMismatch {
            left: score.len(),
            right: labels.len(),
        });
    }
    if score.is_empty() {
        return Err(CoreError::EmptySeries);
    }
    if let Some(i) = score.iter().position(|v| !v.is_finite()) {
        return Err(CoreError::NonFinite { index: i });
    }
    let positives = labels.anomalous_points();
    let negatives = score.len() - positives;
    Ok((positives, negatives))
}

/// ROC-AUC: the probability that a random anomalous point outranks a
/// random normal point. Ties contribute half. Errors when either class is
/// empty (the metric is undefined).
pub fn roc_auc(score: &[f64], labels: &Labels) -> Result<f64> {
    let (positives, negatives) = validate(score, labels)?;
    if positives == 0 || negatives == 0 {
        return Err(CoreError::BadParameter {
            name: "classes",
            value: positives as f64,
            expected: "at least one anomalous and one normal point",
        });
    }
    // rank-sum (Mann–Whitney) formulation with midranks for ties
    let idx = ranked_indices(score);
    let mask = labels.to_mask();
    let n = score.len();
    let mut rank_sum = 0.0; // sum of (descending) ranks of positives
    let mut i = 0;
    while i < n {
        // find tie group [i, j)
        let mut j = i + 1;
        while j < n && score[idx[j]] == score[idx[i]] {
            j += 1;
        }
        let midrank = (i + 1 + j) as f64 / 2.0; // average of ranks i+1..=j
        for &k in &idx[i..j] {
            if mask[k] {
                rank_sum += midrank;
            }
        }
        i = j;
    }
    // With descending ranks, U = P·N + P(P+1)/2 − rank_sum counts pairs
    // where the positive ranks *better* (smaller rank number).
    let p = positives as f64;
    let nn = negatives as f64;
    let u = p * nn + p * (p + 1.0) / 2.0 - rank_sum;
    Ok(u / (p * nn))
}

/// PR-AUC via average precision: `Σ (R_k − R_{k−1}) · P_k` walking down
/// the ranked list. Errors when there are no positives.
pub fn pr_auc(score: &[f64], labels: &Labels) -> Result<f64> {
    let (positives, _) = validate(score, labels)?;
    if positives == 0 {
        return Err(CoreError::BadParameter {
            name: "positives",
            value: 0.0,
            expected: "at least one anomalous point",
        });
    }
    let idx = ranked_indices(score);
    let mask = labels.to_mask();
    let mut tp = 0usize;
    let mut ap = 0.0;
    let mut i = 0;
    let n = score.len();
    // process tie groups atomically (a threshold can only sit between
    // distinct score values)
    while i < n {
        let mut j = i + 1;
        while j < n && score[idx[j]] == score[idx[i]] {
            j += 1;
        }
        let group_tp = idx[i..j].iter().filter(|&&k| mask[k]).count();
        if group_tp > 0 {
            let prev_recall = tp as f64 / positives as f64;
            tp += group_tp;
            let recall = tp as f64 / positives as f64;
            let precision = tp as f64 / j as f64;
            ap += (recall - prev_recall) * precision;
        }
        i = j;
    }
    Ok(ap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::Region;

    fn labels(len: usize, r: (usize, usize)) -> Labels {
        Labels::single(len, Region::new(r.0, r.1).unwrap()).unwrap()
    }

    #[test]
    fn perfect_scorer_gets_auc_one() {
        let l = labels(10, (7, 10));
        let score: Vec<f64> = (0..10)
            .map(|i| if i >= 7 { 10.0 + i as f64 } else { i as f64 })
            .collect();
        assert!((roc_auc(&score, &l).unwrap() - 1.0).abs() < 1e-12);
        assert!((pr_auc(&score, &l).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scorer_gets_roc_zero() {
        let l = labels(10, (7, 10));
        let score: Vec<f64> = (0..10).map(|i| -(i as f64)).collect();
        assert!(roc_auc(&score, &l).unwrap() < 1e-12);
    }

    #[test]
    fn constant_score_is_chance_level() {
        let l = labels(100, (90, 100));
        let score = vec![1.0; 100];
        let roc = roc_auc(&score, &l).unwrap();
        assert!((roc - 0.5).abs() < 1e-12, "{roc}");
        // PR-AUC at chance equals the positive rate
        let pr = pr_auc(&score, &l).unwrap();
        assert!((pr - 0.1).abs() < 1e-12, "{pr}");
    }

    #[test]
    fn roc_matches_naive_pair_count() {
        // brute-force check on a small mixed example with ties
        let l = Labels::from_mask(&[false, true, false, true, false, true]);
        let score = [0.1, 0.9, 0.5, 0.5, 0.2, 0.8];
        let mask = l.to_mask();
        let mut wins = 0.0;
        let mut total = 0.0;
        for i in 0..6 {
            for j in 0..6 {
                if mask[i] && !mask[j] {
                    total += 1.0;
                    if score[i] > score[j] {
                        wins += 1.0;
                    } else if score[i] == score[j] {
                        wins += 0.5;
                    }
                }
            }
        }
        let expected = wins / total;
        let got = roc_auc(&score, &l).unwrap();
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn validates_inputs() {
        let l = labels(10, (5, 6));
        assert!(roc_auc(&[1.0; 9], &l).is_err());
        assert!(roc_auc(&[], &Labels::empty(0)).is_err());
        let all_normal = Labels::empty(10);
        assert!(roc_auc(&[1.0; 10], &all_normal).is_err());
        assert!(pr_auc(&[1.0; 10], &all_normal).is_err());
        let mut with_nan = vec![1.0; 10];
        with_nan[3] = f64::NAN;
        assert!(roc_auc(&with_nan, &l).is_err());
    }

    #[test]
    fn end_biased_benchmark_gifts_auc_to_position_scores() {
        // §2.5 consequence: on a benchmark whose anomalies sit at the end,
        // the "score = position" pseudo-detector gets high AUC
        let mut mask = vec![false; 1000];
        for m in mask.iter_mut().skip(950) {
            *m = true;
        }
        let l = Labels::from_mask(&mask);
        let position_score: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let auc = roc_auc(&position_score, &l).unwrap();
        assert!(auc > 0.97, "{auc}");
    }
}
