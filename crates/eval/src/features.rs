//! Per-window feature vectors — the statistics the paper tabulates in the
//! Fig. 6 argument ("if we measure its mean, min, max, variance,
//! autocorrelation, complexity, Euclidean distance to the nearest
//! neighbor, etc. … there is simply nothing remarkable about it").

use tsad_core::dist::mass;
use tsad_core::error::Result;
use tsad_core::{stats, Region};

/// Feature vector of one subsequence.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFeatures {
    /// Window start.
    pub start: usize,
    /// Window length.
    pub len: usize,
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Population variance.
    pub variance: f64,
    /// Lag-1 autocorrelation.
    pub autocorrelation: f64,
    /// Complexity estimate `sqrt(Σ diff²)`.
    pub complexity: f64,
    /// Z-normalized Euclidean distance to the nearest non-overlapping
    /// window elsewhere in the series.
    pub nn_distance: f64,
}

/// Computes the features of `x[region]` in the context of the full series.
pub fn window_features(x: &[f64], region: Region) -> Result<WindowFeatures> {
    let w = &x[region.start..region.end.min(x.len())];
    let m = w.len();
    let dists = mass(w, x)?;
    let nn = dists
        .iter()
        .enumerate()
        .filter(|(j, _)| j.abs_diff(region.start) >= m)
        .map(|(_, &d)| d)
        .fold(f64::INFINITY, f64::min);
    Ok(WindowFeatures {
        start: region.start,
        len: m,
        mean: stats::mean(w)?,
        min: w.iter().copied().fold(f64::INFINITY, f64::min),
        max: w.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        variance: stats::variance(w)?,
        autocorrelation: if m >= 3 {
            stats::autocorrelation(w, 1)?
        } else {
            0.0
        },
        complexity: stats::complexity_estimate(w),
        nn_distance: if nn.is_finite() { nn } else { 0.0 },
    })
}

/// How many population standard deviations `value` sits from the
/// population mean — used to ask "is the labeled window's feature
/// remarkable relative to the comparison windows?".
pub fn feature_z_score(value: f64, population: &[f64]) -> Result<f64> {
    let mu = stats::mean(population)?;
    let sd = stats::std_dev(population)?;
    if sd < 1e-12 {
        return Ok(0.0);
    }
    Ok((value - mu) / sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_of_constant_window() {
        let x = vec![2.0; 100];
        let f = window_features(&x, Region::new(40, 60).unwrap()).unwrap();
        assert_eq!(f.mean, 2.0);
        assert_eq!(f.variance, 0.0);
        assert_eq!(f.complexity, 0.0);
        assert_eq!(f.min, 2.0);
        assert_eq!(f.max, 2.0);
        assert_eq!(f.nn_distance, 0.0, "identical constant windows everywhere");
    }

    #[test]
    fn unusual_window_has_large_nn_distance() {
        let mut x: Vec<f64> = (0..600)
            .map(|i| (i as f64 * std::f64::consts::TAU / 30.0).sin())
            .collect();
        for (k, v) in x.iter_mut().enumerate().skip(300).take(30) {
            *v = ((k * k) as f64 * 0.01).sin() * 2.0;
        }
        let odd = window_features(&x, Region::new(300, 330).unwrap()).unwrap();
        let typical = window_features(&x, Region::new(90, 120).unwrap()).unwrap();
        assert!(odd.nn_distance > typical.nn_distance * 2.0);
    }

    #[test]
    fn z_scores() {
        let population = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let z = feature_z_score(3.0, &population).unwrap();
        assert!(z.abs() < 1e-12);
        let z = feature_z_score(6.0, &population).unwrap();
        assert!(z > 2.0);
        assert_eq!(feature_z_score(1.0, &[2.0, 2.0]).unwrap(), 0.0);
    }
}
