//! Plain-text rendering: aligned tables and ASCII plots for the `repro`
//! binary's regeneration of the paper's tables and figures (§4.3 insists
//! results should be *looked at*, so the harness draws everything it
//! measures).

/// A simple aligned-column text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate().take(cols) {
                line.push_str("| ");
                line.push_str(cell);
                line.extend(std::iter::repeat_n(
                    ' ',
                    widths[c] - cell.chars().count() + 1,
                ));
            }
            line.push('|');
            line
        };
        let separator: String = {
            let mut s = String::new();
            for w in &widths {
                s.push('|');
                s.extend(std::iter::repeat_n('-', w + 2));
            }
            s.push('|');
            s
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a series as a one-line unicode sparkline (8 levels).
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    // downsample by max-pooling so narrow peaks stay visible
    let bucket = values.len().div_ceil(width);
    let pooled: Vec<f64> = values
        .chunks(bucket)
        .map(|c| c.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        .collect();
    let lo = pooled.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = pooled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    pooled
        .iter()
        .map(|&v| {
            let level = (((v - lo) / range) * 7.0).round() as usize;
            BLOCKS[level.min(7)]
        })
        .collect()
}

/// Renders an ASCII multi-row plot of a series (`height` text rows), with
/// `*` marking anomalous columns per the given mask.
pub fn ascii_plot(values: &[f64], mask: Option<&[bool]>, width: usize, height: usize) -> String {
    if values.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    let bucket = values.len().div_ceil(width);
    let pooled: Vec<f64> = values
        .chunks(bucket)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    // tolerate a mask of different length: missing positions are normal
    let mut pooled_mask: Vec<bool> = match mask {
        Some(m) => m.chunks(bucket).map(|c| c.iter().any(|&b| b)).collect(),
        None => vec![false; pooled.len()],
    };
    pooled_mask.resize(pooled.len(), false);
    let lo = pooled.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = pooled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    let mut grid = vec![vec![' '; pooled.len()]; height];
    for (c, &v) in pooled.iter().enumerate() {
        let r = (((v - lo) / range) * (height - 1) as f64).round() as usize;
        let row = height - 1 - r.min(height - 1);
        grid[row][c] = if pooled_mask[c] { '*' } else { '·' };
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out
}

/// Formats a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Dataset", "Solved", "%"]);
        t.row(vec!["A1", "44", "65.7"]);
        t.row(vec!["Total", "316", "86.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines equal width
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{s}");
        assert!(s.contains("86.1"));
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn sparkline_shape() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline(&v, 10);
        assert_eq!(s.chars().count(), 10);
        let first = s.chars().next().unwrap();
        let last = s.chars().last().unwrap();
        assert!(first < last, "ramp should rise: {s}");
        assert_eq!(sparkline(&[], 10), "");
    }

    #[test]
    fn sparkline_preserves_narrow_peaks() {
        let mut v = vec![0.0; 1000];
        v[500] = 10.0;
        let s = sparkline(&v, 20);
        assert!(s.contains('█'), "max pooling keeps the spike: {s}");
    }

    #[test]
    fn ascii_plot_marks_anomalies() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut mask = vec![false; 100];
        for m in mask.iter_mut().skip(40).take(10) {
            *m = true;
        }
        let p = ascii_plot(&v, Some(&mask), 50, 8);
        assert!(p.contains('*'));
        assert!(p.contains('·'));
        assert_eq!(p.lines().count(), 8);
    }

    #[test]
    fn ascii_plot_tolerates_mismatched_mask() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let short_mask = vec![true; 90];
        let p = ascii_plot(&v, Some(&short_mask), 50, 4);
        assert_eq!(p.lines().count(), 4);
        let long_mask = vec![true; 150];
        let p = ascii_plot(&v, Some(&long_mask), 50, 4);
        assert_eq!(p.lines().count(), 4);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(86.13), "86.1");
        assert_eq!(fmt(0.8613), "0.861");
    }
}
