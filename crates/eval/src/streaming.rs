//! Detection-delay evaluation for streaming detectors.
//!
//! Batch protocols ask *where* a detector's score peaks; a streaming
//! deployment asks *how long after onset* the first alarm fires. This
//! module scores an alarm sequence against labeled regions:
//!
//! * for each labeled region, the **detection delay** is
//!   `first alarm in [start, end + slop) − start` — 0 means the alarm fired
//!   on the onset sample;
//! * an alarm that falls inside no region's `[start, end + slop)` window is
//!   a **false alarm** — in particular, an alarm *before* a region's onset
//!   does not count as detecting it (the detector cannot take credit for
//!   firing early on data it had not seen);
//! * a region with no alarm inside its window is **missed** (`delay:
//!   None`).
//!
//! The `slop` mirrors the UCR protocol's tolerance: an alarm slightly after
//! the labeled region ends still plausibly refers to the anomaly.

use tsad_core::error::{CoreError, Result};
use tsad_core::{Labels, Region};

/// Delay outcome for one labeled region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDelay {
    /// The labeled region.
    pub region: Region,
    /// Index of the first alarm in `[start, end + slop)`, if any.
    pub first_alarm: Option<usize>,
    /// `first_alarm − start`; `None` when the region was missed.
    pub delay: Option<usize>,
}

/// Detection-delay report for one alarm sequence against one label set.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayReport {
    /// One entry per labeled region, in label order.
    pub regions: Vec<RegionDelay>,
    /// Alarms outside every region's `[start, end + slop)` window.
    pub false_alarms: usize,
    /// Total alarms raised.
    pub total_alarms: usize,
    /// Slop used.
    pub slop: usize,
}

impl DelayReport {
    /// Number of regions whose window contains at least one alarm.
    pub fn detected(&self) -> usize {
        self.regions.iter().filter(|r| r.delay.is_some()).count()
    }

    /// Number of regions with no alarm in their window.
    pub fn missed(&self) -> usize {
        self.regions.len() - self.detected()
    }

    /// Mean delay over detected regions; `None` when nothing was detected.
    pub fn mean_delay(&self) -> Option<f64> {
        let delays: Vec<usize> = self.regions.iter().filter_map(|r| r.delay).collect();
        if delays.is_empty() {
            None
        } else {
            Some(delays.iter().sum::<usize>() as f64 / delays.len() as f64)
        }
    }
}

/// Scores an alarm mask (one flag per series position) against labeled
/// regions. `alarms.len()` must equal `labels.len()`.
pub fn detection_delays(alarms: &[bool], labels: &Labels, slop: usize) -> Result<DelayReport> {
    if alarms.len() != labels.len() {
        return Err(CoreError::LengthMismatch {
            left: alarms.len(),
            right: labels.len(),
        });
    }
    let n = alarms.len();
    let windows: Vec<(usize, usize)> = labels
        .regions()
        .iter()
        .map(|r| (r.start, (r.end + slop).min(n)))
        .collect();

    let mut regions = Vec::with_capacity(windows.len());
    for (r, &(lo, hi)) in labels.regions().iter().zip(&windows) {
        let first_alarm = (lo..hi).find(|&i| alarms[i]);
        regions.push(RegionDelay {
            region: *r,
            first_alarm,
            delay: first_alarm.map(|a| a - r.start),
        });
    }

    let mut false_alarms = 0;
    let mut total_alarms = 0;
    for (i, &a) in alarms.iter().enumerate() {
        if !a {
            continue;
        }
        total_alarms += 1;
        if !windows.iter().any(|&(lo, hi)| (lo..hi).contains(&i)) {
            false_alarms += 1;
        }
    }
    Ok(DelayReport {
        regions,
        false_alarms,
        total_alarms,
        slop,
    })
}

/// Convenience: builds the alarm mask `score > threshold` (positions before
/// `score_offset` never alarm — the detector had not emitted yet) and scores
/// it. `scores` holds one value per position from `score_offset` on.
pub fn delays_from_scores(
    scores: &[f64],
    score_offset: usize,
    threshold: f64,
    labels: &Labels,
    slop: usize,
) -> Result<DelayReport> {
    let n = labels.len();
    if score_offset + scores.len() != n {
        return Err(CoreError::LengthMismatch {
            left: score_offset + scores.len(),
            right: n,
        });
    }
    let mut alarms = vec![false; n];
    for (i, &s) in scores.iter().enumerate() {
        alarms[score_offset + i] = s > threshold;
    }
    detection_delays(&alarms, labels, slop)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, regions: &[(usize, usize)]) -> Labels {
        let regions: Vec<Region> = regions
            .iter()
            .map(|&(start, end)| Region { start, end })
            .collect();
        Labels::new(n, regions).unwrap()
    }

    fn mask(n: usize, on: &[usize]) -> Vec<bool> {
        let mut m = vec![false; n];
        for &i in on {
            m[i] = true;
        }
        m
    }

    #[test]
    fn on_time_alarm_has_delay() {
        let l = labels(100, &[(40, 50)]);
        let r = detection_delays(&mask(100, &[43, 47]), &l, 5).unwrap();
        assert_eq!(r.detected(), 1);
        assert_eq!(r.regions[0].first_alarm, Some(43));
        assert_eq!(r.regions[0].delay, Some(3));
        assert_eq!(r.false_alarms, 0);
        assert_eq!(r.total_alarms, 2);
        assert_eq!(r.mean_delay(), Some(3.0));
    }

    #[test]
    fn alarm_before_onset_is_a_false_alarm_not_a_detection() {
        let l = labels(100, &[(40, 50)]);
        let r = detection_delays(&mask(100, &[30]), &l, 5).unwrap();
        assert_eq!(r.detected(), 0);
        assert_eq!(r.missed(), 1);
        assert_eq!(r.regions[0].delay, None);
        assert_eq!(r.false_alarms, 1);
        assert_eq!(r.mean_delay(), None);
    }

    #[test]
    fn no_alarm_means_missed() {
        let l = labels(60, &[(10, 20)]);
        let r = detection_delays(&mask(60, &[]), &l, 0).unwrap();
        assert_eq!(r.detected(), 0);
        assert_eq!(r.missed(), 1);
        assert_eq!(r.total_alarms, 0);
        assert_eq!(r.false_alarms, 0);
    }

    #[test]
    fn slop_extends_the_window_past_the_region_end() {
        let l = labels(100, &[(40, 50)]);
        // alarm at 52: outside the region, inside start..end+5
        let hit = detection_delays(&mask(100, &[52]), &l, 5).unwrap();
        assert_eq!(hit.regions[0].delay, Some(12));
        assert_eq!(hit.false_alarms, 0);
        // without slop the same alarm is a miss + false alarm
        let miss = detection_delays(&mask(100, &[52]), &l, 0).unwrap();
        assert_eq!(miss.regions[0].delay, None);
        assert_eq!(miss.false_alarms, 1);
    }

    #[test]
    fn multiple_regions_score_independently() {
        let l = labels(200, &[(20, 30), (100, 110), (150, 160)]);
        // first region: alarm at 25 (delay 5); second: missed; third: alarm
        // at 150 (delay 0); plus a stray false alarm at 60
        let r = detection_delays(&mask(200, &[25, 60, 150]), &l, 0).unwrap();
        assert_eq!(r.detected(), 2);
        assert_eq!(r.missed(), 1);
        assert_eq!(r.regions[0].delay, Some(5));
        assert_eq!(r.regions[1].delay, None);
        assert_eq!(r.regions[2].delay, Some(0));
        assert_eq!(r.false_alarms, 1);
        assert_eq!(r.mean_delay(), Some(2.5));
    }

    #[test]
    fn window_is_clipped_at_series_end() {
        let l = labels(50, &[(45, 50)]);
        let r = detection_delays(&mask(50, &[49]), &l, 20).unwrap();
        assert_eq!(r.regions[0].delay, Some(4));
    }

    #[test]
    fn from_scores_respects_offset_and_threshold() {
        let l = labels(10, &[(4, 6)]);
        // offset 2: scores cover positions 2..10
        let scores = [0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let r = delays_from_scores(&scores, 2, 1.0, &l, 0).unwrap();
        assert_eq!(r.regions[0].delay, Some(0));
        assert!(delays_from_scores(&scores, 3, 1.0, &l, 0).is_err());
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let l = labels(10, &[(2, 4)]);
        assert!(detection_delays(&[false; 9], &l, 0).is_err());
    }
}
