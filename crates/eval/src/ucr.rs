//! The UCR anomaly archive scoring rule.
//!
//! §2.3 argues the ideal test series has exactly **one** anomaly, reducing
//! evaluation to a binary question: did the detector's most-anomalous
//! *location* fall (approximately) inside the labeled region? Aggregated
//! over many datasets this yields plain, interpretable accuracy.
//!
//! The tolerance follows the UCR contest rule: a prediction is correct iff
//! it lies within the labeled region dilated by `max(100, region length)`
//! on each side.

use tsad_core::error::{CoreError, Result};
use tsad_core::{Labels, Region};

/// The UCR correctness tolerance for a labeled region.
pub fn ucr_tolerance(region: &Region) -> usize {
    region.len().max(100)
}

/// Is a predicted location correct for a single-anomaly label set?
///
/// Errors unless the labels contain exactly one region (the archive's
/// invariant) or the prediction is out of bounds.
pub fn ucr_correct(predicted: usize, labels: &Labels) -> Result<bool> {
    if labels.region_count() != 1 {
        return Err(CoreError::BadParameter {
            name: "region_count",
            value: labels.region_count() as f64,
            expected: "exactly one labeled region (UCR convention)",
        });
    }
    if predicted >= labels.len() {
        return Err(CoreError::BadRegion {
            start: predicted,
            end: predicted + 1,
            len: labels.len(),
        });
    }
    let region = labels.regions()[0];
    let tol = ucr_tolerance(&region);
    Ok(region.dilate(tol, labels.len()).contains(predicted))
}

/// Aggregate UCR accuracy over many `(prediction, labels)` pairs.
pub fn ucr_accuracy<'a>(results: impl IntoIterator<Item = (usize, &'a Labels)>) -> Result<f64> {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (pred, labels) in results {
        total += 1;
        if ucr_correct(pred, labels)? {
            correct += 1;
        }
    }
    if total == 0 {
        return Err(CoreError::EmptySeries);
    }
    Ok(correct as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_is_at_least_100() {
        assert_eq!(ucr_tolerance(&Region::new(10, 20).unwrap()), 100);
        assert_eq!(ucr_tolerance(&Region::new(0, 500).unwrap()), 500);
    }

    #[test]
    fn correctness_window() {
        let labels = Labels::single(10_000, Region::new(5000, 5050).unwrap()).unwrap();
        assert!(ucr_correct(5025, &labels).unwrap());
        assert!(ucr_correct(4900, &labels).unwrap(), "within 100 before");
        assert!(ucr_correct(5149, &labels).unwrap(), "within 100 after");
        assert!(!ucr_correct(4899, &labels).unwrap());
        assert!(!ucr_correct(5150, &labels).unwrap());
    }

    #[test]
    fn rejects_multi_anomaly_labels_and_oob() {
        let multi = Labels::new(
            1000,
            vec![Region::new(10, 20).unwrap(), Region::new(100, 110).unwrap()],
        )
        .unwrap();
        assert!(ucr_correct(15, &multi).is_err());
        let single = Labels::single(100, Region::new(50, 60).unwrap()).unwrap();
        assert!(ucr_correct(100, &single).is_err());
    }

    #[test]
    fn accuracy_aggregates() {
        let l1 = Labels::single(1000, Region::new(500, 520).unwrap()).unwrap();
        let l2 = Labels::single(1000, Region::new(200, 220).unwrap()).unwrap();
        let acc = ucr_accuracy(vec![(510, &l1), (900, &l2)]).unwrap();
        assert_eq!(acc, 0.5);
        assert!(ucr_accuracy(Vec::<(usize, &Labels)>::new()).is_err());
    }
}
