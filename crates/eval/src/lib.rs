//! # tsad-eval
//!
//! Scoring functions and benchmark *flaw analyzers* for the reproduction of
//! Wu & Keogh (ICDE 2022).
//!
//! Scoring ([`confusion`], [`scoring`], [`nab`], [`range`], [`ucr`]) covers
//! the protocols the TSAD literature actually uses — point-wise F1, the
//! point-adjust protocol, NAB's windowed sigmoid score, range-based
//! precision/recall, and the UCR archive's single-anomaly location
//! accuracy — so the scoring-disagreement experiments (§2.3, §4.4) can be
//! run side by side.
//!
//! The [`flaws`] module automates the paper's four-flaw taxonomy;
//! [`invariance`] makes §4.2's "explain algorithms by their invariances"
//! executable;
//! [`features`] computes the Fig. 6 feature table; [`report`] renders
//! text tables and ASCII plots for the reproduction harness;
//! [`streaming`] scores alarm sequences by detection delay (first alarm −
//! anomaly onset) for the `tsad-stream` replay harness.

pub mod auc;
pub mod confusion;
pub mod features;
pub mod flaws;
pub mod invariance;
pub mod nab;
pub mod range;
pub mod report;
pub mod scoring;
pub mod streaming;
pub mod ucr;
