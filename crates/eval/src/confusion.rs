//! Point-wise confusion counts and the derived precision/recall/F1.

use tsad_core::error::{CoreError, Result};

/// Point-wise confusion counts between a predicted and a truth mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Predicted anomalous, truly anomalous.
    pub tp: usize,
    /// Predicted anomalous, truly normal.
    pub fp: usize,
    /// Predicted normal, truly anomalous.
    pub fn_: usize,
    /// Predicted normal, truly normal.
    pub tn: usize,
}

impl Confusion {
    /// Tallies point-wise counts. Errors on length mismatch.
    pub fn from_masks(predicted: &[bool], truth: &[bool]) -> Result<Self> {
        if predicted.len() != truth.len() {
            return Err(CoreError::LengthMismatch {
                left: predicted.len(),
                right: truth.len(),
            });
        }
        let mut c = Confusion::default();
        for (&p, &t) in predicted.iter().zip(truth) {
            match (p, t) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        Ok(c)
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `tp / (tp + fn)`; 0 when nothing was labeled.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1: harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_metrics() {
        let pred = [true, true, false, false, true];
        let truth = [true, false, true, false, true];
        let c = Confusion::from_masks(&pred, &truth).unwrap();
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let c = Confusion::from_masks(&[false, false], &[false, false]).unwrap();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert!(Confusion::from_masks(&[true], &[true, false]).is_err());
    }

    #[test]
    fn perfect_prediction() {
        let truth = [false, true, true, false];
        let c = Confusion::from_masks(&truth, &truth).unwrap();
        assert_eq!(c.f1(), 1.0);
    }
}
