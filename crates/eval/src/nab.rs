//! The Numenta Anomaly Benchmark (NAB) scoring function.
//!
//! NAB rewards early detection inside an *anomaly window* via a sigmoid
//! weight and penalizes false positives by their sigmoidal distance past
//! the window. The paper (§2.3) notes the resulting score "is exceedingly
//! difficult to interpret, and almost no one uses this" — we implement it
//! so the scoring-function-disagreement experiment can show *why*.
//!
//! This follows the published scheme: for a detection at relative position
//! `p` within a window (−1 = window start, 0 = window end), the weight is
//! `2·sigmoid(−5·p) − 1`; only the earliest detection per window counts;
//! each false positive outside every window contributes a negative weight
//! that decays with distance from the preceding window. The raw score is
//! normalized against the "detect nothing" baseline per the NAB convention.

use tsad_core::error::{CoreError, Result};
use tsad_core::{Labels, Region};

/// The application-profile weights of NAB (standard / reward-low-FP /
/// reward-low-FN).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NabProfile {
    /// Reward for a true positive (per window, scaled by the sigmoid).
    pub a_tp: f64,
    /// Penalty for a false positive.
    pub a_fp: f64,
    /// Penalty for a missed window.
    pub a_fn: f64,
}

impl NabProfile {
    /// The NAB "standard" profile.
    pub fn standard() -> Self {
        Self {
            a_tp: 1.0,
            a_fp: -0.11,
            a_fn: -1.0,
        }
    }
    /// The "reward low FP" profile.
    pub fn reward_low_fp() -> Self {
        Self {
            a_tp: 1.0,
            a_fp: -0.22,
            a_fn: -1.0,
        }
    }
    /// The "reward low FN" profile.
    pub fn reward_low_fn() -> Self {
        Self {
            a_tp: 1.0,
            a_fp: -0.11,
            a_fn: -2.0,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Scaled sigmoid weight for a detection at relative position `p` in
/// `[-1, 0]` of a window (earlier = higher), or `p > 0` for a false
/// positive trailing the window. Matches NAB's `scaledSigmoid`.
fn scaled_sigmoid(p: f64) -> f64 {
    2.0 * sigmoid(-5.0 * p) - 1.0
}

/// NAB windows: each labeled region, dilated so the *total* window budget
/// is 10 % of the series length split across the windows (each window gets
/// `len / 10 / window_count`), as the NAB harness constructs them.
pub fn nab_windows(labels: &Labels) -> Vec<Region> {
    let len = labels.len();
    let count = labels.region_count().max(1);
    let extent = len / 10 / count;
    let mut dilated: Vec<Region> = labels
        .regions()
        .iter()
        .map(|r| {
            let pad = extent.saturating_sub(r.len()) / 2;
            r.dilate(pad, len)
        })
        .collect();
    // Dilation can make neighboring windows overlap; NAB merges them so a
    // detection is attributed to exactly one window.
    dilated.sort();
    let mut merged: Vec<Region> = Vec::with_capacity(dilated.len());
    for w in dilated {
        match merged.last_mut() {
            Some(last) if w.start <= last.end => last.end = last.end.max(w.end),
            _ => merged.push(w),
        }
    }
    merged
}

/// Computes the normalized NAB score of a set of detections (indices where
/// the detector fired) against labels, under a profile.
///
/// Returns a score where 100 = perfect (earliest possible detection in
/// every window, no false positives) and 0 = the "detect nothing"
/// baseline; negative scores are worse than detecting nothing.
pub fn nab_score(detections: &[usize], labels: &Labels, profile: NabProfile) -> Result<f64> {
    let len = labels.len();
    if len == 0 {
        return Err(CoreError::EmptySeries);
    }
    if let Some(&bad) = detections.iter().find(|&&i| i >= len) {
        return Err(CoreError::BadRegion {
            start: bad,
            end: bad + 1,
            len,
        });
    }
    let windows = nab_windows(labels);
    let mut sorted: Vec<usize> = detections.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let mut raw = 0.0;
    let mut detected = vec![false; windows.len()];
    for &d in &sorted {
        // find the window containing d, if any
        if let Some((wi, w)) = windows.iter().enumerate().find(|(_, w)| w.contains(d)) {
            if !detected[wi] {
                detected[wi] = true;
                // relative position: -1 at window start, 0 at window end
                let p = (d as f64 - (w.end - 1) as f64) / w.len().max(1) as f64;
                raw += profile.a_tp * scaled_sigmoid(p.clamp(-1.0, 0.0));
            }
            // additional detections inside a detected window are ignored
        } else {
            // false positive: weight decays with distance past the nearest
            // preceding window end (NAB convention); far-from-any-window
            // FPs get the full -1 weight
            let dist = windows
                .iter()
                .filter(|w| w.end <= d)
                .map(|w| d - w.end)
                .min()
                .map(|g| g as f64 / (len as f64 / 10.0))
                .unwrap_or(f64::INFINITY);
            // scaled_sigmoid of a positive distance is in (-1, 0]: a FP just
            // past a window is penalized lightly, a distant one fully. FPs
            // preceding every window take the full -1 weight.
            let weight = if dist.is_finite() {
                scaled_sigmoid(dist)
            } else {
                -1.0
            };
            raw += profile.a_fp.abs() * weight;
        }
    }
    // missed windows
    for (wi, _) in windows.iter().enumerate() {
        if !detected[wi] {
            raw += profile.a_fn;
        }
    }

    // normalize: 0 = detect-nothing baseline, 100 = perfect
    let baseline = profile.a_fn * windows.len() as f64;
    let perfect = profile.a_tp * scaled_sigmoid(-1.0) * windows.len() as f64;
    if (perfect - baseline).abs() < 1e-12 {
        return Ok(0.0);
    }
    Ok(100.0 * (raw - baseline) / (perfect - baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Labels {
        Labels::new(
            1000,
            vec![
                Region::new(300, 310).unwrap(),
                Region::new(700, 710).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn windows_are_dilated_regions() {
        let w = nab_windows(&labels());
        assert_eq!(w.len(), 2);
        // 10% of 1000 split across 2 windows: ~50 points each
        assert!(w[0].len() >= 45 && w[0].len() <= 60, "{:?}", w[0]);
        assert!(w[0].contains(300) && w[0].contains(309));
    }

    #[test]
    fn perfect_early_detection_scores_near_100() {
        let l = labels();
        let w = nab_windows(&l);
        let detections = vec![w[0].start, w[1].start];
        let s = nab_score(&detections, &l, NabProfile::standard()).unwrap();
        assert!(s > 95.0, "{s}");
    }

    #[test]
    fn detecting_nothing_scores_zero() {
        let s = nab_score(&[], &labels(), NabProfile::standard()).unwrap();
        assert!(s.abs() < 1e-9, "{s}");
    }

    #[test]
    fn late_detection_scores_less_than_early() {
        let l = labels();
        let w = nab_windows(&l);
        let early = nab_score(&[w[0].start, w[1].start], &l, NabProfile::standard()).unwrap();
        let late = nab_score(&[w[0].end - 1, w[1].end - 1], &l, NabProfile::standard()).unwrap();
        assert!(early > late, "{early} vs {late}");
        assert!(late > 0.0, "late detection still beats nothing: {late}");
    }

    #[test]
    fn false_positives_go_negative() {
        let l = labels();
        let s = nab_score(&[50, 100, 150, 500, 550], &l, NabProfile::standard()).unwrap();
        assert!(s < 0.0, "pure false positives are worse than nothing: {s}");
    }

    #[test]
    fn fp_penalty_profile_matters() {
        let l = labels();
        let w = nab_windows(&l);
        let detections = vec![w[0].start, w[1].start, 50, 100];
        let std = nab_score(&detections, &l, NabProfile::standard()).unwrap();
        let low_fp = nab_score(&detections, &l, NabProfile::reward_low_fp()).unwrap();
        assert!(low_fp < std, "{low_fp} vs {std}");
    }

    #[test]
    fn validates_inputs() {
        let l = labels();
        assert!(nab_score(&[2000], &l, NabProfile::standard()).is_err());
        assert!(nab_score(&[], &Labels::empty(0), NabProfile::standard()).is_err());
    }

    #[test]
    fn duplicate_detections_do_not_double_count() {
        let l = labels();
        let w = nab_windows(&l);
        let once = nab_score(&[w[0].start], &l, NabProfile::standard()).unwrap();
        let thrice = nab_score(
            &[w[0].start, w[0].start + 1, w[0].start + 2],
            &l,
            NabProfile::standard(),
        )
        .unwrap();
        assert!((once - thrice).abs() < 1e-9, "{once} vs {thrice}");
    }
}
