//! Range-based precision and recall (Tatbul et al., NeurIPS 2018) — the
//! paper's reference \[19\] for "others have considered problems with current
//! scoring functions".
//!
//! Each *real* anomaly range `R_i` contributes a recall term combining
//! existence, size (overlap fraction under a positional bias), and a
//! cardinality factor penalizing fragmented detections; precision is the
//! symmetric quantity over *predicted* ranges. We implement the standard
//! instantiation with γ(x) = 1/x cardinality and selectable positional
//! bias.

use tsad_core::error::{CoreError, Result};
use tsad_core::{Labels, Region};

/// Positional bias for the size reward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bias {
    /// Every overlapped position counts equally.
    Flat,
    /// Earlier positions of the real range are worth more (early detection).
    Front,
    /// Later positions are worth more.
    Back,
}

fn position_weight(bias: Bias, index_in_range: usize, range_len: usize) -> f64 {
    let i = index_in_range as f64;
    let n = range_len as f64;
    match bias {
        Bias::Flat => 1.0,
        Bias::Front => n - i,
        Bias::Back => i + 1.0,
    }
}

/// ω(range, overlap_set): the positional-bias-weighted overlap fraction.
fn omega(range: &Region, others: &[Region], bias: Bias) -> f64 {
    let len = range.len();
    let mut total = 0.0;
    let mut hit = 0.0;
    for (idx, pos) in (range.start..range.end).enumerate() {
        let w = position_weight(bias, idx, len);
        total += w;
        if others.iter().any(|o| o.contains(pos)) {
            hit += w;
        }
    }
    if total == 0.0 {
        0.0
    } else {
        hit / total
    }
}

/// Cardinality factor γ = 1 / (number of distinct overlapping ranges),
/// 1 when a single range overlaps.
fn cardinality(range: &Region, others: &[Region]) -> f64 {
    let count = others.iter().filter(|o| o.overlaps(range)).count();
    if count <= 1 {
        1.0
    } else {
        1.0 / count as f64
    }
}

/// Range-based recall/precision parameters.
#[derive(Debug, Clone, Copy)]
pub struct RangeParams {
    /// Weight of the existence reward vs the size reward (α in the paper;
    /// recall = α·existence + (1−α)·cardinality·size).
    pub alpha: f64,
    /// Positional bias for recall's size term.
    pub recall_bias: Bias,
}

impl Default for RangeParams {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            recall_bias: Bias::Flat,
        }
    }
}

/// Range-based recall of `predicted` ranges against `real` labels.
pub fn range_recall(predicted: &Labels, real: &Labels, params: RangeParams) -> Result<f64> {
    check(predicted, real)?;
    if real.region_count() == 0 {
        return Ok(0.0);
    }
    let pred = predicted.regions();
    let mut total = 0.0;
    for r in real.regions() {
        let existence = if pred.iter().any(|p| p.overlaps(r)) {
            1.0
        } else {
            0.0
        };
        let size = cardinality(r, pred) * omega(r, pred, params.recall_bias);
        total += params.alpha * existence + (1.0 - params.alpha) * size;
    }
    Ok(total / real.region_count() as f64)
}

/// Range-based precision of `predicted` ranges against `real` labels
/// (α = 0 by definition: precision has no existence reward).
pub fn range_precision(predicted: &Labels, real: &Labels, bias: Bias) -> Result<f64> {
    check(predicted, real)?;
    if predicted.region_count() == 0 {
        return Ok(0.0);
    }
    let real_regions = real.regions();
    let mut total = 0.0;
    for p in predicted.regions() {
        total += cardinality(p, real_regions) * omega(p, real_regions, bias);
    }
    Ok(total / predicted.region_count() as f64)
}

/// Range-based F1 from the above precision and recall.
pub fn range_f1(predicted: &Labels, real: &Labels, params: RangeParams) -> Result<f64> {
    let r = range_recall(predicted, real, params)?;
    let p = range_precision(predicted, real, Bias::Flat)?;
    Ok(if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    })
}

fn check(a: &Labels, b: &Labels) -> Result<()> {
    if a.len() != b.len() {
        return Err(CoreError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(len: usize, regions: &[(usize, usize)]) -> Labels {
        Labels::new(
            len,
            regions
                .iter()
                .map(|&(s, e)| Region::new(s, e).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn perfect_match_scores_one() {
        let real = labels(100, &[(10, 20), (50, 60)]);
        let f1 = range_f1(&real, &real, RangeParams::default()).unwrap();
        assert!((f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_overlap_scores_zero() {
        let real = labels(100, &[(10, 20)]);
        let pred = labels(100, &[(70, 80)]);
        assert_eq!(
            range_recall(&pred, &real, RangeParams::default()).unwrap(),
            0.0
        );
        assert_eq!(range_precision(&pred, &real, Bias::Flat).unwrap(), 0.0);
    }

    #[test]
    fn partial_overlap_is_between() {
        let real = labels(100, &[(10, 30)]);
        let pred = labels(100, &[(20, 30)]); // second half detected
        let r = range_recall(&pred, &real, RangeParams::default()).unwrap();
        // existence 1·α + size 0.5·(1−α) with α=0.5 → 0.75
        assert!((r - 0.75).abs() < 1e-12, "{r}");
        let p = range_precision(&pred, &real, Bias::Flat).unwrap();
        assert_eq!(p, 1.0, "the prediction lies fully inside a real range");
    }

    #[test]
    fn front_bias_rewards_early_overlap() {
        let real = labels(100, &[(10, 30)]);
        let early = labels(100, &[(10, 20)]);
        let late = labels(100, &[(20, 30)]);
        let params_front = RangeParams {
            alpha: 0.0,
            recall_bias: Bias::Front,
        };
        let r_early = range_recall(&early, &real, params_front).unwrap();
        let r_late = range_recall(&late, &real, params_front).unwrap();
        assert!(r_early > r_late, "{r_early} vs {r_late}");
        // back bias flips the preference
        let params_back = RangeParams {
            alpha: 0.0,
            recall_bias: Bias::Back,
        };
        let b_early = range_recall(&early, &real, params_back).unwrap();
        let b_late = range_recall(&late, &real, params_back).unwrap();
        assert!(b_late > b_early);
    }

    #[test]
    fn fragmented_detection_is_penalized() {
        let real = labels(100, &[(10, 40)]);
        let solid = labels(100, &[(10, 28)]);
        // same 18 covered positions, but split into 3 fragments
        let fragmented = labels(100, &[(10, 16), (22, 28), (34, 40)]);
        let params = RangeParams {
            alpha: 0.0,
            recall_bias: Bias::Flat,
        };
        let r_solid = range_recall(&solid, &real, params).unwrap();
        let r_frag = range_recall(&fragmented, &real, params).unwrap();
        assert!(r_solid > r_frag, "{r_solid} vs {r_frag}");
    }

    #[test]
    fn validates_lengths() {
        let a = labels(100, &[(10, 20)]);
        let b = labels(90, &[(10, 20)]);
        assert!(range_recall(&a, &b, RangeParams::default()).is_err());
        // empty predictions / labels
        let empty = Labels::empty(100);
        assert_eq!(
            range_recall(&empty, &a, RangeParams::default()).unwrap(),
            0.0
        );
        assert_eq!(range_precision(&empty, &a, Bias::Flat).unwrap(), 0.0);
        assert_eq!(
            range_recall(&a, &empty, RangeParams::default()).unwrap(),
            0.0
        );
    }
}
