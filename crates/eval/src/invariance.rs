//! §4.2 — "Algorithms should be explained with reference to their
//! invariances."
//!
//! The paper argues that a detector should be communicated through the
//! transformations it is invariant to (amplitude scaling, offset, noise,
//! linear trend, …), the way the time-series classification community
//! does. This module makes that check *executable*: apply a transformation
//! to a labeled dataset and test whether the detector's peak stays on the
//! anomaly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsad_core::error::Result;
use tsad_core::{Dataset, TimeSeries};
use tsad_detectors::{most_anomalous_point, Detector};

use crate::ucr::ucr_correct;

/// A signal transformation whose effect on a detector we want to probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transform {
    /// Multiply every value by a constant.
    AmplitudeScale(f64),
    /// Add a constant to every value.
    Offset(f64),
    /// Add i.i.d. Gaussian noise of the given σ (times the signal's
    /// standard deviation, so it is scale-free).
    RelativeNoise(f64),
    /// Add a linear trend with the given total rise over the series
    /// (times the signal's standard deviation).
    LinearTrend(f64),
    /// Flip the series upside down.
    Invert,
}

impl std::fmt::Display for Transform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transform::AmplitudeScale(c) => write!(f, "amplitude ×{c}"),
            Transform::Offset(c) => write!(f, "offset +{c}"),
            Transform::RelativeNoise(s) => write!(f, "noise σ={s}·std"),
            Transform::LinearTrend(s) => write!(f, "trend {s}·std over series"),
            Transform::Invert => write!(f, "inversion"),
        }
    }
}

impl Transform {
    /// Applies the transform, returning a new dataset with the same labels.
    pub fn apply(&self, dataset: &Dataset, seed: u64) -> Result<Dataset> {
        let (series, labels, train_len) = dataset.clone().into_parts();
        let name = format!("{}+{self}", series.name());
        let mut x = series.into_values();
        let sd = tsad_core::stats::std_dev(&x)?.max(1e-12);
        match *self {
            Transform::AmplitudeScale(c) => {
                for v in &mut x {
                    *v *= c;
                }
            }
            Transform::Offset(c) => {
                for v in &mut x {
                    *v += c;
                }
            }
            Transform::RelativeNoise(s) => {
                let mut rng = StdRng::seed_from_u64(seed);
                for v in &mut x {
                    *v += s * sd * tsad_synth_normal(&mut rng);
                }
            }
            Transform::LinearTrend(s) => {
                let n = x.len().max(2) as f64;
                for (i, v) in x.iter_mut().enumerate() {
                    *v += s * sd * (i as f64 / (n - 1.0));
                }
            }
            Transform::Invert => {
                for v in &mut x {
                    *v = -*v;
                }
            }
        }
        Dataset::new(TimeSeries::new(name, x)?, labels, train_len)
    }
}

// A local Box–Muller so this module does not depend on tsad-synth.
fn tsad_synth_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One row of the invariance report.
#[derive(Debug, Clone)]
pub struct InvarianceOutcome {
    /// The transformation probed.
    pub transform: Transform,
    /// Peak location on the transformed data.
    pub peak: usize,
    /// Whether the peak stayed within the UCR tolerance of the anomaly.
    pub invariant: bool,
}

/// Probes a detector against a set of transforms on a single-anomaly
/// dataset. The detector must locate the anomaly on the *untransformed*
/// data for the probe to be meaningful; an error is returned otherwise.
pub fn probe_invariances(
    detector: &dyn Detector,
    dataset: &Dataset,
    transforms: &[Transform],
    seed: u64,
) -> Result<Vec<InvarianceOutcome>> {
    let base_peak = most_anomalous_point(detector, dataset.series(), dataset.train_len())?;
    if !ucr_correct(base_peak, dataset.labels())? {
        return Err(tsad_core::CoreError::BadParameter {
            name: "baseline",
            value: base_peak as f64,
            expected: "a detector that locates the anomaly on untransformed data",
        });
    }
    let mut out = Vec::with_capacity(transforms.len());
    for (k, t) in transforms.iter().enumerate() {
        let transformed = t.apply(dataset, seed.wrapping_add(k as u64))?;
        let peak = most_anomalous_point(detector, transformed.series(), transformed.train_len())?;
        let invariant = ucr_correct(peak, transformed.labels())?;
        out.push(InvarianceOutcome {
            transform: *t,
            peak,
            invariant,
        });
    }
    Ok(out)
}

/// The standard probe battery used in reports.
pub fn standard_transforms() -> Vec<Transform> {
    vec![
        Transform::AmplitudeScale(5.0),
        Transform::Offset(100.0),
        Transform::RelativeNoise(0.25),
        Transform::LinearTrend(3.0),
        Transform::Invert,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::{Labels, Region};
    use tsad_detectors::baselines::GlobalZScore;
    use tsad_detectors::matrix_profile::DiscordDetector;

    fn periodic_anomaly_dataset() -> Dataset {
        let n = 1200;
        let mut x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / 40.0).sin())
            .collect();
        for (k, v) in x.iter_mut().enumerate().skip(700).take(20) {
            *v = 1.6 + (k as f64 * 0.3).sin() * 0.1;
        }
        let ts = TimeSeries::new("inv", x).unwrap();
        let labels = Labels::single(
            n,
            Region {
                start: 700,
                end: 720,
            },
        )
        .unwrap();
        Dataset::new(ts, labels, 300).unwrap()
    }

    #[test]
    fn transforms_apply_correctly() {
        let d = periodic_anomaly_dataset();
        let scaled = Transform::AmplitudeScale(2.0).apply(&d, 1).unwrap();
        assert!((scaled.values()[0] - 2.0 * d.values()[0]).abs() < 1e-12);
        let offset = Transform::Offset(10.0).apply(&d, 1).unwrap();
        assert!((offset.values()[5] - (d.values()[5] + 10.0)).abs() < 1e-12);
        let inverted = Transform::Invert.apply(&d, 1).unwrap();
        assert_eq!(inverted.values()[7], -d.values()[7]);
        // labels and split survive every transform
        assert_eq!(scaled.labels(), d.labels());
        assert_eq!(scaled.train_len(), d.train_len());
        let trended = Transform::LinearTrend(2.0).apply(&d, 1).unwrap();
        assert!(trended.values()[d.len() - 1] > d.values()[d.len() - 1]);
    }

    #[test]
    fn discord_is_invariant_to_scale_offset_trendless_transforms() {
        let d = periodic_anomaly_dataset();
        let outcomes = probe_invariances(
            &DiscordDetector::new(40),
            &d,
            &[
                Transform::AmplitudeScale(7.0),
                Transform::Offset(50.0),
                Transform::Invert,
                Transform::RelativeNoise(0.1),
            ],
            9,
        )
        .unwrap();
        for o in &outcomes {
            assert!(
                o.invariant,
                "discord should survive {}: peak {}",
                o.transform, o.peak
            );
        }
    }

    #[test]
    fn zscore_is_scale_invariant_but_not_trend_invariant() {
        let d = periodic_anomaly_dataset();
        let outcomes = probe_invariances(
            &GlobalZScore,
            &d,
            &[Transform::AmplitudeScale(3.0), Transform::LinearTrend(8.0)],
            9,
        )
        .unwrap();
        assert!(outcomes[0].invariant, "z-score survives pure scaling");
        assert!(
            !outcomes[1].invariant,
            "a strong trend must drag the global z-score peak to the series end (peak {})",
            outcomes[1].peak
        );
    }

    #[test]
    fn probe_rejects_detectors_that_fail_the_baseline() {
        let d = periodic_anomaly_dataset();
        // naive last-point never finds the mid-series anomaly
        let err = probe_invariances(
            &tsad_detectors::baselines::NaiveLastPoint,
            &d,
            &standard_transforms(),
            9,
        );
        assert!(err.is_err());
    }
}
