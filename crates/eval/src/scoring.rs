//! Scoring protocols for turning predictions into a single number — and
//! for demonstrating how much the choice of protocol matters (§2.3, §4.4).
//!
//! * [`pointwise_f1`] — the raw point-level F1.
//! * [`point_adjust_f1`] — the (notoriously generous) "point-adjust"
//!   protocol popularized by the OMNI paper: if any point of a true
//!   anomalous region is detected, the *whole region* counts as detected.
//! * [`tolerance_f1`] — point-wise with `slop` points of play on region
//!   boundaries, the adjustment §4.4 argues every fair evaluation needs.
//! * [`best_f1_over_thresholds`] — sweep all thresholds of a continuous
//!   score and keep the best F1, the protocol most deep-TSAD papers use.

use tsad_core::error::{CoreError, Result};
use tsad_core::Labels;

use crate::confusion::Confusion;

/// Point-wise F1 between a predicted mask and labels.
pub fn pointwise_f1(predicted: &[bool], labels: &Labels) -> Result<f64> {
    Ok(Confusion::from_masks(predicted, &labels.to_mask())?.f1())
}

/// Point-adjust F1: a predicted positive anywhere inside a true region
/// marks the whole region detected (all its points become TPs); false
/// positives remain point-wise.
pub fn point_adjust_f1(predicted: &[bool], labels: &Labels) -> Result<f64> {
    if predicted.len() != labels.len() {
        return Err(CoreError::LengthMismatch {
            left: predicted.len(),
            right: labels.len(),
        });
    }
    let mut adjusted = predicted.to_vec();
    for r in labels.regions() {
        if predicted[r.start..r.end].iter().any(|&p| p) {
            for a in &mut adjusted[r.start..r.end] {
                *a = true;
            }
        }
    }
    Ok(Confusion::from_masks(&adjusted, &labels.to_mask())?.f1())
}

/// Tolerance F1: like point-wise, but a predicted positive within `slop`
/// of a labeled region counts as a true positive (matched against the
/// dilated labels), and recall is measured per region (a region is
/// recalled if any positive lands in its dilation).
pub fn tolerance_f1(predicted: &[bool], labels: &Labels, slop: usize) -> Result<f64> {
    if predicted.len() != labels.len() {
        return Err(CoreError::LengthMismatch {
            left: predicted.len(),
            right: labels.len(),
        });
    }
    let positives: Vec<usize> = predicted
        .iter()
        .enumerate()
        .filter(|(_, &p)| p)
        .map(|(i, _)| i)
        .collect();
    let tp_points = positives
        .iter()
        .filter(|&&i| labels.contains_with_slop(i, slop))
        .count();
    let fp = positives.len() - tp_points;
    let recalled = labels
        .regions()
        .iter()
        .filter(|r| {
            let d = r.dilate(slop, labels.len());
            positives.iter().any(|&i| d.contains(i))
        })
        .count();
    let precision = if positives.is_empty() {
        0.0
    } else {
        tp_points as f64 / positives.len() as f64
    };
    let recall = if labels.region_count() == 0 {
        0.0
    } else {
        recalled as f64 / labels.region_count() as f64
    };
    let _ = fp;
    Ok(if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    })
}

/// Which F1 protocol to apply when sweeping thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F1Protocol {
    /// Raw point-wise F1.
    Pointwise,
    /// Point-adjust (whole-region credit).
    PointAdjust,
    /// Point-wise with boundary slop.
    Tolerance(usize),
}

/// Sweeps every distinct value of `score` as a threshold and returns the
/// best F1 under the chosen protocol, with the threshold that achieved it.
/// This is the "oracle threshold" evaluation most papers report.
pub fn best_f1_over_thresholds(
    score: &[f64],
    labels: &Labels,
    protocol: F1Protocol,
) -> Result<(f64, f64)> {
    if score.len() != labels.len() {
        return Err(CoreError::LengthMismatch {
            left: score.len(),
            right: labels.len(),
        });
    }
    if score.is_empty() {
        return Err(CoreError::EmptySeries);
    }
    if let Some(i) = score.iter().position(|v| !v.is_finite()) {
        return Err(CoreError::NonFinite { index: i });
    }
    let mut distinct = score.to_vec();
    distinct.sort_by(|a, b| a.total_cmp(b)); // non-finite rejected above
    distinct.dedup();
    // Cap the sweep: for long scores, evaluate ~256 quantile-spaced
    // thresholds (each F1 evaluation is O(n); a full sweep would be
    // O(n²)) — but always include the top 64 distinct values exactly.
    // Anomalies are rare, so the decisive thresholds sit at the very top
    // of the score distribution, where a stride would skip them.
    let step = (distinct.len() / 256).max(1);
    let top_start = distinct.len().saturating_sub(64);
    // NEG_INFINITY makes the all-positive operating point reachable: with a
    // strict `>` comparison, thresholds drawn from the data alone can never
    // predict the minimum-scoring points positive.
    let candidates: Vec<f64> = std::iter::once(f64::NEG_INFINITY)
        .chain(distinct.iter().copied().step_by(step))
        .chain(distinct[top_start..].iter().copied())
        .collect();
    let mut best = (0.0f64, f64::NAN);
    for t in candidates.iter() {
        // predict strictly above the threshold
        let mask: Vec<bool> = score.iter().map(|&v| v > *t).collect();
        let f1 = match protocol {
            F1Protocol::Pointwise => pointwise_f1(&mask, labels)?,
            F1Protocol::PointAdjust => point_adjust_f1(&mask, labels)?,
            F1Protocol::Tolerance(slop) => tolerance_f1(&mask, labels, slop)?,
        };
        if f1 > best.0 || best.1.is_nan() {
            best = (f1, *t);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::Region;

    fn labels_1020(len: usize) -> Labels {
        Labels::single(len, Region::new(10, 20).unwrap()).unwrap()
    }

    #[test]
    fn pointwise_vs_point_adjust_generosity() {
        let labels = labels_1020(100);
        // detect a single point of the 10-point region
        let mut pred = vec![false; 100];
        pred[15] = true;
        let pw = pointwise_f1(&pred, &labels).unwrap();
        let pa = point_adjust_f1(&pred, &labels).unwrap();
        assert!(pw < 0.2, "point-wise is strict: {pw}");
        assert_eq!(pa, 1.0, "point-adjust credits the whole region");
    }

    #[test]
    fn tolerance_f1_allows_boundary_misses() {
        let labels = labels_1020(100);
        let mut pred = vec![false; 100];
        pred[8] = true; // 2 points early
        assert_eq!(tolerance_f1(&pred, &labels, 0).unwrap(), 0.0);
        assert_eq!(tolerance_f1(&pred, &labels, 2).unwrap(), 1.0);
    }

    #[test]
    fn tolerance_f1_penalizes_far_positives() {
        let labels = labels_1020(100);
        let mut pred = vec![false; 100];
        pred[15] = true;
        pred[80] = true; // far false positive
        let f1 = tolerance_f1(&pred, &labels, 2).unwrap();
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12, "{f1}");
    }

    #[test]
    fn empty_predictions_score_zero() {
        let labels = labels_1020(50);
        let pred = vec![false; 50];
        assert_eq!(pointwise_f1(&pred, &labels).unwrap(), 0.0);
        assert_eq!(point_adjust_f1(&pred, &labels).unwrap(), 0.0);
        assert_eq!(tolerance_f1(&pred, &labels, 3).unwrap(), 0.0);
    }

    #[test]
    fn best_threshold_finds_separating_value() {
        let labels = labels_1020(100);
        let score: Vec<f64> = (0..100)
            .map(|i| if (10..20).contains(&i) { 5.0 } else { 1.0 })
            .collect();
        let (f1, t) = best_f1_over_thresholds(&score, &labels, F1Protocol::Pointwise).unwrap();
        assert_eq!(f1, 1.0);
        assert!((1.0..5.0).contains(&t), "threshold {t}");
    }

    #[test]
    fn best_threshold_validates() {
        let labels = labels_1020(100);
        assert!(best_f1_over_thresholds(&[1.0; 5], &labels, F1Protocol::Pointwise).is_err());
        let empty = Labels::empty(0);
        assert!(best_f1_over_thresholds(&[], &empty, F1Protocol::Pointwise).is_err());
    }

    #[test]
    fn constant_score_reaches_the_all_positive_point() {
        // a constant score can still be thresholded below its value
        let labels = Labels::single(100, Region::new(0, 90).unwrap()).unwrap();
        let (f1, t) = best_f1_over_thresholds(&[1.0; 100], &labels, F1Protocol::Pointwise).unwrap();
        assert!((f1 - 2.0 * 90.0 / 190.0).abs() < 1e-12, "{f1}");
        assert!(t.is_infinite() && t < 0.0);
        // non-finite scores are rejected, not mis-sorted
        let mut bad = vec![1.0; 100];
        bad[5] = f64::NAN;
        assert!(best_f1_over_thresholds(&bad, &labels, F1Protocol::Pointwise).is_err());
    }

    #[test]
    fn point_adjust_inflates_even_random_scores() {
        // the §2 critique in action: on long anomalous regions, point-adjust
        // makes nearly any scorer look good
        let labels = Labels::single(200, Region::new(50, 150).unwrap()).unwrap();
        // a "detector" that fires on 2% of points spread evenly
        let pred: Vec<bool> = (0..200).map(|i| i % 50 == 0).collect();
        let pw = pointwise_f1(&pred, &labels).unwrap();
        let pa = point_adjust_f1(&pred, &labels).unwrap();
        assert!(pa > 0.9, "point-adjust: {pa}");
        assert!(pw < 0.1, "point-wise: {pw}");
    }
}
