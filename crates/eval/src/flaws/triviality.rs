//! Flaw 1 — Triviality (§2.2, Definition 1).
//!
//! A dataset is *trivial* if the brute-force search of
//! [`tsad_detectors::oneliner`] finds a one-line solution. The analyzer
//! wraps that search and aggregates Table-1-style statistics per benchmark
//! family.

use std::collections::BTreeMap;

use tsad_core::{Dataset, Result};
use tsad_detectors::oneliner::{search, Equation, SearchConfig, Solution};

/// Triviality verdict for one dataset.
#[derive(Debug, Clone)]
pub struct TrivialityReport {
    /// Dataset name.
    pub name: String,
    /// The solving one-liner, if any.
    pub solution: Option<Solution>,
}

impl TrivialityReport {
    /// `true` if a one-liner solves this dataset.
    pub fn is_trivial(&self) -> bool {
        self.solution.is_some()
    }
}

/// Runs the one-liner search on a dataset.
pub fn analyze(dataset: &Dataset, config: &SearchConfig) -> Result<TrivialityReport> {
    let solution = search(dataset.values(), dataset.labels(), config)?;
    Ok(TrivialityReport {
        name: dataset.name().to_string(),
        solution,
    })
}

/// Aggregated Table-1 row: per-equation solve counts for one family.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FamilySolvability {
    /// Solves per equation.
    pub by_equation: BTreeMap<&'static str, usize>,
    /// Total series solved.
    pub solved: usize,
    /// Total series examined.
    pub total: usize,
}

impl FamilySolvability {
    /// Percentage solved.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.solved as f64 / self.total as f64
        }
    }

    /// Folds one report into the aggregate.
    pub fn add(&mut self, report: &TrivialityReport) {
        self.total += 1;
        if let Some(sol) = &report.solution {
            self.solved += 1;
            let key = match sol.equation {
                Equation::Eq1 => "(1)",
                Equation::Eq2 => "(2)",
                Equation::Eq3 => "(3)",
                Equation::Eq4 => "(4)",
                Equation::Eq5 => "(5)",
                Equation::Eq6 => "(6)",
                Equation::Frozen => "(frozen)",
            };
            *self.by_equation.entry(key).or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::{Labels, Region, TimeSeries};

    fn trivial_dataset() -> Dataset {
        let mut x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.2).sin() * 0.1).collect();
        x[300] += 5.0;
        let ts = TimeSeries::new("trivial", x).unwrap();
        let labels = Labels::single(500, Region::point(300)).unwrap();
        Dataset::unsupervised(ts, labels).unwrap()
    }

    fn hard_dataset() -> Dataset {
        // labeled region on pristine periodic data: nothing to separate
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.2).sin()).collect();
        let ts = TimeSeries::new("hard", x).unwrap();
        let labels = Labels::single(500, Region::new(250, 280).unwrap()).unwrap();
        Dataset::unsupervised(ts, labels).unwrap()
    }

    #[test]
    fn trivial_dataset_is_flagged() {
        let report = analyze(&trivial_dataset(), &SearchConfig::default()).unwrap();
        assert!(report.is_trivial());
        let sol = report.solution.unwrap();
        assert_eq!(sol.equation, Equation::Eq3);
    }

    #[test]
    fn hard_dataset_is_not() {
        let report = analyze(&hard_dataset(), &SearchConfig::default()).unwrap();
        assert!(!report.is_trivial());
    }

    #[test]
    fn aggregation_counts() {
        let cfg = SearchConfig::default();
        let mut agg = FamilySolvability::default();
        agg.add(&analyze(&trivial_dataset(), &cfg).unwrap());
        agg.add(&analyze(&hard_dataset(), &cfg).unwrap());
        assert_eq!(agg.total, 2);
        assert_eq!(agg.solved, 1);
        assert_eq!(agg.percent(), 50.0);
        assert_eq!(agg.by_equation.get("(3)"), Some(&1));
        assert_eq!(FamilySolvability::default().percent(), 0.0);
    }
}
