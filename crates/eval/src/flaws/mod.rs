//! The paper's four-flaw taxonomy (§2) as automated analyzers.
//!
//! | § | flaw | analyzer |
//! |---|------|----------|
//! | 2.2 | triviality | [`triviality`] — brute-force one-liner search |
//! | 2.3 | unrealistic density | [`density`] — label-structure statistics |
//! | 2.4 | mislabeled ground truth | [`mislabel`] — NN twin & unremarkable-label detectors |
//! | 2.5 | run-to-failure bias | [`position`] — KS test of last-anomaly positions |
//!
//! [`audit`] runs all four in one call and renders the §2.6 verdict.

pub mod audit;
pub mod density;
pub mod mislabel;
pub mod position;
pub mod triviality;
