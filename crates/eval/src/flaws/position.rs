//! Flaw 4 — Run-to-failure bias (§2.5, Fig. 10).
//!
//! Collects the relative position of the last anomaly in each dataset and
//! tests the sample against the uniform distribution with the
//! Kolmogorov–Smirnov statistic. Also reports how well the paper's "naive
//! algorithm that simply labels the last point" would do.

use tsad_core::stats::{ks_p_value, ks_statistic_uniform};
use tsad_core::{Dataset, Result};

/// Positional-bias statistics over a collection of datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct PositionBiasReport {
    /// Relative position (0..=1) of the last anomaly of each dataset.
    pub positions: Vec<f64>,
    /// Mean relative position (0.5 expected under uniform placement).
    pub mean_position: f64,
    /// KS statistic against Uniform(0, 1).
    pub ks_statistic: f64,
    /// Asymptotic KS p-value.
    pub p_value: f64,
    /// Fraction of datasets whose *last* anomaly sits in the final
    /// `tail_fraction` of the series — the success rate of a naive
    /// detector that always points near the end.
    pub naive_last_hit_rate: f64,
    /// The tail fraction used for the naive rate.
    pub tail_fraction: f64,
}

impl PositionBiasReport {
    /// Is the placement significantly end-biased? (one-sided check: the
    /// mean is above 0.5 *and* uniformity is rejected at `alpha`).
    pub fn is_biased(&self, alpha: f64) -> bool {
        self.mean_position > 0.5 && self.p_value < alpha
    }
}

/// Analyzes last-anomaly positions across datasets. `tail_fraction` is the
/// share of the series the naive end-detector covers (e.g. 0.1).
///
/// Positions are measured relative to the *test region*: for a dataset
/// with a train prefix, an unbiased generator places anomalies uniformly
/// over `train_len..len`, so that is the interval the uniform null refers
/// to. (For unsupervised datasets this is the whole series.)
pub fn analyze<'a>(
    datasets: impl IntoIterator<Item = &'a Dataset>,
    tail_fraction: f64,
) -> Result<PositionBiasReport> {
    let positions: Vec<f64> = datasets
        .into_iter()
        .filter_map(|d| {
            let last = d.labels().regions().last()?.end.saturating_sub(1);
            let train = d.train_len();
            let test_span = d.len().saturating_sub(train + 1);
            if test_span == 0 || last < train {
                return None;
            }
            Some((last - train) as f64 / test_span as f64)
        })
        .collect();
    let ks = ks_statistic_uniform(&positions)?;
    let mean = tsad_core::stats::mean(&positions)?;
    let hits = positions
        .iter()
        .filter(|&&p| p >= 1.0 - tail_fraction)
        .count();
    Ok(PositionBiasReport {
        mean_position: mean,
        ks_statistic: ks,
        p_value: ks_p_value(ks, positions.len()),
        naive_last_hit_rate: hits as f64 / positions.len() as f64,
        tail_fraction,
        positions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::{Labels, Region, TimeSeries};

    fn dataset_with_anomaly_at(pos: usize, len: usize) -> Dataset {
        let ts = TimeSeries::new("d", vec![0.0; len]).unwrap();
        let labels = Labels::single(len, Region::point(pos)).unwrap();
        Dataset::unsupervised(ts, labels).unwrap()
    }

    #[test]
    fn end_biased_collection_is_flagged() {
        let datasets: Vec<Dataset> = (0..60)
            .map(|i| dataset_with_anomaly_at(900 + i, 1000))
            .collect();
        let r = analyze(datasets.iter(), 0.1).unwrap();
        assert!(r.mean_position > 0.89);
        assert!(r.is_biased(0.01), "ks={} p={}", r.ks_statistic, r.p_value);
        assert!(r.naive_last_hit_rate > 0.9);
    }

    #[test]
    fn uniform_collection_is_not_flagged() {
        let datasets: Vec<Dataset> = (0..60)
            .map(|i| dataset_with_anomaly_at(8 + i * 16, 1000))
            .collect();
        let r = analyze(datasets.iter(), 0.1).unwrap();
        assert!(!r.is_biased(0.01), "ks={} p={}", r.ks_statistic, r.p_value);
        assert!(r.naive_last_hit_rate < 0.25);
    }

    #[test]
    fn empty_collection_errors() {
        assert!(analyze(std::iter::empty(), 0.1).is_err());
    }
}
