//! Flaw 3 — Mislabeled ground truth (§2.4).
//!
//! Two automated detectors for the mislabeling patterns the paper
//! documents:
//!
//! * **Twin detector** ([`find_unlabeled_twins`]): for each labeled
//!   anomalous subsequence, scan the *unlabeled* data for subsequences that
//!   are (near-)identical. Fig. 5's unlabeled twin dropout `D` and Fig. 9's
//!   two unlabeled frozen regions are exactly such twins — if a region is
//!   anomalous, an indistinguishable region elsewhere should be too, so
//!   each twin is a suspected false negative.
//! * **Unremarkable-label detector** ([`find_unremarkable_labels`]): a
//!   labeled region whose subsequence is *closer* to the unlabeled data
//!   than typical unlabeled subsequences are to each other (Fig. 6's
//!   region `F`) is a suspected false positive.

use tsad_core::dist::mass;
use tsad_core::error::Result;
use tsad_core::{Dataset, Region};

/// A suspected false negative: an unlabeled region nearly identical to a
/// labeled anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct SuspectedTwin {
    /// The labeled anomaly it matches.
    pub labeled: Region,
    /// Start of the matching unlabeled window.
    pub twin_start: usize,
    /// Z-normalized distance between the two (≈ 0 for true twins).
    pub distance: f64,
}

/// Finds unlabeled subsequences that match labeled anomalies within
/// `threshold` z-normalized distance. `threshold` is expressed as a
/// fraction of `sqrt(2m)` (the maximum possible distance); 0.1–0.25 works
/// well in practice.
pub fn find_unlabeled_twins(dataset: &Dataset, threshold: f64) -> Result<Vec<SuspectedTwin>> {
    let x = dataset.values();
    let labels = dataset.labels();
    let mut out = Vec::new();
    for r in labels.regions() {
        // Use the labeled span itself when it is long enough to carry
        // shape; extend *short* regions (point anomalies) to a centered
        // 16-point context window — a z-normalized 3-point window matches
        // half the series by shape alone.
        let (m, start) = if r.len() >= 8 {
            (
                r.len().min(x.len() / 2),
                r.start.min(x.len() - r.len().min(x.len() / 2)),
            )
        } else {
            let m = 16.min(x.len() / 2);
            (m, r.center().saturating_sub(m / 2).min(x.len() - m))
        };
        let query = &x[start..start + m];
        let dists = mass(query, x)?;
        let abs_threshold = threshold * (2.0 * m as f64).sqrt();
        for (j, &d) in dists.iter().enumerate() {
            // skip windows overlapping ANY labeled region (with slop m)
            let overlaps_label = labels.regions().iter().any(|lr| {
                lr.dilate(m, labels.len()).overlaps(&Region {
                    start: j,
                    end: j + m,
                })
            });
            if overlaps_label {
                continue;
            }
            if d <= abs_threshold {
                out.push(SuspectedTwin {
                    labeled: *r,
                    twin_start: j,
                    distance: d,
                });
            }
        }
    }
    // collapse runs of adjacent matches to their best representative
    out.sort_by_key(|a| (a.labeled, a.twin_start));
    let mut collapsed: Vec<SuspectedTwin> = Vec::new();
    for t in out {
        match collapsed.last_mut() {
            Some(last)
                if last.labeled == t.labeled
                    && t.twin_start - last.twin_start <= t.labeled.len().max(3) =>
            {
                if t.distance < last.distance {
                    *last = t;
                }
            }
            _ => collapsed.push(t),
        }
    }
    Ok(collapsed)
}

/// A suspected false positive: a labeled region statistically
/// indistinguishable from the unlabeled data.
#[derive(Debug, Clone, PartialEq)]
pub struct UnremarkableLabel {
    /// The suspicious labeled region.
    pub labeled: Region,
    /// Its nearest-neighbor distance to unlabeled data.
    pub nn_distance: f64,
    /// The median nearest-neighbor distance among unlabeled subsequences
    /// of the same length (the "background" discordance).
    pub background_nn: f64,
}

impl UnremarkableLabel {
    /// A labeled anomaly should stand out: its NN distance should exceed
    /// the background. Ratio ≤ 1 means it is no more unusual than normal
    /// data — a suspected mislabel.
    pub fn discord_ratio(&self) -> f64 {
        if self.background_nn < 1e-12 {
            // perfectly self-similar normal data: a label whose own NN
            // distance is also ~0 is maximally unremarkable (ratio 1);
            // any real novelty is infinitely remarkable
            return if self.nn_distance < 1e-12 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.nn_distance / self.background_nn
    }
}

/// Checks each labeled region's nearest-neighbor distance against the
/// background NN distance of unlabeled subsequences. Regions with
/// `discord_ratio <= ratio_threshold` are returned as suspected false
/// positives (Fig. 6's `F` has ratio ≈ 1).
pub fn find_unremarkable_labels(
    dataset: &Dataset,
    ratio_threshold: f64,
) -> Result<Vec<UnremarkableLabel>> {
    let x = dataset.values();
    let labels = dataset.labels();
    let mut out = Vec::new();
    for r in labels.regions() {
        // Short regions get a *centered* context window: a window that
        // starts at a point anomaly reads "one outlier + flat", which
        // z-normalizes to the same shape at any outlier depth and matches
        // every step edge in the data. Context on both sides keeps the
        // shape informative.
        let (m, start) = if r.len() >= 8 {
            let m = r.len().min(x.len() / 4);
            (m, r.start.min(x.len() - m))
        } else {
            let m = 24.min(x.len() / 4);
            (m, r.center().saturating_sub(m / 2).min(x.len() - m))
        };
        let query = &x[start..start + m];
        let dists = mass(query, x)?;
        let excl = m.max(r.len());
        let nn = dists
            .iter()
            .enumerate()
            .filter(|(j, _)| {
                Region {
                    start: *j,
                    end: *j + m,
                }
                .distance_to(r.center())
                .max(r.distance_to(*j))
                    > excl
            })
            .map(|(_, &d)| d)
            .fold(f64::INFINITY, f64::min);

        // background: NN distances of a sample of unlabeled windows
        let mut background = Vec::new();
        let hop = (x.len() / 64).max(1);
        let mut j = 0;
        while j + m <= x.len() {
            let w_region = Region {
                start: j,
                end: j + m,
            };
            let overlaps_label = labels
                .regions()
                .iter()
                .any(|lr| lr.dilate(m, labels.len()).overlaps(&w_region));
            if !overlaps_label {
                let d = mass(&x[j..j + m], x)?;
                let w_nn = d
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| k.abs_diff(j) > m)
                    .map(|(_, &v)| v)
                    .fold(f64::INFINITY, f64::min);
                if w_nn.is_finite() {
                    background.push(w_nn);
                }
            }
            j += hop;
        }
        if background.is_empty() || !nn.is_finite() {
            continue;
        }
        let background_nn = tsad_core::stats::median(&background)?;
        let candidate = UnremarkableLabel {
            labeled: *r,
            nn_distance: nn,
            background_nn,
        };
        if candidate.discord_ratio() <= ratio_threshold {
            out.push(candidate);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::{Labels, TimeSeries};

    /// A periodic signal with two identical dropouts, only one labeled
    /// (the Fig. 5 construction).
    fn twin_dataset() -> Dataset {
        let n = 1200;
        let mut x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / 40.0).sin())
            .collect();
        x[300] = -6.0;
        x[900] = -6.0;
        let labels = Labels::single(n, Region::point(900)).unwrap();
        Dataset::unsupervised(TimeSeries::new("twin", x).unwrap(), labels).unwrap()
    }

    #[test]
    fn finds_the_unlabeled_twin() {
        let twins = find_unlabeled_twins(&twin_dataset(), 0.2).unwrap();
        assert!(!twins.is_empty(), "the unlabeled dropout must be found");
        // some twin window must cover the unlabeled dropout at index 300
        assert!(
            twins
                .iter()
                .any(|t| (t.twin_start..t.twin_start + 16).contains(&300)),
            "{twins:?}"
        );
    }

    #[test]
    fn no_twins_for_unique_anomaly() {
        let n = 1200;
        let mut x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / 40.0).sin())
            .collect();
        x[900] = -6.0; // only one dropout
        let labels = Labels::single(n, Region::point(900)).unwrap();
        let d = Dataset::unsupervised(TimeSeries::new("unique", x).unwrap(), labels).unwrap();
        let twins = find_unlabeled_twins(&d, 0.2).unwrap();
        assert!(twins.is_empty(), "{twins:?}");
    }

    #[test]
    fn unremarkable_label_is_flagged() {
        // labeled region on pristine periodic data: its NN distance is as
        // small as anyone's (a clear mislabel)
        let n = 1600;
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / 40.0).sin())
            .collect();
        let labels = Labels::single(n, Region::new(800, 840).unwrap()).unwrap();
        let d = Dataset::unsupervised(TimeSeries::new("bland", x).unwrap(), labels).unwrap();
        let suspects = find_unremarkable_labels(&d, 1.5).unwrap();
        assert_eq!(suspects.len(), 1);
        assert!(suspects[0].discord_ratio() <= 1.5);
    }

    #[test]
    fn genuine_anomaly_is_not_flagged() {
        let n = 1600;
        let mut x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / 40.0).sin())
            .collect();
        // a genuinely unique shape: one-off frequency burst
        for (k, v) in x.iter_mut().enumerate().skip(800).take(40) {
            *v = (k as f64 * 0.9).sin() * 1.5;
        }
        let labels = Labels::single(n, Region::new(800, 840).unwrap()).unwrap();
        let d = Dataset::unsupervised(TimeSeries::new("genuine", x).unwrap(), labels).unwrap();
        let suspects = find_unremarkable_labels(&d, 1.5).unwrap();
        assert!(suspects.is_empty(), "{suspects:?}");
    }
}
