//! One-call benchmark audit: run all four flaw analyzers over a dataset
//! collection and produce the verdict the paper argues every benchmark
//! should have received before anyone trusted it.

use tsad_core::{Dataset, Result};
use tsad_detectors::oneliner::SearchConfig;

use super::density::{self, DensityCriteria};
use super::mislabel;
use super::position::{self, PositionBiasReport};
use super::triviality;

/// Audit configuration (thresholds for each analyzer).
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// One-liner search configuration.
    pub search: SearchConfig,
    /// Density criteria.
    pub density: DensityCriteria,
    /// Twin-detector distance threshold (fraction of `sqrt(2m)`).
    pub twin_threshold: f64,
    /// Unremarkable-label discord-ratio threshold.
    pub unremarkable_ratio: f64,
    /// Tail fraction for the naive end detector.
    pub tail_fraction: f64,
    /// Significance level for the positional KS test.
    pub alpha: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            search: SearchConfig::default(),
            density: DensityCriteria::default(),
            twin_threshold: 0.12,
            unremarkable_ratio: 1.0,
            tail_fraction: 0.1,
            alpha: 0.01,
        }
    }
}

/// Per-dataset audit outcome.
#[derive(Debug, Clone)]
pub struct DatasetAudit {
    /// Dataset name.
    pub name: String,
    /// Solvable with a one-liner?
    pub trivial: bool,
    /// Violates the density criteria?
    pub dense: bool,
    /// Number of suspected unlabeled twins (false negatives).
    pub suspected_false_negatives: usize,
    /// Number of suspected unremarkable labels (false positives).
    pub suspected_false_positives: usize,
}

impl DatasetAudit {
    /// Does this dataset exhibit any flaw?
    pub fn flawed(&self) -> bool {
        self.trivial
            || self.dense
            || self.suspected_false_negatives > 0
            || self.suspected_false_positives > 0
    }
}

/// The collection-level audit report.
#[derive(Debug, Clone)]
pub struct BenchmarkAudit {
    /// Per-dataset verdicts.
    pub datasets: Vec<DatasetAudit>,
    /// Collection-level positional bias.
    pub position_bias: PositionBiasReport,
}

impl BenchmarkAudit {
    /// Fraction of datasets with at least one flaw (position bias counted
    /// separately, as it is a collection-level property).
    pub fn flawed_fraction(&self) -> f64 {
        if self.datasets.is_empty() {
            return 0.0;
        }
        self.datasets.iter().filter(|d| d.flawed()).count() as f64 / self.datasets.len() as f64
    }

    /// Fraction solvable with a one-liner.
    pub fn trivial_fraction(&self) -> f64 {
        if self.datasets.is_empty() {
            return 0.0;
        }
        self.datasets.iter().filter(|d| d.trivial).count() as f64 / self.datasets.len() as f64
    }

    /// The §2.6 verdict: is this benchmark suitable for comparing
    /// algorithms?
    ///
    /// The thresholds mirror the paper's qualitative bar: a *minority* of
    /// easy problems is legitimate — the UCR archive deliberately keeps
    /// some one-liner-solvable dropouts (§3) — but a benchmark where
    /// triviality is the norm (Yahoo's 86 %), or where flaws touch most
    /// exemplars, or whose anomaly placement pays the naive end detector,
    /// cannot rank algorithms.
    pub fn suitable_for_comparison(&self, alpha: f64) -> bool {
        self.trivial_fraction() < 0.4
            && self.flawed_fraction() < 0.5
            && !self.position_bias.is_biased(alpha)
    }
}

/// Runs the full audit over a dataset collection.
pub fn audit<'a>(
    datasets: impl IntoIterator<Item = &'a Dataset>,
    config: &AuditConfig,
) -> Result<BenchmarkAudit> {
    let datasets: Vec<&Dataset> = datasets.into_iter().collect();
    let mut per_dataset = Vec::with_capacity(datasets.len());
    for d in &datasets {
        let trivial = triviality::analyze(d, &config.search)?.is_trivial();
        let dense = density::analyze(d).is_flawed(&config.density);
        let twins = mislabel::find_unlabeled_twins(d, config.twin_threshold)?;
        let unremarkable = mislabel::find_unremarkable_labels(d, config.unremarkable_ratio)?;
        per_dataset.push(DatasetAudit {
            name: d.name().to_string(),
            trivial,
            dense,
            suspected_false_negatives: twins.len(),
            suspected_false_positives: unremarkable.len(),
        });
    }
    let position_bias = position::analyze(datasets, config.tail_fraction)?;
    Ok(BenchmarkAudit {
        datasets: per_dataset,
        position_bias,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::{Labels, Region, TimeSeries};

    fn trivial_end_biased(seed: usize) -> Dataset {
        let n = 600;
        let at = 520 + (seed * 13) % 70;
        let mut x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin() * 0.2).collect();
        x[at] += 6.0;
        let ts = TimeSeries::new(format!("flawed-{seed}"), x).unwrap();
        Dataset::unsupervised(ts, Labels::single(n, Region::point(at)).unwrap()).unwrap()
    }

    fn healthy(seed: usize) -> Dataset {
        // subtle contextual anomaly with confounders: resists one-liners,
        // placed mid-series
        let n = 900;
        let at = 250 + (seed * 97) % 400;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let ts = TimeSeries::new(format!("healthy-{seed}"), x).unwrap();
        Dataset::unsupervised(
            ts,
            Labels::single(
                n,
                Region {
                    start: at,
                    end: at + 30,
                },
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn flawed_collection_fails_the_audit() {
        let datasets: Vec<Dataset> = (0..12).map(trivial_end_biased).collect();
        let report = audit(datasets.iter(), &AuditConfig::default()).unwrap();
        assert!(
            report.trivial_fraction() > 0.8,
            "{}",
            report.trivial_fraction()
        );
        assert!(report.position_bias.is_biased(0.05));
        assert!(!report.suitable_for_comparison(0.05));
    }

    #[test]
    fn audit_reports_per_dataset_detail() {
        let datasets = [trivial_end_biased(0), healthy(1)];
        let report = audit(datasets.iter(), &AuditConfig::default()).unwrap();
        assert_eq!(report.datasets.len(), 2);
        assert!(report.datasets[0].trivial);
        assert!(!report.datasets[1].trivial);
        assert!(!report.datasets[1].dense);
        assert!(report.datasets[0].flawed());
    }

    #[test]
    fn empty_audit_errors() {
        assert!(audit(std::iter::empty(), &AuditConfig::default()).is_err());
    }
}
