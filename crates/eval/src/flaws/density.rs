//! Flaw 2 — Unrealistic anomaly density (§2.3).
//!
//! Three flavors, measured directly from the label structure:
//! contiguous anomalous regions covering a large share of the (test) data,
//! many separate anomalies per series, and anomalies separated by only a
//! handful of normal points.

use tsad_core::Dataset;

/// Density statistics of one dataset's labels.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityReport {
    /// Dataset name.
    pub name: String,
    /// Fraction of the *test region* marked anomalous.
    pub test_density: f64,
    /// Number of separate labeled regions.
    pub region_count: usize,
    /// Longest single region as a fraction of the test region.
    pub longest_region_fraction: f64,
    /// Smallest gap (normal points) between consecutive regions.
    pub min_gap: Option<usize>,
}

/// Thresholds deciding when a dataset exhibits the density flaw.
#[derive(Debug, Clone, Copy)]
pub struct DensityCriteria {
    /// Flag when test density exceeds this (the paper cites exemplars with
    /// > 1/2, and "another dozen or so" with > 1/3).
    pub max_density: f64,
    /// Flag when there are more separate anomalies than this (machine-2-5
    /// has 21).
    pub max_regions: usize,
    /// Flag when two anomalies are separated by fewer normal points than
    /// this (Fig. 3 shows a single-point gap).
    pub min_gap: usize,
}

impl Default for DensityCriteria {
    fn default() -> Self {
        Self {
            max_density: 1.0 / 3.0,
            max_regions: 10,
            min_gap: 5,
        }
    }
}

impl DensityReport {
    /// Does this dataset exhibit any flavor of the density flaw?
    pub fn is_flawed(&self, criteria: &DensityCriteria) -> bool {
        self.test_density > criteria.max_density
            || self.region_count > criteria.max_regions
            || self.min_gap.is_some_and(|g| g < criteria.min_gap)
    }
}

/// Measures density statistics over the dataset's test region.
pub fn analyze(dataset: &Dataset) -> DensityReport {
    let labels = dataset.labels();
    let test_len = (dataset.len() - dataset.train_len()).max(1);
    let anomalous = labels.anomalous_points();
    DensityReport {
        name: dataset.name().to_string(),
        test_density: anomalous as f64 / test_len as f64,
        region_count: labels.region_count(),
        longest_region_fraction: labels.longest_region() as f64 / test_len as f64,
        min_gap: labels.min_gap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::{Labels, Region, TimeSeries};

    fn dataset(len: usize, train: usize, regions: &[(usize, usize)]) -> Dataset {
        let ts = TimeSeries::new("d", vec![0.0; len]).unwrap();
        let labels = Labels::new(
            len,
            regions
                .iter()
                .map(|&(s, e)| Region::new(s, e).unwrap())
                .collect(),
        )
        .unwrap();
        Dataset::new(ts, labels, train).unwrap()
    }

    #[test]
    fn measures_test_density() {
        // 1000 test points, 600 anomalous => 60% density (the NASA D-2 shape)
        let d = dataset(2000, 1000, &[(1400, 2000)]);
        let r = analyze(&d);
        assert!((r.test_density - 0.6).abs() < 1e-12);
        assert!((r.longest_region_fraction - 0.6).abs() < 1e-12);
        assert!(r.is_flawed(&DensityCriteria::default()));
    }

    #[test]
    fn counts_regions() {
        let regions: Vec<(usize, usize)> =
            (0..21).map(|i| (1000 + i * 40, 1002 + i * 40)).collect();
        let d = dataset(2000, 500, &regions);
        let r = analyze(&d);
        assert_eq!(r.region_count, 21);
        assert!(r.is_flawed(&DensityCriteria::default()));
    }

    #[test]
    fn detects_sandwich_gaps() {
        // two anomalies with one normal point between (Fig. 3 flavor)
        let d = dataset(1000, 0, &[(500, 501), (502, 503)]);
        let r = analyze(&d);
        assert_eq!(r.min_gap, Some(1));
        assert!(r.is_flawed(&DensityCriteria::default()));
    }

    #[test]
    fn healthy_dataset_passes() {
        let d = dataset(5000, 1000, &[(3000, 3020)]);
        let r = analyze(&d);
        assert!(!r.is_flawed(&DensityCriteria::default()));
        assert_eq!(r.min_gap, None);
        assert!(r.test_density < 0.01);
    }
}
