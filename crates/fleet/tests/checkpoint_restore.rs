//! Fleet suspend/resume: a checkpointed fleet must resume **bitwise
//! identically** to the uninterrupted run, at every shard and thread
//! count; corrupted or truncated checkpoints must be rejected with the
//! fleet left reset and usable; restoring into a smaller budget must
//! evict deterministically in checkpoint recency order.

use proptest::prelude::*;
use tsad_fleet::{BatchOutput, Fleet, FleetCheckpoint, FleetConfig, SeriesId};
use tsad_parallel::with_threads;
use tsad_stream::{FnFactory, NanPolicy, Sanitized, StreamingGlobalZScore};

type ZFactory = FnFactory<fn(u64) -> Sanitized<StreamingGlobalZScore>>;

fn spawn_one(_id: u64) -> Sanitized<StreamingGlobalZScore> {
    Sanitized::new(StreamingGlobalZScore::new(4).unwrap(), NanPolicy::Skip)
}

fn factory() -> ZFactory {
    FnFactory(spawn_one)
}

fn fleet(shards: usize, budget: usize) -> Fleet<ZFactory> {
    Fleet::new(
        factory(),
        FleetConfig {
            shards,
            shard_budget_bytes: budget,
            ..FleetConfig::default()
        },
    )
}

fn value(id: u64, step: u64) -> f64 {
    let mut x = id
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(step.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    x ^= x >> 33;
    (x % 1000) as f64 / 10.0
}

fn workload(series: u64, batches: u64) -> Vec<Vec<(SeriesId, f64)>> {
    (0..batches)
        .map(|t| {
            (0..series)
                .filter(|id| (id + 2 * t) % 4 != 0)
                .map(|id| (SeriesId(id), value(id, t)))
                .collect()
        })
        .collect()
}

fn drive(fleet: &mut Fleet<ZFactory>, batches: &[Vec<(SeriesId, f64)>]) -> Vec<(usize, u64, u64)> {
    let mut out = BatchOutput::new();
    let mut log = Vec::new();
    for batch in batches {
        fleet.push_batch(batch, &mut out);
        for s in &out.scores {
            log.push((s.batch_index, s.id.0, s.score.to_bits()));
        }
    }
    log
}

#[test]
fn suspend_resume_is_bitwise_across_shards_and_threads() {
    let batches = workload(60, 16);
    let (first, second) = batches.split_at(8);
    for &shards in &[1usize, 4, 16] {
        // uninterrupted reference
        let mut reference = fleet(shards, usize::MAX);
        drive(&mut reference, first);
        let tail_ref = drive(&mut reference, second);
        assert!(!tail_ref.is_empty());

        for &threads in &[1usize, 2, 8] {
            let tail = with_threads(threads, || {
                let mut a = fleet(shards, usize::MAX);
                drive(&mut a, first);
                let ckpt = a.checkpoint();
                // round-trip through the flat wire form too
                let ckpt = FleetCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
                let mut b = fleet(shards, usize::MAX);
                let report = b.restore(&ckpt).unwrap();
                assert_eq!(report.series, a.series_active());
                assert!(report.evicted.is_empty());
                assert_eq!(b.batches(), a.batches());
                drive(&mut b, second)
            });
            assert_eq!(
                tail, tail_ref,
                "resume diverged at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn checkpoint_restore_checkpoint_is_bitwise_stable() {
    // recency (LRU) order must survive the round trip: checkpointing a
    // restored fleet reproduces the original image exactly
    let batches = workload(40, 10);
    let mut a = fleet(8, usize::MAX);
    drive(&mut a, &batches);
    let ckpt = a.checkpoint();
    let mut b = fleet(8, usize::MAX);
    b.restore(&ckpt).unwrap();
    let again = b.checkpoint();
    assert_eq!(ckpt.to_bytes(), again.to_bytes());
}

#[test]
fn restore_into_smaller_budget_evicts_deterministically() {
    let batches = workload(50, 12);
    let mut big = fleet(4, usize::MAX);
    drive(&mut big, &batches);
    let ckpt = big.checkpoint();
    let per_entry = tsad_fleet::entry_bytes(&spawn_one(0));

    // restore twice into the same smaller budget: identical eviction lists
    let budget = per_entry * 5;
    let mut small1 = fleet(4, budget);
    let report1 = small1.restore(&ckpt).unwrap();
    let mut small2 = fleet(4, budget);
    let report2 = small2.restore(&ckpt).unwrap();
    assert!(!report1.evicted.is_empty(), "budget never forced eviction");
    assert_eq!(report1, report2);
    assert_eq!(report1.series, small1.series_active());
    assert!(small1.bytes_in_use() <= 4 * budget);

    // evicted series are the *least recently fed* — every survivor's last
    // batch is no earlier than every evicted series' last batch, per shard
    let mut last_batch = std::collections::HashMap::new();
    for (t, batch) in batches.iter().enumerate() {
        for &(id, _) in batch {
            last_batch.insert(id.0, t);
        }
    }
    for &evicted in &report1.evicted {
        let shard = small1.shard_of(evicted);
        let e_last = last_batch[&evicted.0];
        for (&id, &s_last) in &last_batch {
            if small1.contains(SeriesId(id)) && small1.shard_of(SeriesId(id)) == shard {
                assert!(
                    s_last >= e_last,
                    "survivor {id} (last batch {s_last}) is older than evicted \
                     {} (last batch {e_last})",
                    evicted.0
                );
            }
        }
    }

    // the restored-and-evicted fleet keeps working
    let mut out = BatchOutput::new();
    small1.push_batch(&[(SeriesId(1), 1.0)], &mut out);
}

#[test]
fn restore_rejects_mismatched_geometry_and_leaves_fleet_usable() {
    let batches = workload(30, 6);
    let mut a = fleet(4, usize::MAX);
    drive(&mut a, &batches);
    let ckpt = a.checkpoint();

    // wrong shard count
    let mut wrong = fleet(8, usize::MAX);
    assert!(wrong.restore(&ckpt).is_err());
    assert_eq!(wrong.series_active(), 0);
    let mut out = BatchOutput::new();
    wrong.push_batch(&[(SeriesId(9), 2.0)], &mut out);
    assert_eq!(out.points, 1);

    // segment list shorter than the manifest promises
    let mut short = ckpt.clone();
    short.segments.pop();
    let mut f = fleet(4, usize::MAX);
    assert!(f.restore(&short).is_err());
    assert_eq!(f.series_active(), 0);

    // segments swapped between shards: digests still match their manifest
    // entries only if we swap those too — the per-segment shard index
    // check must still refuse
    let mut swapped = ckpt.clone();
    swapped.segments.swap(0, 1);
    let manifest = ckpt.parse_manifest().unwrap();
    let mut entries = manifest.segments.clone();
    entries.swap(0, 1);
    let swapped_manifest = tsad_core::ckpt::SegmentManifest {
        fingerprint: manifest.fingerprint.clone(),
        meta: manifest.meta.clone(),
        segments: entries,
    };
    swapped.manifest = swapped_manifest.to_bytes();
    let mut f = fleet(4, usize::MAX);
    assert!(f.restore(&swapped).is_err());
    assert_eq!(f.series_active(), 0);
}

#[test]
fn restore_detects_single_byte_corruption_in_any_segment() {
    let batches = workload(12, 6);
    let mut a = fleet(2, usize::MAX);
    drive(&mut a, &batches);
    let ckpt = a.checkpoint();
    for seg in 0..ckpt.segments.len() {
        // stride through the segment to keep runtime sane
        for pos in (0..ckpt.segments[seg].len()).step_by(7) {
            let mut bad = ckpt.clone();
            bad.segments[seg][pos] ^= 0x01;
            let mut f = fleet(2, usize::MAX);
            assert!(
                f.restore(&bad).is_err(),
                "flip at segment {seg} byte {pos} restored"
            );
            assert_eq!(f.series_active(), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Truncating the flat checkpoint image anywhere must fail cleanly —
    /// either at parse or at restore — and leave the fleet reset.
    #[test]
    fn truncated_checkpoint_never_restores(
        series in 1u64..30,
        batches in 1u64..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let work = workload(series, batches);
        let mut a = fleet(4, usize::MAX);
        drive(&mut a, &work);
        let bytes = a.checkpoint().to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        let outcome = FleetCheckpoint::from_bytes(&bytes[..cut])
            .and_then(|c| fleet(4, usize::MAX).restore(&c));
        prop_assert!(outcome.is_err(), "cut at {} of {} parsed+restored", cut, bytes.len());
    }

    /// Flipping any byte of the flat image must fail cleanly (manifest
    /// seal, manifest digest-of-segment, or segment seal catches it), and
    /// the failed fleet must remain usable.
    #[test]
    fn corrupted_checkpoint_never_restores(
        series in 1u64..30,
        batches in 1u64..8,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let work = workload(series, batches);
        let mut a = fleet(4, usize::MAX);
        drive(&mut a, &work);
        let mut bytes = a.checkpoint().to_bytes();
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        prop_assume!(pos < bytes.len());
        bytes[pos] ^= 1 << bit;
        let mut f = fleet(4, usize::MAX);
        let outcome = FleetCheckpoint::from_bytes(&bytes)
            .and_then(|c| f.restore(&c));
        prop_assert!(outcome.is_err(), "flip at {}:{} restored", pos, bit);
        prop_assert_eq!(f.series_active(), 0);
        let mut out = BatchOutput::new();
        f.push_batch(&[(SeriesId(3), 1.5)], &mut out);
        prop_assert_eq!(out.points, 1);
    }
}
