//! Fleet determinism: batch scores and checkpoint bytes must be bitwise
//! identical at every shard count and every thread count, and identical
//! to feeding each series through its own standalone detector.

use std::collections::BTreeMap;

use tsad_fleet::{BatchOutput, Fleet, FleetConfig, SeriesId};
use tsad_parallel::with_threads;
use tsad_stream::{FnFactory, StreamingDetector, StreamingGlobalZScore};

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn factory() -> FnFactory<impl Fn(u64) -> StreamingGlobalZScore + Sync> {
    FnFactory(|_id| StreamingGlobalZScore::new(4).unwrap())
}

/// Deterministic pseudo-random value for (series, step).
fn value(id: u64, step: u64) -> f64 {
    let mut x = id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(step.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 31;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 29;
    (x % 10_000) as f64 / 100.0 - 50.0
}

/// A workload of `batches` batches over `series` series, each batch
/// carrying a varying subset so series interleave, appear, and go idle.
fn workload(series: u64, batches: u64) -> Vec<Vec<(SeriesId, f64)>> {
    (0..batches)
        .map(|t| {
            (0..series)
                .filter(|id| (id + t) % 3 != 0)
                .map(|id| (SeriesId(id), value(id, t)))
                .collect()
        })
        .collect()
}

/// Runs the workload and returns every (batch_no, batch_index, id, score
/// bits) tuple in emission order.
fn run(shards: usize, batches: &[Vec<(SeriesId, f64)>]) -> Vec<(usize, usize, u64, u64)> {
    let mut fleet = Fleet::new(
        factory(),
        FleetConfig {
            shards,
            ..FleetConfig::default()
        },
    );
    let mut out = BatchOutput::new();
    let mut log = Vec::new();
    for (t, batch) in batches.iter().enumerate() {
        fleet.push_batch(batch, &mut out);
        for s in &out.scores {
            log.push((t, s.batch_index, s.id.0, s.score.to_bits()));
        }
    }
    log
}

#[test]
fn scores_are_invariant_across_shard_and_thread_counts() {
    let batches = workload(97, 20);
    let reference = with_threads(1, || run(1, &batches));
    assert!(!reference.is_empty());
    for &shards in &SHARD_COUNTS {
        for &threads in &THREAD_COUNTS {
            let got = with_threads(threads, || run(shards, &batches));
            assert_eq!(
                got, reference,
                "scores diverged at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn fleet_scores_match_standalone_detectors() {
    let batches = workload(31, 24);
    let fleet_log = run(4, &batches);

    // replay per series through standalone detectors
    let mut dets: BTreeMap<u64, StreamingGlobalZScore> = BTreeMap::new();
    let mut expected: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for batch in &batches {
        for &(id, v) in batch {
            let det = dets
                .entry(id.0)
                .or_insert_with(|| StreamingGlobalZScore::new(4).unwrap());
            if let Some(score) = det.push(v) {
                expected.entry(id.0).or_default().push(score.to_bits());
            }
        }
    }
    let mut got: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (_, _, id, bits) in fleet_log {
        got.entry(id).or_default().push(bits);
    }
    assert_eq!(got, expected);
}

#[test]
fn checkpoint_bytes_are_invariant_across_thread_counts() {
    let batches = workload(64, 12);
    for &shards in &SHARD_COUNTS {
        let images: Vec<Vec<u8>> = THREAD_COUNTS
            .iter()
            .map(|&threads| {
                with_threads(threads, || {
                    let mut fleet = Fleet::new(
                        factory(),
                        FleetConfig {
                            shards,
                            ..FleetConfig::default()
                        },
                    );
                    let mut out = BatchOutput::new();
                    for batch in &batches {
                        fleet.push_batch(batch, &mut out);
                    }
                    fleet.checkpoint().to_bytes()
                })
            })
            .collect();
        assert_eq!(images[0], images[1], "shards={shards}: 1 vs 2 threads");
        assert_eq!(images[0], images[2], "shards={shards}: 1 vs 8 threads");
    }
}

#[test]
fn eviction_order_is_invariant_across_thread_counts() {
    let det = StreamingGlobalZScore::new(4).unwrap();
    let budget = tsad_fleet::entry_bytes(&det) * 3;
    let batches = workload(120, 16);
    let run_evictions = |threads: usize| {
        with_threads(threads, || {
            let mut fleet = Fleet::new(
                factory(),
                FleetConfig {
                    shards: 4,
                    shard_budget_bytes: budget,
                    ..FleetConfig::default()
                },
            );
            let mut out = BatchOutput::new();
            let mut evicted = Vec::new();
            for batch in &batches {
                fleet.push_batch(batch, &mut out);
                evicted.push(out.evicted.clone());
            }
            evicted
        })
    };
    let reference = run_evictions(1);
    assert!(reference.iter().any(|e| !e.is_empty()), "budget never hit");
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(run_evictions(threads), reference, "threads={threads}");
    }
}

#[test]
fn factory_receives_the_series_id() {
    // A factory that varies configuration by id must see the right id.
    let f = FnFactory(|id: u64| StreamingGlobalZScore::new(2 + (id % 3) as usize).unwrap());
    let mut fleet = Fleet::new(
        f,
        FleetConfig {
            shards: 4,
            ..FleetConfig::default()
        },
    );
    let mut out = BatchOutput::new();
    let batch: Vec<(SeriesId, f64)> = (0..9u64).map(|id| (SeriesId(id), 1.0)).collect();
    fleet.push_batch(&batch, &mut out);
    assert_eq!(out.spawned, 9);
    // per-id configuration shows up in the checkpoint fingerprint chain:
    // a fleet spawned with a *different* per-id recipe must refuse it
    let ckpt = fleet.checkpoint();
    let mut other = Fleet::new(
        FnFactory(|_id: u64| StreamingGlobalZScore::new(7).unwrap()),
        FleetConfig {
            shards: 4,
            ..FleetConfig::default()
        },
    );
    assert!(other.restore(&ckpt).is_err());
}
