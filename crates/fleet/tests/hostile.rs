//! Hostile-batch hardening: every `tsad-faults` standard profile, pushed
//! through `Fleet::push_batch`, must leave the fleet consistent — every
//! non-finite point quarantined *and reported* (never silently dropped),
//! every surviving point scored, and the fleet alive afterwards.

use tsad_faults::{standard_profiles, FaultKind, FaultProfile};
use tsad_fleet::{BatchNanPolicy, BatchOutput, Fleet, FleetConfig, SeriesId};
use tsad_stream::{FnFactory, NanPolicy, Sanitized, StreamingDetector, StreamingGlobalZScore};

const SERIES: u64 = 16;
const LEN: usize = 256;
const BATCH: usize = 64;

/// Per-series base signal before fault injection.
fn base_signal(id: u64) -> Vec<f64> {
    (0..LEN)
        .map(|t| ((t as f64) * 0.1 + id as f64).sin() * 2.0 + id as f64 * 0.01)
        .collect()
}

/// Injects `profile` into every series and interleaves them into batches
/// of `BATCH` points.
fn hostile_batches(profile: &FaultProfile, seed: u64) -> Vec<Vec<(SeriesId, f64)>> {
    let corrupted: Vec<Vec<f64>> = (0..SERIES)
        .map(|id| profile.inject(&base_signal(id), seed ^ id).0)
        .collect();
    let mut points = Vec::new();
    for t in 0..LEN {
        for (id, series) in corrupted.iter().enumerate() {
            points.push((SeriesId(id as u64), series[t]));
        }
    }
    points.chunks(BATCH).map(<[_]>::to_vec).collect()
}

#[test]
fn quarantine_policy_reports_every_non_finite_point_per_profile() {
    for profile in standard_profiles() {
        let batches = hostile_batches(&profile, 0xF1EE7);
        let mut fleet = Fleet::new(
            FnFactory(|_id: u64| StreamingGlobalZScore::new(8).unwrap()),
            FleetConfig {
                shards: 4,
                nan_policy: BatchNanPolicy::Quarantine,
                ..FleetConfig::default()
            },
        );
        let mut out = BatchOutput::new();
        let mut fed = 0u64;
        let mut quarantined = 0usize;
        let mut expected_bad = 0usize;
        for batch in &batches {
            expected_bad += batch.iter().filter(|(_, v)| !v.is_finite()).count();
            fleet.push_batch(batch, &mut out);
            fed += out.points;
            quarantined += out.quarantined.len();
            // every quarantined report points at an actually-bad input
            for q in &out.quarantined {
                let (id, v) = batch[q.batch_index];
                assert_eq!(id, q.id, "profile {}", profile.name);
                assert!(!v.is_finite(), "profile {}", profile.name);
            }
            // detectors behind the quarantine gate never emit non-finite
            // scores from non-finite inputs (z-score of finite input is
            // finite after warm-up)
            for s in &out.scores {
                assert!(
                    s.score.is_finite(),
                    "profile {}: non-finite score leaked",
                    profile.name
                );
            }
        }
        let total = (SERIES as usize * LEN) as u64;
        assert_eq!(
            fed + quarantined as u64,
            total,
            "profile {}: points lost",
            profile.name
        );
        assert_eq!(
            quarantined, expected_bad,
            "profile {}: quarantine miscount",
            profile.name
        );
        assert_eq!(fleet.series_active() as u64, SERIES);
    }
}

#[test]
fn propagate_policy_feeds_everything_to_sanitized_detectors() {
    // Fleets of Sanitized detectors carry their own NaN policy: the fleet
    // gate must stand aside and deliver every point.
    let profile = FaultProfile::new(
        "nan-flood",
        vec![
            FaultKind::NanPoison { rate: 0.25 },
            FaultKind::InfPoison { rate: 0.1 },
        ],
    );
    let batches = hostile_batches(&profile, 42);
    let mut fleet = Fleet::new(
        FnFactory(|_id: u64| {
            Sanitized::new(StreamingGlobalZScore::new(8).unwrap(), NanPolicy::Skip)
        }),
        FleetConfig {
            shards: 4,
            nan_policy: BatchNanPolicy::Propagate,
            ..FleetConfig::default()
        },
    );
    let mut out = BatchOutput::new();
    let mut fed = 0u64;
    for batch in &batches {
        fleet.push_batch(batch, &mut out);
        assert!(out.quarantined.is_empty());
        fed += out.points;
        for s in &out.scores {
            assert!(s.score.is_finite(), "Sanitized(Skip) leaked a bad score");
        }
    }
    assert_eq!(fed, SERIES * LEN as u64);
}

#[test]
fn all_nan_batch_spawns_nothing_and_fleet_survives() {
    let mut fleet = Fleet::new(
        FnFactory(|_id: u64| StreamingGlobalZScore::new(4).unwrap()),
        FleetConfig::default(),
    );
    let mut out = BatchOutput::new();
    let batch: Vec<(SeriesId, f64)> = (0..50u64).map(|id| (SeriesId(id), f64::NAN)).collect();
    fleet.push_batch(&batch, &mut out);
    assert_eq!(out.points, 0);
    assert_eq!(out.spawned, 0);
    assert_eq!(out.quarantined.len(), 50);
    assert_eq!(fleet.series_active(), 0);
    // and a clean batch afterwards behaves normally
    let clean: Vec<(SeriesId, f64)> = (0..50u64).map(|id| (SeriesId(id), 1.0)).collect();
    fleet.push_batch(&clean, &mut out);
    assert_eq!(out.points, 50);
    assert_eq!(out.spawned, 50);
    assert!(out.quarantined.is_empty());
}

#[test]
fn duplicates_and_reorder_within_a_batch_stay_deterministic() {
    // The reorder profile duplicates and swaps points *within* a series'
    // timeline; the fleet must process them in batch order, bitwise
    // reproducibly, and score every finite point exactly once.
    let profile = FaultProfile::new(
        "reorder-heavy",
        vec![
            FaultKind::Duplicate { rate: 0.1 },
            FaultKind::OutOfOrder { rate: 0.1 },
        ],
    );
    let run = || {
        let batches = hostile_batches(&profile, 7);
        let mut fleet = Fleet::new(
            FnFactory(|_id: u64| StreamingGlobalZScore::new(8).unwrap()),
            FleetConfig {
                shards: 4,
                ..FleetConfig::default()
            },
        );
        let mut out = BatchOutput::new();
        let mut log = Vec::new();
        for batch in &batches {
            fleet.push_batch(batch, &mut out);
            for s in &out.scores {
                log.push((s.batch_index, s.id.0, s.score.to_bits()));
            }
        }
        log
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

#[test]
fn sanitized_fleet_matches_standalone_sanitized_detector_under_faults() {
    // end-to-end: the fleet's per-series streams under a mixed fault
    // profile are bitwise what a lone Sanitized detector produces
    let profile = standard_profiles()
        .into_iter()
        .find(|p| p.name == "mixed")
        .unwrap_or_else(|| FaultProfile::new("nan", vec![FaultKind::NanPoison { rate: 0.05 }]));
    let batches = hostile_batches(&profile, 99);
    let spawn = |_id: u64| {
        Sanitized::new(
            StreamingGlobalZScore::new(8).unwrap(),
            NanPolicy::ImputeLast,
        )
    };
    let mut fleet = Fleet::new(
        FnFactory(spawn),
        FleetConfig {
            shards: 8,
            nan_policy: BatchNanPolicy::Propagate,
            ..FleetConfig::default()
        },
    );
    let mut out = BatchOutput::new();
    let mut per_series: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for batch in &batches {
        fleet.push_batch(batch, &mut out);
        for s in &out.scores {
            per_series
                .entry(s.id.0)
                .or_default()
                .push(s.score.to_bits());
        }
    }
    for id in 0..SERIES {
        let xs = profile.inject(&base_signal(id), 99 ^ id).0;
        let mut det = spawn(id);
        let expected: Vec<u64> = xs
            .iter()
            .filter_map(|&x| det.push(x))
            .map(f64::to_bits)
            .collect();
        assert_eq!(
            per_series.get(&id).cloned().unwrap_or_default(),
            expected,
            "series {id} diverged under profile {}",
            profile.name
        );
    }
}
