//! Fleet × registry integration: a [`RegistryFactory`] built from any
//! catalog id must host a fleet — spawn per-series detectors, score
//! batches deterministically, and suspend/resume bitwise through the
//! sharded checkpoint with the registry-derived name fingerprint guarding
//! the envelope. This is the "one table" guarantee of the registry: the
//! same id that drives the batch experiments drives a million-series
//! fleet.

use tsad_detectors::registry::Params;
use tsad_fleet::{BatchOutput, Fleet, FleetConfig, SeriesId};
use tsad_stream::{RegistryFactory, StreamHints};

fn hints() -> StreamHints {
    StreamHints {
        train_len: 16,
        horizon: 48,
    }
}

fn fleet(id: &str, shards: usize) -> Fleet<RegistryFactory> {
    Fleet::new(
        RegistryFactory::new(id, Params::new(), hints()).unwrap(),
        FleetConfig {
            shards,
            ..FleetConfig::default()
        },
    )
}

fn value(id: u64, step: u64) -> f64 {
    let mut x = id
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(step.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    x ^= x >> 33;
    (x % 1000) as f64 / 10.0
}

fn workload(series: u64, batches: u64) -> Vec<Vec<(SeriesId, f64)>> {
    (0..batches)
        .map(|t| (0..series).map(|id| (SeriesId(id), value(id, t))).collect())
        .collect()
}

fn drive(fleet: &mut Fleet<RegistryFactory>, batches: &[Vec<(SeriesId, f64)>]) -> Vec<u64> {
    let mut out = BatchOutput::new();
    let mut log = Vec::new();
    for batch in batches {
        fleet.push_batch(batch, &mut out);
        log.extend(out.scores.iter().map(|s| s.score.to_bits()));
    }
    log
}

/// A cheap native port, an adapted quadratic detector, and the new SPOT
/// port: one representative per spawn path (running every catalog entry
/// through a fleet is the smoke job's work, not a unit test's).
const REPRESENTATIVE_IDS: [&str; 3] = ["cusum", "iqr-baseline", "spot"];

#[test]
fn registry_factories_host_fleets_and_suspend_resume_bitwise() {
    for id in REPRESENTATIVE_IDS {
        // long enough that even the adapted entry (chunk geometry
        // every=96) emits scores on both sides of the checkpoint
        let batches = workload(16, 240);
        let (first, second) = batches.split_at(120);

        let mut reference = fleet(id, 4);
        drive(&mut reference, first);
        let tail_ref = drive(&mut reference, second);
        assert!(!tail_ref.is_empty(), "{id}: fleet emitted nothing");

        let mut a = fleet(id, 4);
        drive(&mut a, first);
        let ckpt = a.checkpoint();
        let mut b = fleet(id, 4);
        b.restore(&ckpt)
            .unwrap_or_else(|e| panic!("{id}: restore failed: {e}"));
        assert_eq!(tail_ref, drive(&mut b, second), "{id}: resume diverged");
    }
}

#[test]
fn fleets_refuse_checkpoints_from_a_different_catalog_entry() {
    let batches = workload(8, 24);
    let mut a = fleet("cusum", 2);
    drive(&mut a, &batches);
    let ckpt = a.checkpoint();
    let mut other = fleet("spot", 2);
    let err = other
        .restore(&ckpt)
        .expect_err("cross-entry fleet restore must fail");
    assert!(err.to_string().contains("fingerprint"), "{err}");
}

#[test]
fn spawned_detectors_are_identical_across_series_ids() {
    use tsad_stream::{DetectorFactory, StreamingDetector};
    let factory = RegistryFactory::new("moving-avg-residual", Params::new(), hints()).unwrap();
    let xs: Vec<f64> = (0..200).map(|i| value(3, i)).collect();
    let mut a = factory.spawn(0);
    let mut b = factory.spawn(u64::MAX);
    assert_eq!(a.score_stream(&xs), b.score_stream(&xs));
    assert_eq!(factory.fingerprint(), a.name());
}
