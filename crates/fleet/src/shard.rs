//! One shard: slab-backed detector storage, an intrusive LRU list, and
//! the per-batch scratch buffers.
//!
//! A shard owns every detector whose series routes to it. Storage is a
//! **slab**: a `Vec` of slots reusing freed indices through a free list,
//! so steady-state ingest never moves an entry and eviction never shifts
//! its neighbours. Recency is an **intrusive doubly-linked LRU list**
//! threaded through the slots by index (no allocation per touch); the
//! head is the least-recently-fed series, the tail the most recent, and
//! eviction always pops the head — which makes eviction order a pure
//! function of the ingest history and therefore deterministic at every
//! shard and thread count.
//!
//! All per-batch working memory (`inbox`, `scores`, quarantine and
//! eviction lists) lives on the shard and is reused across batches:
//! after the warm-up batches have grown them to their high-water mark,
//! processing a batch performs no heap allocation.

use std::collections::HashMap;

use tsad_core::ckpt::{corrupt, CkptReader, CkptWriter};
use tsad_core::error::Result;
use tsad_stream::{DetectorFactory, StreamingDetector};

use crate::{BatchNanPolicy, SeriesId};

/// Null index for the intrusive LRU links.
const NIL: u32 = u32::MAX;

/// Fixed accounting overhead per resident series, covering the slab slot,
/// LRU links, and the id→slot index entry. The point of the number is
/// budget arithmetic that tracks reality to first order, not exact
/// `malloc` telemetry.
pub const ENTRY_OVERHEAD_BYTES: usize = 96;

/// Accounted bytes for one resident detector: the fixed slot overhead
/// plus the detector's own bounded state
/// ([`StreamingDetector::memory_bound`], in `f64`-equivalents).
pub fn entry_bytes<D: StreamingDetector>(det: &D) -> usize {
    ENTRY_OVERHEAD_BYTES + det.memory_bound().saturating_mul(8)
}

/// One resident series: its detector plus slab/LRU bookkeeping.
struct Entry<D> {
    id: u64,
    det: D,
    /// Accounted bytes (fixed at spawn; detector state is bounded).
    bytes: usize,
    /// Fleet batch counter when this series last received a data point.
    last_touch: u64,
    lru_prev: u32,
    lru_next: u32,
}

/// One routed input point, in batch order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InPoint {
    pub batch_index: usize,
    pub id: u64,
    pub value: f64,
}

/// One emitted score, tagged with the batch position of the push that
/// emitted it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScorePoint {
    pub batch_index: usize,
    pub id: u64,
    pub score: f64,
}

/// Per-batch tallies a shard accumulates while processing its inbox.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ShardTally {
    pub points: u64,
    pub spawned: u64,
}

pub(crate) struct Shard<D> {
    entries: Vec<Option<Entry<D>>>,
    free: Vec<u32>,
    index: HashMap<u64, u32>,
    lru_head: u32,
    lru_tail: u32,
    bytes_in_use: usize,
    budget: usize,
    // ── reusable per-batch buffers ──────────────────────────────────
    pub(crate) inbox: Vec<InPoint>,
    pub(crate) scores: Vec<ScorePoint>,
    pub(crate) quarantined: Vec<(usize, u64)>,
    pub(crate) evicted: Vec<u64>,
    pub(crate) tally: ShardTally,
}

impl<D: StreamingDetector> Shard<D> {
    pub(crate) fn new(budget: usize) -> Self {
        Self {
            entries: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            lru_head: NIL,
            lru_tail: NIL,
            bytes_in_use: 0,
            budget,
            inbox: Vec::new(),
            scores: Vec::new(),
            quarantined: Vec::new(),
            evicted: Vec::new(),
            tally: ShardTally::default(),
        }
    }

    /// Resident series count.
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the series currently has a resident detector.
    pub(crate) fn contains(&self, id: u64) -> bool {
        self.index.contains_key(&id)
    }

    /// Accounted bytes across resident series.
    pub(crate) fn bytes_in_use(&self) -> usize {
        self.bytes_in_use
    }

    fn entry(&self, slot: u32) -> &Entry<D> {
        self.entries[slot as usize]
            .as_ref()
            .expect("LRU/index point at occupied slots")
    }

    fn entry_mut(&mut self, slot: u32) -> &mut Entry<D> {
        self.entries[slot as usize]
            .as_mut()
            .expect("LRU/index point at occupied slots")
    }

    fn lru_unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let e = self.entry(slot);
            (e.lru_prev, e.lru_next)
        };
        match prev {
            NIL => self.lru_head = next,
            p => self.entry_mut(p).lru_next = next,
        }
        match next {
            NIL => self.lru_tail = prev,
            n => self.entry_mut(n).lru_prev = prev,
        }
    }

    fn lru_push_tail(&mut self, slot: u32) {
        let old_tail = self.lru_tail;
        {
            let e = self.entry_mut(slot);
            e.lru_prev = old_tail;
            e.lru_next = NIL;
        }
        match old_tail {
            NIL => self.lru_head = slot,
            t => self.entry_mut(t).lru_next = slot,
        }
        self.lru_tail = slot;
    }

    fn lru_touch(&mut self, slot: u32) {
        if self.lru_tail == slot {
            return;
        }
        self.lru_unlink(slot);
        self.lru_push_tail(slot);
    }

    /// Evicts the least-recently-fed series; returns its id.
    fn evict_head(&mut self) -> Option<u64> {
        let head = self.lru_head;
        if head == NIL {
            return None;
        }
        self.lru_unlink(head);
        let entry = self.entries[head as usize]
            .take()
            .expect("LRU head is occupied");
        self.index.remove(&entry.id);
        self.bytes_in_use -= entry.bytes;
        self.free.push(head);
        Some(entry.id)
    }

    /// Inserts a freshly-spawned detector, evicting LRU entries first when
    /// the budget requires it. The inserted series itself is always
    /// admitted, even when it alone exceeds the budget — a shard cannot
    /// refuse the series it was just asked to host.
    fn insert(&mut self, id: u64, det: D, last_touch: u64) -> u32 {
        let bytes = entry_bytes(&det);
        while self.lru_head != NIL && self.bytes_in_use.saturating_add(bytes) > self.budget {
            if let Some(evicted) = self.evict_head() {
                self.evicted.push(evicted);
            }
        }
        let entry = Entry {
            id,
            det,
            bytes,
            last_touch,
            lru_prev: NIL,
            lru_next: NIL,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.entries[s as usize] = Some(entry);
                s
            }
            None => {
                let s = u32::try_from(self.entries.len()).expect("slab slots fit u32");
                self.entries.push(Some(entry));
                s
            }
        };
        self.index.insert(id, slot);
        self.bytes_in_use += bytes;
        self.lru_push_tail(slot);
        slot
    }

    /// Processes the routed inbox in batch order: quarantine, spawn,
    /// feed, touch. Clears the inbox afterwards so buffers are ready for
    /// the next batch.
    pub(crate) fn process<F>(&mut self, factory: &F, policy: BatchNanPolicy, batch_no: u64)
    where
        F: DetectorFactory<Detector = D>,
    {
        for i in 0..self.inbox.len() {
            let InPoint {
                batch_index,
                id,
                value,
            } = self.inbox[i];
            if policy == BatchNanPolicy::Quarantine && !value.is_finite() {
                self.quarantined.push((batch_index, id));
                continue;
            }
            let slot = match self.index.get(&id) {
                Some(&s) => s,
                None => {
                    self.tally.spawned += 1;
                    self.insert(id, factory.spawn(id), batch_no)
                }
            };
            let entry = self.entry_mut(slot);
            entry.last_touch = batch_no;
            if let Some(score) = entry.det.push(value) {
                self.scores.push(ScorePoint {
                    batch_index,
                    id,
                    score,
                });
            }
            self.lru_touch(slot);
            self.tally.points += 1;
        }
        self.inbox.clear();
    }

    /// Evicts every series idle for more than `max_idle` batches (walked
    /// from the LRU head, whose touch order is monotone), appending ids
    /// to `out`.
    pub(crate) fn evict_idle(&mut self, now: u64, max_idle: u64, out: &mut Vec<SeriesId>) {
        while self.lru_head != NIL {
            let last = self.entry(self.lru_head).last_touch;
            if last.saturating_add(max_idle) >= now {
                break;
            }
            if let Some(id) = self.evict_head() {
                out.push(SeriesId(id));
            }
        }
    }

    /// Evicts from the LRU head until the shard fits its budget,
    /// appending ids to `out` (used after a restore into a smaller
    /// budget; the order is the checkpoint's recency order, so it is
    /// stable across runs).
    pub(crate) fn evict_to_budget(&mut self, out: &mut Vec<SeriesId>) {
        while self.bytes_in_use > self.budget {
            match self.evict_head() {
                Some(id) => out.push(SeriesId(id)),
                None => break,
            }
        }
    }

    /// Serializes the shard into a sealed segment blob: entries in LRU
    /// order (least → most recent), so a restore that replays insertions
    /// reproduces the recency order exactly.
    pub(crate) fn segment_bytes(&self, shard_index: usize) -> Vec<u8> {
        let mut w = CkptWriter::new();
        w.usize(shard_index);
        w.usize(self.len());
        let mut slot = self.lru_head;
        while slot != NIL {
            let e = self.entry(slot);
            w.u64(e.id);
            w.str(&e.det.name());
            w.u64(e.last_touch);
            e.det.save_state(&mut w);
            slot = e.lru_next;
        }
        w.finish()
    }

    /// Rehydrates the shard from a sealed segment blob (already
    /// digest-verified against the manifest). `route` maps a series id to
    /// its expected shard, guarding against segments filed under the
    /// wrong shard.
    pub(crate) fn load_segment<F>(
        &mut self,
        factory: &F,
        shard_index: usize,
        segment: &[u8],
        route: impl Fn(u64) -> usize,
    ) -> Result<()>
    where
        F: DetectorFactory<Detector = D>,
    {
        let mut r = CkptReader::new(segment)?;
        let stored_index = r.usize()?;
        if stored_index != shard_index {
            return Err(corrupt(format!(
                "segment is for shard {stored_index}, expected shard {shard_index}"
            )));
        }
        // Budget enforcement is deferred: entries are admitted unbudgeted in
        // checkpoint order, then the caller runs `evict_to_budget` once per
        // shard, so a restore into a smaller budget evicts in the stable
        // checkpoint recency order rather than interleaved with insertion.
        let budget = std::mem::replace(&mut self.budget, usize::MAX);
        let loaded = self.load_entries(factory, shard_index, &mut r, &route);
        self.budget = budget;
        loaded?;
        r.done()
    }

    fn load_entries<F>(
        &mut self,
        factory: &F,
        shard_index: usize,
        r: &mut CkptReader<'_>,
        route: impl Fn(u64) -> usize,
    ) -> Result<()>
    where
        F: DetectorFactory<Detector = D>,
    {
        let count = r.usize()?;
        for _ in 0..count {
            let id = r.u64()?;
            if route(id) != shard_index {
                return Err(corrupt(format!(
                    "series {id} does not route to shard {shard_index}"
                )));
            }
            if self.index.contains_key(&id) {
                return Err(corrupt(format!("series {id} appears twice in segment")));
            }
            let name = r.string()?;
            let last_touch = r.u64()?;
            let mut det = factory.spawn(id);
            if det.name() != name {
                return Err(corrupt(format!(
                    "configuration fingerprint mismatch for series {id}: blob is \
                     for `{name}`, factory spawns `{}`",
                    det.name()
                )));
            }
            det.load_state(r)?;
            self.insert(id, det, last_touch);
        }
        Ok(())
    }
}
