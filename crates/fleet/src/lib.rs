//! # tsad-fleet — a sharded, multi-tenant detector fleet
//!
//! `tsad-stream` runs *one* detector on *one* series. A deployment runs
//! millions — one detector per user/host/metric — and feeds them from a
//! single firehose of `(series, value)` points. This crate is that
//! engine:
//!
//! * **Sharded registry.** Series ids route to one of `N` shards by a
//!   fixed 64-bit mix, each shard owning slab storage for its detectors
//!   plus an intrusive LRU list. Scores are a pure function of each
//!   series' own point sequence, so results are **shard-count- and
//!   thread-count-invariant** (verified bitwise by the determinism
//!   tests).
//! * **Batched ingestion.** [`Fleet::push_batch`] groups a
//!   `&[(SeriesId, f64)]` batch by shard and fans the shards out over
//!   `tsad-parallel`. All working memory is reused: in steady state (no
//!   new series, budgets respected) ingest performs **zero heap
//!   allocations** at one effective thread — gated by the workspace's
//!   alloc-tracking benches.
//! * **Memory budgets.** Each shard carries a byte budget; admitting a
//!   new series evicts least-recently-fed ones first, and
//!   [`Fleet::evict_idle`] sweeps series that have gone quiet. Eviction
//!   order is deterministic (LRU order is a pure function of the ingest
//!   history).
//! * **Sharded checkpoint/restore.** [`Fleet::checkpoint`] serializes
//!   every shard into its own sealed TSCK-style segment behind a sealed
//!   [`tsad_core::ckpt::SegmentManifest`] recording each
//!   segment's length and FNV-1a/64 digest. [`Fleet::restore`] verifies
//!   manifest, fingerprints, and digests, rehydrates every detector, and
//!   resumes **bitwise identically** to the uninterrupted run; restoring
//!   into a smaller budget evicts deterministically in checkpoint
//!   recency order.
//! * **Hostile input.** Non-finite samples are quarantined at the gate
//!   (reported per batch in [`BatchOutput::quarantined`], never silently
//!   dropped) or passed through to `Sanitized` detectors, per
//!   [`BatchNanPolicy`].
//!
//! ```
//! use tsad_fleet::{BatchOutput, Fleet, FleetConfig, SeriesId};
//! use tsad_stream::{FnFactory, StreamingGlobalZScore};
//!
//! let factory = FnFactory(|_id| StreamingGlobalZScore::new(2).unwrap());
//! let mut fleet = Fleet::new(factory, FleetConfig::default());
//! let mut out = BatchOutput::new();
//! fleet.push_batch(
//!     &[
//!         (SeriesId(7), 1.0),
//!         (SeriesId(9), 0.5),
//!         (SeriesId(7), 1.1),
//!     ],
//!     &mut out,
//! );
//! assert_eq!(fleet.series_active(), 2);
//! assert_eq!(out.points, 3);
//! ```

pub mod checkpoint;
mod shard;

pub use checkpoint::{FleetCheckpoint, FLEET_VERSION};
pub use shard::{entry_bytes, ENTRY_OVERHEAD_BYTES};

use tsad_core::ckpt::{corrupt, SegmentEntry, SegmentManifest};
use tsad_core::error::Result;
use tsad_obs::{Counter, Gauge, Span};
use tsad_parallel::{par_each_mut, par_map_indexed};
use tsad_stream::DetectorFactory;

use checkpoint::FLEET_META_WORDS;
use shard::{InPoint, Shard};

/// Points ingested across all shards (quarantined points excluded).
static FLEET_POINTS: Counter = Counter::new("fleet.points");
/// Detectors spawned for previously-unseen series.
static FLEET_SPAWNED: Counter = Counter::new("fleet.spawned");
/// Series evicted (budget pressure, idle sweeps, and budget-shrinking
/// restores combined).
static FLEET_EVICTIONS: Counter = Counter::new("fleet.evictions");
/// Non-finite points quarantined at the fleet gate.
static FLEET_QUARANTINED: Counter = Counter::new("fleet.quarantined");
/// Currently resident series, maintained incrementally.
static FLEET_SERIES_ACTIVE: Gauge = Gauge::new("fleet.series_active");
/// Accounted bytes per resident series (mean, recomputed per batch).
static FLEET_BYTES_PER_SERIES: Gauge = Gauge::new("fleet.bytes_per_series");
/// High-water resident-series count of the fullest shard.
static FLEET_SHARD_FILL_MAX: Gauge = Gauge::new("fleet.shard_fill_max");
/// Wall-clock time per `push_batch` call.
static FLEET_PUSH_BATCH_NS: Span = Span::new("fleet.push_batch_ns");

/// Opaque series key (user id, host id, metric hash — the caller's
/// namespace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u64);

/// What the fleet does with a non-finite sample *before* it reaches a
/// detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchNanPolicy {
    /// Withhold it: the detector never sees the point; the batch report
    /// lists it under [`BatchOutput::quarantined`]. The right default for
    /// plain detectors.
    Quarantine,
    /// Feed it through: for fleets of `Sanitized` detectors that carry
    /// their own per-series [`NanPolicy`](tsad_stream::NanPolicy).
    Propagate,
}

/// Fleet construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Shard count (clamped to at least 1). Scores do not depend on it;
    /// it sets fan-out granularity and checkpoint segmentation.
    pub shards: usize,
    /// Byte budget per shard ([`usize::MAX`] = unbounded). Admission of a
    /// new series evicts least-recently-fed residents until the shard
    /// fits; the admitted series itself is never refused.
    pub shard_budget_bytes: usize,
    /// Non-finite handling at the ingest gate.
    pub nan_policy: BatchNanPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            shard_budget_bytes: usize::MAX,
            nan_policy: BatchNanPolicy::Quarantine,
        }
    }
}

/// One emitted score: the batch position of the push that emitted it, the
/// series it belongs to, and the score value. Detector lag applies *per
/// series*: the score emitted at `batch_index` may describe an earlier
/// point of the same series, exactly as
/// [`StreamingDetector::push`](tsad_stream::StreamingDetector::push)
/// defines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchScore {
    /// Index into the `push_batch` input slice.
    pub batch_index: usize,
    /// The series the score belongs to.
    pub id: SeriesId,
    /// The detector's score.
    pub score: f64,
}

/// A point withheld from its detector by [`BatchNanPolicy::Quarantine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedPoint {
    /// Index into the `push_batch` input slice.
    pub batch_index: usize,
    /// The series the point addressed.
    pub id: SeriesId,
}

/// Reusable per-batch results. Allocate once, pass to every
/// [`Fleet::push_batch`] call; the buffers are cleared and refilled, so a
/// steady-state caller never allocates for output.
#[derive(Debug, Default, Clone)]
pub struct BatchOutput {
    /// Emitted scores, sorted by `batch_index` (deterministic at every
    /// shard and thread count).
    pub scores: Vec<BatchScore>,
    /// Quarantined non-finite points, sorted by `batch_index` — reported,
    /// never silently dropped.
    pub quarantined: Vec<QuarantinedPoint>,
    /// Series evicted by budget pressure while admitting this batch's new
    /// series, in shard order then eviction order.
    pub evicted: Vec<SeriesId>,
    /// Detectors spawned for previously-unseen series.
    pub spawned: u64,
    /// Points fed to detectors (total minus quarantined).
    pub points: u64,
}

impl BatchOutput {
    /// Empty output buffers.
    pub fn new() -> Self {
        Self::default()
    }

    fn clear(&mut self) {
        self.scores.clear();
        self.quarantined.clear();
        self.evicted.clear();
        self.spawned = 0;
        self.points = 0;
    }
}

/// What a [`Fleet::restore`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreReport {
    /// Series resident after the restore (post-eviction).
    pub series: usize,
    /// Series evicted because the restoring fleet's budget is smaller
    /// than the checkpointing fleet's, in shard order then checkpoint
    /// recency order (stable across runs).
    pub evicted: Vec<SeriesId>,
}

/// Murmur3 finalizer: the fixed series→shard mix. Deterministic across
/// processes and platforms, so checkpoints route identically forever.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// A sharded multi-tenant detector fleet. See the crate docs.
pub struct Fleet<F: DetectorFactory> {
    factory: F,
    cfg: FleetConfig,
    shards: Vec<Shard<F::Detector>>,
    /// Batches ingested so far — the recency clock for idle eviction.
    batches: u64,
}

impl<F: DetectorFactory> Fleet<F> {
    /// An empty fleet. `cfg.shards` is clamped to at least 1.
    pub fn new(factory: F, mut cfg: FleetConfig) -> Self {
        cfg.shards = cfg.shards.max(1);
        let shards = (0..cfg.shards)
            .map(|_| Shard::new(cfg.shard_budget_bytes))
            .collect();
        Self {
            factory,
            cfg,
            shards,
            batches: 0,
        }
    }

    /// The construction parameters (shard count already clamped).
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The spawn recipe.
    pub fn factory(&self) -> &F {
        &self.factory
    }

    /// The shard a series routes to.
    pub fn shard_of(&self, id: SeriesId) -> usize {
        (mix64(id.0) % self.cfg.shards as u64) as usize
    }

    /// True when the series currently has a resident detector.
    pub fn contains(&self, id: SeriesId) -> bool {
        self.shards[self.shard_of(id)].contains(id.0)
    }

    /// Currently resident series across all shards.
    pub fn series_active(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Accounted bytes across all resident series.
    pub fn bytes_in_use(&self) -> usize {
        self.shards.iter().map(Shard::bytes_in_use).sum()
    }

    /// Mean accounted bytes per resident series (0 when empty).
    pub fn bytes_per_series(&self) -> usize {
        self.bytes_in_use()
            .checked_div(self.series_active())
            .unwrap_or(0)
    }

    /// Resident-series count of the emptiest and fullest shard — the
    /// routing balance at a glance.
    pub fn shard_fill(&self) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0;
        for s in &self.shards {
            lo = lo.min(s.len());
            hi = hi.max(s.len());
        }
        if self.shards.is_empty() {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// Batches ingested so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Ingests one multi-series batch: routes points to shards (input
    /// order preserved per series), fans shards out over `tsad-parallel`,
    /// and merges results into `out` sorted by batch index.
    ///
    /// Determinism: per-shard processing is sequential in batch order and
    /// the merge sorts by batch index, so `out` is bitwise identical at
    /// every shard count and thread count. In steady state — every series
    /// already resident, no evictions — this performs zero heap
    /// allocations at one effective thread.
    pub fn push_batch(&mut self, batch: &[(SeriesId, f64)], out: &mut BatchOutput) {
        let _t = FLEET_PUSH_BATCH_NS.start();
        out.clear();
        self.batches += 1;
        let batch_no = self.batches;
        let nshards = self.cfg.shards as u64;
        for (i, &(id, value)) in batch.iter().enumerate() {
            let s = (mix64(id.0) % nshards) as usize;
            self.shards[s].inbox.push(InPoint {
                batch_index: i,
                id: id.0,
                value,
            });
        }
        let factory = &self.factory;
        let policy = self.cfg.nan_policy;
        par_each_mut(&mut self.shards, |_, shard| {
            shard.process(factory, policy, batch_no);
        });
        // merge in shard order, then restore batch order; batch indices
        // are unique, so the unstable sort is deterministic
        for shard in &mut self.shards {
            for sp in shard.scores.drain(..) {
                out.scores.push(BatchScore {
                    batch_index: sp.batch_index,
                    id: SeriesId(sp.id),
                    score: sp.score,
                });
            }
            for (batch_index, id) in shard.quarantined.drain(..) {
                out.quarantined.push(QuarantinedPoint {
                    batch_index,
                    id: SeriesId(id),
                });
            }
            for id in shard.evicted.drain(..) {
                out.evicted.push(SeriesId(id));
            }
            out.spawned += shard.tally.spawned;
            out.points += shard.tally.points;
            shard.tally = Default::default();
        }
        out.scores.sort_unstable_by_key(|s| s.batch_index);
        out.quarantined.sort_unstable_by_key(|q| q.batch_index);

        FLEET_POINTS.add(out.points);
        FLEET_SPAWNED.add(out.spawned);
        FLEET_SERIES_ACTIVE.add(out.spawned);
        FLEET_SERIES_ACTIVE.sub(out.evicted.len() as u64);
        FLEET_EVICTIONS.add(out.evicted.len() as u64);
        FLEET_QUARANTINED.add(out.quarantined.len() as u64);
        FLEET_BYTES_PER_SERIES.set(self.bytes_per_series() as u64);
        FLEET_SHARD_FILL_MAX.set_max(self.shard_fill().1 as u64);
    }

    /// Evicts every series that has not received a point in more than
    /// `max_idle` batches. Returns the evicted ids in shard order then
    /// recency order (deterministic).
    pub fn evict_idle(&mut self, max_idle: u64) -> Vec<SeriesId> {
        let now = self.batches;
        let mut out = Vec::new();
        for shard in &mut self.shards {
            shard.evict_idle(now, max_idle, &mut out);
        }
        FLEET_EVICTIONS.add(out.len() as u64);
        FLEET_SERIES_ACTIVE.sub(out.len() as u64);
        out
    }

    /// Drops every resident series and restarts the batch clock. The
    /// configuration and factory stay.
    pub fn reset(&mut self) {
        for shard in &mut self.shards {
            *shard = Shard::new(self.cfg.shard_budget_bytes);
        }
        self.batches = 0;
        FLEET_SERIES_ACTIVE.set(0);
    }

    /// Serializes the fleet into a sharded checkpoint: one sealed segment
    /// per shard (entries in LRU order) behind a sealed manifest carrying
    /// per-segment digests. Segments are produced in parallel over
    /// `tsad-parallel`; the bytes are identical at every thread count.
    ///
    /// Checkpointing a fleet, restoring it, and checkpointing again
    /// yields bitwise-identical bytes — recency order survives the round
    /// trip.
    pub fn checkpoint(&self) -> FleetCheckpoint
    where
        F::Detector: Sync,
    {
        let segments: Vec<Vec<u8>> =
            par_map_indexed(&self.shards, |i, shard| shard.segment_bytes(i));
        let manifest = SegmentManifest {
            fingerprint: self.factory.fingerprint(),
            meta: vec![
                FLEET_VERSION,
                self.cfg.shards as u64,
                self.series_active() as u64,
                self.batches,
            ],
            segments: segments.iter().map(|s| SegmentEntry::describe(s)).collect(),
        };
        FleetCheckpoint {
            manifest: manifest.to_bytes(),
            segments,
        }
    }

    /// Rehydrates the fleet from a checkpoint produced by an
    /// identically-configured fleet (same factory fingerprint, same shard
    /// count; budgets may differ). On success the fleet's subsequent
    /// scores are bitwise identical to the uninterrupted run. On any
    /// error — bad manifest, fingerprint mismatch, segment digest
    /// mismatch, truncation, malformed state — the fleet is left *reset*
    /// (empty but usable) and the error is returned.
    ///
    /// If this fleet's shard budget is smaller than the checkpointed
    /// fleet's footprint, least-recently-fed series are evicted per shard
    /// in checkpoint recency order — a deterministic, stable order —
    /// and reported in the [`RestoreReport`].
    pub fn restore(&mut self, ckpt: &FleetCheckpoint) -> Result<RestoreReport> {
        let result = self.try_restore(ckpt);
        if result.is_err() {
            self.reset();
        }
        result
    }

    fn try_restore(&mut self, ckpt: &FleetCheckpoint) -> Result<RestoreReport> {
        let manifest = ckpt.parse_manifest()?;
        let fingerprint = self.factory.fingerprint();
        if manifest.fingerprint != fingerprint {
            return Err(corrupt(format!(
                "fleet fingerprint mismatch: checkpoint is for `{}`, factory \
                 spawns `{fingerprint}`",
                manifest.fingerprint
            )));
        }
        if manifest.meta.len() != FLEET_META_WORDS {
            return Err(corrupt(format!(
                "fleet manifest carries {} meta words, expected {FLEET_META_WORDS}",
                manifest.meta.len()
            )));
        }
        let version = manifest.meta[0];
        if version != FLEET_VERSION {
            return Err(corrupt(format!(
                "unsupported fleet checkpoint version {version}, this build reads \
                 {FLEET_VERSION}"
            )));
        }
        let shard_count = manifest.meta[1];
        if shard_count != self.cfg.shards as u64 {
            return Err(corrupt(format!(
                "checkpoint has {shard_count} shards, fleet is configured for {}",
                self.cfg.shards
            )));
        }
        if manifest.segments.len() != self.cfg.shards || ckpt.segments.len() != self.cfg.shards {
            return Err(corrupt(format!(
                "manifest declares {} segments, checkpoint carries {}, fleet \
                 expects {}",
                manifest.segments.len(),
                ckpt.segments.len(),
                self.cfg.shards
            )));
        }
        self.reset();
        let nshards = self.cfg.shards as u64;
        for (i, (entry, segment)) in manifest.segments.iter().zip(&ckpt.segments).enumerate() {
            entry.verify(segment)?;
            self.shards[i].load_segment(&self.factory, i, segment, |id| {
                (mix64(id) % nshards) as usize
            })?;
        }
        let restored = self.series_active();
        if restored as u64 != manifest.meta[2] {
            return Err(corrupt(format!(
                "manifest declares {} series, segments carried {restored}",
                manifest.meta[2]
            )));
        }
        self.batches = manifest.meta[3];
        let mut evicted = Vec::new();
        for shard in &mut self.shards {
            shard.evict_to_budget(&mut evicted);
        }
        FLEET_EVICTIONS.add(evicted.len() as u64);
        FLEET_SERIES_ACTIVE.set(self.series_active() as u64);
        Ok(RestoreReport {
            series: self.series_active(),
            evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_stream::{FnFactory, StreamingDetector, StreamingGlobalZScore};

    fn zscore_fleet(
        cfg: FleetConfig,
    ) -> Fleet<FnFactory<impl Fn(u64) -> StreamingGlobalZScore + Sync>> {
        Fleet::new(FnFactory(|_id| StreamingGlobalZScore::new(3).unwrap()), cfg)
    }

    #[test]
    fn fleet_scores_match_a_standalone_detector() {
        let mut fleet = zscore_fleet(FleetConfig {
            shards: 4,
            ..FleetConfig::default()
        });
        let mut out = BatchOutput::new();
        let xs = [1.0, 2.0, 4.0, 3.0, 2.5, 9.0];
        // interleave two series carrying the same values
        let mut per_series = Vec::new();
        for &x in &xs {
            per_series.push((SeriesId(1), x));
            per_series.push((SeriesId(2), x));
        }
        let mut collected: Vec<f64> = Vec::new();
        fleet.push_batch(&per_series, &mut out);
        for s in &out.scores {
            if s.id == SeriesId(1) {
                collected.push(s.score);
            }
        }
        let mut reference = StreamingGlobalZScore::new(3).unwrap();
        let expected: Vec<f64> = xs.iter().filter_map(|&x| reference.push(x)).collect();
        assert_eq!(collected.len(), expected.len());
        for (a, b) in collected.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(fleet.series_active(), 2);
        assert_eq!(out.spawned, 2);
        assert_eq!(out.points, per_series.len() as u64);
    }

    #[test]
    fn scores_are_sorted_by_batch_index() {
        let mut fleet = zscore_fleet(FleetConfig::default());
        let mut out = BatchOutput::new();
        let batch: Vec<(SeriesId, f64)> = (0..64u64)
            .map(|i| (SeriesId(i % 8), (i as f64).sin()))
            .collect();
        fleet.push_batch(&batch, &mut out);
        for w in out.scores.windows(2) {
            assert!(w[0].batch_index < w[1].batch_index);
        }
    }

    #[test]
    fn quarantine_reports_non_finite_points() {
        let mut fleet = zscore_fleet(FleetConfig::default());
        let mut out = BatchOutput::new();
        fleet.push_batch(
            &[
                (SeriesId(1), 1.0),
                (SeriesId(1), f64::NAN),
                (SeriesId(2), f64::INFINITY),
                (SeriesId(1), 2.0),
            ],
            &mut out,
        );
        assert_eq!(out.points, 2);
        assert_eq!(
            out.quarantined,
            vec![
                QuarantinedPoint {
                    batch_index: 1,
                    id: SeriesId(1)
                },
                QuarantinedPoint {
                    batch_index: 2,
                    id: SeriesId(2)
                },
            ]
        );
        // series 2 saw only a quarantined point: no detector was spawned
        assert!(!fleet.contains(SeriesId(2)));
    }

    #[test]
    fn budget_evicts_least_recently_fed_first() {
        let per_entry = entry_bytes(&StreamingGlobalZScore::new(3).unwrap());
        let mut fleet = zscore_fleet(FleetConfig {
            shards: 1,
            shard_budget_bytes: per_entry * 2,
            ..FleetConfig::default()
        });
        let mut out = BatchOutput::new();
        fleet.push_batch(&[(SeriesId(1), 0.0)], &mut out);
        fleet.push_batch(&[(SeriesId(2), 0.0)], &mut out);
        // touch 1 so 2 becomes least recent
        fleet.push_batch(&[(SeriesId(1), 0.5)], &mut out);
        fleet.push_batch(&[(SeriesId(3), 0.0)], &mut out);
        assert_eq!(out.evicted, vec![SeriesId(2)]);
        assert!(fleet.contains(SeriesId(1)));
        assert!(!fleet.contains(SeriesId(2)));
        assert!(fleet.contains(SeriesId(3)));
        assert_eq!(fleet.series_active(), 2);
    }

    #[test]
    fn evict_idle_sweeps_quiet_series() {
        let mut fleet = zscore_fleet(FleetConfig::default());
        let mut out = BatchOutput::new();
        fleet.push_batch(&[(SeriesId(1), 0.0), (SeriesId(2), 0.0)], &mut out);
        fleet.push_batch(&[(SeriesId(1), 0.1)], &mut out);
        fleet.push_batch(&[(SeriesId(1), 0.2)], &mut out);
        let evicted = fleet.evict_idle(1);
        assert_eq!(evicted, vec![SeriesId(2)]);
        assert_eq!(fleet.series_active(), 1);
        assert!(fleet.evict_idle(1).is_empty());
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let fleet = zscore_fleet(FleetConfig {
            shards: 7,
            ..FleetConfig::default()
        });
        for id in 0..1000u64 {
            let s = fleet.shard_of(SeriesId(id));
            assert!(s < 7);
            assert_eq!(s, fleet.shard_of(SeriesId(id)));
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let fleet = zscore_fleet(FleetConfig {
            shards: 0,
            ..FleetConfig::default()
        });
        assert_eq!(fleet.config().shards, 1);
        assert_eq!(fleet.shard_of(SeriesId(42)), 0);
    }
}
