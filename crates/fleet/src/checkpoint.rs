//! Sharded checkpoint container: one sealed segment per shard, fronted
//! by a sealed [`SegmentManifest`].
//!
//! ```text
//! FleetCheckpoint
//! ├── manifest  — sealed tsad_core::ckpt::SegmentManifest blob
//! │     fingerprint = factory fingerprint
//! │     meta        = [FLEET_VERSION, shard_count, series_total, batches]
//! │     segments[i] = { len, digest } of segment i
//! └── segments  — per-shard sealed blobs (see `Shard::segment_bytes`)
//!       usize shard_index
//!       usize entry_count
//!       entries in LRU order: id, name fingerprint, last_touch, state
//! ```
//!
//! Every layer is independently verifiable: the manifest carries its own
//! FNV-1a/64 seal, each segment carries its own, and the manifest
//! additionally records each segment's length and digest — so a truncated
//! or corrupted shard is identified *as that shard* before any of its
//! bytes are parsed, and restore can refuse the whole checkpoint with a
//! typed error while leaving the fleet reset and usable.
//!
//! [`to_bytes`](FleetCheckpoint::to_bytes)/[`from_bytes`](FleetCheckpoint::from_bytes)
//! give the container a flat wire form (`u64` manifest length, manifest,
//! segments back to back) for writing to a single file; the segment
//! boundaries are recovered from the manifest.

use tsad_core::ckpt::{corrupt, SegmentManifest};
use tsad_core::error::Result;

/// Fleet checkpoint layout version, carried as `meta[0]` in the manifest.
pub const FLEET_VERSION: u64 = 1;

/// Number of `meta` words a fleet manifest carries.
pub(crate) const FLEET_META_WORDS: usize = 4;

/// A sharded fleet checkpoint: sealed manifest plus per-shard sealed
/// segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetCheckpoint {
    /// Sealed [`SegmentManifest`] blob.
    pub manifest: Vec<u8>,
    /// Per-shard sealed segment blobs, in shard order.
    pub segments: Vec<Vec<u8>>,
}

impl FleetCheckpoint {
    /// Total size of the checkpoint in bytes (manifest + segments,
    /// excluding the 8-byte wire-form length prefix).
    pub fn total_bytes(&self) -> usize {
        self.manifest.len() + self.segments.iter().map(Vec::len).sum::<usize>()
    }

    /// Flattens into the wire form: `u64` manifest length (little-endian),
    /// manifest blob, then every segment back to back.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.total_bytes());
        out.extend_from_slice(&(self.manifest.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.manifest);
        for seg in &self.segments {
            out.extend_from_slice(seg);
        }
        out
    }

    /// Parses the wire form, validating the manifest's seal and using its
    /// declared segment lengths to recover the segment boundaries. Every
    /// length is bounds-checked before slicing; segment *digests* are
    /// verified by restore, so a checkpoint with a corrupt segment can
    /// still be loaded into memory and diagnosed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 8 {
            return Err(corrupt(format!(
                "fleet checkpoint of {} bytes is too short for the manifest length",
                bytes.len()
            )));
        }
        let (len_bytes, rest) = bytes.split_at(8);
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(len_bytes);
        let manifest_len = u64::from_le_bytes(len8);
        let manifest_len = usize::try_from(manifest_len)
            .ok()
            .filter(|&n| n <= rest.len())
            .ok_or_else(|| {
                corrupt(format!(
                    "manifest length {manifest_len} exceeds the {} bytes present",
                    rest.len()
                ))
            })?;
        let (manifest_bytes, mut seg_bytes) = rest.split_at(manifest_len);
        let manifest = SegmentManifest::from_bytes(manifest_bytes)?;
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for (i, entry) in manifest.segments.iter().enumerate() {
            let len = usize::try_from(entry.len)
                .ok()
                .filter(|&n| n <= seg_bytes.len())
                .ok_or_else(|| {
                    corrupt(format!(
                        "segment {i} declares {} bytes but only {} remain",
                        entry.len,
                        seg_bytes.len()
                    ))
                })?;
            let (seg, rest) = seg_bytes.split_at(len);
            segments.push(seg.to_vec());
            seg_bytes = rest;
        }
        if !seg_bytes.is_empty() {
            return Err(corrupt(format!(
                "{} trailing bytes after the last segment",
                seg_bytes.len()
            )));
        }
        Ok(Self {
            manifest: manifest_bytes.to_vec(),
            segments,
        })
    }

    /// Parses and validates the manifest blob.
    pub fn parse_manifest(&self) -> Result<SegmentManifest> {
        SegmentManifest::from_bytes(&self.manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::ckpt::{CkptWriter, SegmentEntry};

    fn sample() -> FleetCheckpoint {
        let seg = |tag: u64| {
            let mut w = CkptWriter::new();
            w.u64(tag);
            w.finish()
        };
        let segments = vec![seg(0), seg(1), seg(2)];
        let manifest = SegmentManifest {
            fingerprint: "test fleet".to_string(),
            meta: vec![FLEET_VERSION, 3, 0, 0],
            segments: segments.iter().map(|s| SegmentEntry::describe(s)).collect(),
        };
        FleetCheckpoint {
            manifest: manifest.to_bytes(),
            segments,
        }
    }

    #[test]
    fn wire_form_round_trips() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        assert_eq!(bytes.len(), 8 + ckpt.total_bytes());
        let back = FleetCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        back.parse_manifest().unwrap();
    }

    #[test]
    fn truncated_wire_form_is_rejected_at_every_cut() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                FleetCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} parsed"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0xAB);
        assert!(FleetCheckpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn hostile_manifest_length_cannot_over_allocate() {
        let mut bytes = (u64::MAX).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 32]);
        assert!(FleetCheckpoint::from_bytes(&bytes).is_err());
    }
}
