//! **Fig. 13 bench** — Telemanom vs Discord on the PVC ECG, including the
//! noise-sweep ablation (σ ∈ {0, 0.5}) and the Telemanom smoothing-window
//! ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsad_detectors::matrix_profile::DiscordDetector;
use tsad_detectors::telemanom::Telemanom;
use tsad_detectors::Detector;
use tsad_synth::physio::{fig13_ecg_with, PhysioConfig};

fn dataset(sigma: f64) -> tsad_core::Dataset {
    let config = PhysioConfig {
        n: 4000,
        pvc_beat: Some(18),
        ..Default::default()
    };
    fig13_ecg_with(42, sigma, &config, 1200)
}

fn bench_methods_under_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13/methods");
    group.sample_size(10);
    for sigma in [0.0, 0.5] {
        let d = dataset(sigma);
        let tele = Telemanom {
            order: 160,
            ..Telemanom::default()
        };
        let discord = DiscordDetector::euclidean(160);
        group.bench_with_input(
            BenchmarkId::new("telemanom", format!("{sigma}")),
            &d,
            |b, d| b.iter(|| black_box(tele.score(d.series(), d.train_len()).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("discord", format!("{sigma}")),
            &d,
            |b, d| b.iter(|| black_box(discord.score(d.series(), d.train_len()).unwrap())),
        );
    }
    group.finish();
}

fn bench_telemanom_smoothing_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13/telemanom-smoothing");
    group.sample_size(10);
    let d = dataset(0.25);
    for alpha in [0.02f64, 0.05, 0.2] {
        let tele = Telemanom {
            order: 160,
            smoothing_alpha: alpha,
            ..Telemanom::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &d, |b, d| {
            b.iter(|| black_box(tele.score(d.series(), d.train_len()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_methods_under_noise,
    bench_telemanom_smoothing_ablation
);
criterion_main!(benches);
