//! **Table 1 bench** — cost of the brute-force one-liner search per Yahoo
//! family, plus the per-equation ablation (how much of the search budget
//! each equation family consumes).
//!
//! Run `cargo run --release -p tsad-bench --bin repro -- table1` for the
//! full 367-series table itself; this bench times the kernel on a fixed
//! subsample so regressions in the search are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsad_detectors::oneliner::{equation, search, Equation, SearchConfig};
use tsad_synth::yahoo::{self, Family};

fn bench_search_per_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/search");
    group.sample_size(10);
    for family in Family::all() {
        let series: Vec<_> = (1..=4).map(|i| yahoo::generate(42, family, i)).collect();
        let config = SearchConfig::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{family}x4")),
            &series,
            |b, series| {
                b.iter(|| {
                    for s in series {
                        let _ = black_box(
                            search(s.dataset.values(), s.dataset.labels(), &config).unwrap(),
                        );
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_equation_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/equation-eval");
    let series = yahoo::generate(42, Family::A3, 1);
    let x = series.dataset.values().to_vec();
    for (name, eq) in [
        ("eq3", Equation::Eq3),
        ("eq4", Equation::Eq4),
        ("eq5", Equation::Eq5),
        ("eq6", Equation::Eq6),
    ] {
        let ol = equation(eq, 21, 3.0, 0.5);
        group.bench_function(name, |b| b.iter(|| black_box(ol.mask(&x).unwrap())));
    }
    group.finish();
}

criterion_group!(benches, bench_search_per_family, bench_equation_evaluation);
criterion_main!(benches);
