//! **Fig. 8 bench** — the NYC-taxi discord computation, with the
//! window-length ablation (1-day vs 2-day windows) DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsad_bench::experiments::taxi;
use tsad_detectors::matrix_profile::stomp;
use tsad_synth::numenta::{nyc_taxi, TAXI_SAMPLES_PER_DAY};

fn bench_taxi_discord_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/discord-window");
    group.sample_size(10);
    let data = nyc_taxi(42);
    let x = data.dataset.values().to_vec();
    for days in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{days}d")),
            &days,
            |b, &days| b.iter(|| black_box(stomp(&x, days * TAXI_SAMPLES_PER_DAY).unwrap())),
        );
    }
    group.finish();
}

fn bench_full_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/end-to-end");
    group.sample_size(10);
    group.bench_function("generate+profile+peaks", |b| {
        b.iter(|| black_box(taxi::fig8(42, 1).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_taxi_discord_windows, bench_full_fig8);
criterion_main!(benches);
