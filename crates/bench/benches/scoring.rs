//! Scoring-function benches — the §2.3/§4.4 scoring-disagreement ablation
//! (the same predictions scored under every protocol) plus the flaw
//! analyzers used in Figs. 4–7, 9, 10.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsad_core::{Labels, Region};
use tsad_eval::flaws::{mislabel, position};
use tsad_eval::nab::{nab_score, NabProfile};
use tsad_eval::range::{range_f1, RangeParams};
use tsad_eval::scoring::{best_f1_over_thresholds, point_adjust_f1, pointwise_f1, F1Protocol};
use tsad_synth::yahoo;

fn fixture() -> (Vec<bool>, Labels, Vec<f64>) {
    let n = 10_000;
    let labels = Labels::new(
        n,
        vec![
            Region::new(2_000, 2_050).unwrap(),
            Region::new(5_000, 5_010).unwrap(),
            Region::new(8_000, 8_200).unwrap(),
        ],
    )
    .unwrap();
    let predicted: Vec<bool> = (0..n)
        .map(|i| (2_010..2_030).contains(&i) || i == 5_005)
        .collect();
    let score: Vec<f64> = (0..n)
        .map(|i| {
            ((i * 2_654_435_761) % 1_000) as f64 / 1_000.0
                + if labels.contains(i) { 0.5 } else { 0.0 }
        })
        .collect();
    (predicted, labels, score)
}

fn bench_protocols(c: &mut Criterion) {
    let (predicted, labels, score) = fixture();
    let detections: Vec<usize> = predicted
        .iter()
        .enumerate()
        .filter(|(_, &p)| p)
        .map(|(i, _)| i)
        .collect();
    let pred_labels = Labels::from_mask(&predicted);
    let mut group = c.benchmark_group("scoring/protocols");
    group.bench_function("pointwise-f1", |b| {
        b.iter(|| black_box(pointwise_f1(&predicted, &labels).unwrap()))
    });
    group.bench_function("point-adjust-f1", |b| {
        b.iter(|| black_box(point_adjust_f1(&predicted, &labels).unwrap()))
    });
    group.bench_function("nab-standard", |b| {
        b.iter(|| black_box(nab_score(&detections, &labels, NabProfile::standard()).unwrap()))
    });
    group.bench_function("range-based-f1", |b| {
        b.iter(|| black_box(range_f1(&pred_labels, &labels, RangeParams::default()).unwrap()))
    });
    group.bench_function("best-f1-sweep", |b| {
        b.iter(|| {
            black_box(best_f1_over_thresholds(&score, &labels, F1Protocol::Pointwise).unwrap())
        })
    });
    group.finish();
}

fn bench_flaw_analyzers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring/flaw-analyzers");
    group.sample_size(10);
    let (twin_ds, _, _) = yahoo::twin_dropout(42);
    group.bench_function("twin-detector", |b| {
        b.iter(|| black_box(mislabel::find_unlabeled_twins(&twin_ds, 0.15).unwrap()))
    });
    let datasets: Vec<tsad_core::Dataset> = (1..=30)
        .map(|i| yahoo::generate(42, yahoo::Family::A1, i).dataset)
        .collect();
    group.bench_function("position-bias", |b| {
        b.iter(|| black_box(position::analyze(datasets.iter(), 0.1).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_flaw_analyzers);
criterion_main!(benches);
