//! Streaming-engine benches: per-push cost of each native port, the
//! replay driver at chunk sizes {1, 64, 4096}, and the batch adapter's
//! amortized cost for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsad_detectors::baselines::GlobalZScore;
use tsad_detectors::cusum::Cusum;
use tsad_detectors::oneliner::{equation, Equation};
use tsad_stream::{
    replay, BatchAdapter, ReplayConfig, StreamingCusum, StreamingDetector, StreamingGlobalZScore,
    StreamingLeftDiscord, StreamingMovingAvgResidual, StreamingOneLiner,
};

fn fixture(n: usize) -> (Vec<f64>, tsad_core::Labels) {
    let taxi = tsad_synth::numenta::nyc_taxi(42);
    let xs: Vec<f64> = taxi
        .dataset
        .values()
        .iter()
        .copied()
        .cycle()
        .take(n)
        .collect();
    let labels = tsad_core::Labels::new(n, vec![]).unwrap();
    (xs, labels)
}

fn bench_ports(c: &mut Criterion) {
    let (xs, _) = fixture(20_000);
    let train = xs.len() / 4;
    let mut group = c.benchmark_group("streaming/ports");
    group.bench_function("zscore", |b| {
        let mut det = StreamingGlobalZScore::new(train).unwrap();
        b.iter(|| {
            det.reset();
            black_box(det.score_stream(&xs))
        })
    });
    group.bench_function("cusum", |b| {
        let mut det = StreamingCusum::new(Cusum::default(), train).unwrap();
        b.iter(|| {
            det.reset();
            black_box(det.score_stream(&xs))
        })
    });
    group.bench_function("mavg-residual-21", |b| {
        let mut det = StreamingMovingAvgResidual::new(21).unwrap();
        b.iter(|| {
            det.reset();
            black_box(det.score_stream(&xs))
        })
    });
    group.bench_function("oneliner-eq5", |b| {
        let mut det = StreamingOneLiner::compile(&equation(Equation::Eq5, 21, 3.0, 0.1)).unwrap();
        b.iter(|| {
            det.reset();
            black_box(det.score_stream(&xs))
        })
    });
    group.bench_function("batch-adapter-zscore", |b| {
        let mut det = BatchAdapter::new(GlobalZScore, 512, 128, 128).unwrap();
        b.iter(|| {
            det.reset();
            black_box(det.score_stream(&xs))
        })
    });
    group.finish();
}

fn bench_discord(c: &mut Criterion) {
    let (xs, _) = fixture(4_000);
    let mut group = c.benchmark_group("streaming/discord");
    group.sample_size(10);
    for horizon in [256usize, 1024] {
        group.bench_function(format!("left-discord-m32-h{horizon}"), |b| {
            let mut det = StreamingLeftDiscord::new(32, Default::default(), horizon).unwrap();
            b.iter(|| {
                det.reset();
                black_box(det.score_stream(&xs))
            })
        });
    }
    group.finish();
}

fn bench_replay_chunks(c: &mut Criterion) {
    let (xs, labels) = fixture(20_000);
    let train = xs.len() / 4;
    let mut group = c.benchmark_group("streaming/replay");
    for chunk_size in [1usize, 64, 4096] {
        group.bench_function(format!("zscore-chunk{chunk_size}"), |b| {
            let mut det = StreamingGlobalZScore::new(train).unwrap();
            let cfg = ReplayConfig {
                chunk_size,
                threshold: 3.0,
                slop: 0,
            };
            b.iter(|| black_box(replay(&mut det, &xs, &labels, &cfg).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ports, bench_discord, bench_replay_chunks);
criterion_main!(benches);
