//! Archive benches — dataset generation, validation, serialization, and
//! the contest evaluation (§3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsad_archive::builder::{build_entry, Difficulty, Domain};
use tsad_archive::io::{read_dataset, write_dataset};
use tsad_archive::validate::{validate, ValidationConfig};
use tsad_detectors::baselines::GlobalZScore;
use tsad_detectors::Detector;

fn bench_entry_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive/generate");
    group.sample_size(10);
    for domain in [
        Domain::Physiology,
        Domain::Gait,
        Domain::Industry,
        Domain::Space,
        Domain::Robotics,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{domain:?}")),
            &domain,
            |b, &domain| b.iter(|| black_box(build_entry(42, domain, Difficulty::Medium))),
        );
    }
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive/validate");
    group.sample_size(10);
    let entry = build_entry(42, Domain::Space, Difficulty::Medium);
    let config = ValidationConfig::default();
    group.bench_function("space-medium", |b| {
        b.iter(|| black_box(validate(&entry.dataset, &config).unwrap()))
    });
    group.finish();
}

fn bench_io_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive/io");
    group.sample_size(10);
    let entry = build_entry(42, Domain::Robotics, Difficulty::Easy);
    let dir = std::env::temp_dir().join("tsad-bench-io");
    std::fs::create_dir_all(&dir).unwrap();
    group.bench_function("write+read", |b| {
        b.iter(|| {
            let path = write_dataset(&dir, Some(1), &entry.dataset).unwrap();
            black_box(read_dataset(&path).unwrap())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_contest_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive/contest");
    group.sample_size(10);
    let datasets: Vec<tsad_core::Dataset> = (0..4)
        .map(|k| build_entry(42 + k, Domain::Robotics, Difficulty::Medium).dataset)
        .collect();
    group.bench_function("zscore-over-4", |b| {
        b.iter(|| {
            black_box(
                tsad_archive::contest::run_contest(&GlobalZScore as &dyn Detector, &datasets)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_entry_generation,
    bench_validation,
    bench_io_roundtrip,
    bench_contest_scoring
);
criterion_main!(benches);
