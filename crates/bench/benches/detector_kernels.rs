//! Detector-kernel benches and the STOMP-vs-alternatives ablation.
//!
//! Covers the computational cores behind every figure: the matrix profile
//! (STOMP vs STAMP vs brute force — the design choice DESIGN.md calls
//! out), MASS vs the naive distance profile, HOT SAX, MERLIN/DRAG, and the
//! Telemanom pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsad_core::dist::{distance_profile_naive, mass};
use tsad_core::TimeSeries;
use tsad_detectors::hotsax::{hotsax_discord, HotSaxConfig};
use tsad_detectors::matrix_profile::{matrix_profile_naive, stamp, stomp};
use tsad_detectors::merlin::merlin;
use tsad_detectors::telemanom::Telemanom;
use tsad_detectors::Detector;

fn ecg(n: usize) -> Vec<f64> {
    let config = tsad_synth::physio::PhysioConfig {
        n,
        pvc_beat: Some(n / 320),
        ..Default::default()
    };
    tsad_synth::physio::physio(42, &config).ecg.into_values()
}

fn bench_matrix_profile_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/matrix-profile");
    group.sample_size(10);
    let x = ecg(2000);
    let m = 160;
    group.bench_function("stomp", |b| b.iter(|| black_box(stomp(&x, m).unwrap())));
    group.bench_function("stamp", |b| b.iter(|| black_box(stamp(&x, m).unwrap())));
    group.bench_function("naive", |b| {
        b.iter(|| black_box(matrix_profile_naive(&x, m).unwrap()))
    });
    group.finish();
}

fn bench_stomp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/stomp-scaling");
    group.sample_size(10);
    for n in [1000usize, 2000, 4000, 8000] {
        let x = ecg(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| black_box(stomp(x, 160).unwrap()))
        });
    }
    group.finish();
}

fn bench_mass_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/distance-profile");
    let x = ecg(4000);
    let q = &x[100..260];
    group.bench_function("mass(fft)", |b| b.iter(|| black_box(mass(q, &x).unwrap())));
    group.bench_function("naive", |b| {
        b.iter(|| black_box(distance_profile_naive(q, &x).unwrap()))
    });
    group.finish();
}

fn bench_discord_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/discord-discovery");
    group.sample_size(10);
    let x = ecg(1500);
    group.bench_function("stomp-discord", |b| {
        b.iter(|| black_box(stomp(&x, 160).unwrap().discord().unwrap()))
    });
    group.bench_function("hotsax", |b| {
        b.iter(|| black_box(hotsax_discord(&x, 160, &HotSaxConfig::default()).unwrap()))
    });
    group.bench_function("merlin(150..170)", |b| {
        b.iter(|| black_box(merlin(&x, 150, 170).unwrap()))
    });
    group.finish();
}

fn bench_telemanom(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/telemanom");
    group.sample_size(10);
    let x = ecg(6000);
    let ts = TimeSeries::new("ecg", x).unwrap();
    for order in [20usize, 80, 160] {
        let det = Telemanom {
            order,
            ..Telemanom::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(order), &det, |b, det| {
            b.iter(|| black_box(det.score(&ts, 2000).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matrix_profile_variants,
    bench_stomp_scaling,
    bench_mass_vs_naive,
    bench_discord_algorithms,
    bench_telemanom
);
criterion_main!(benches);
