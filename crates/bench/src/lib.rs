//! # tsad-bench
//!
//! The reproduction harness: every table and figure of Wu & Keogh
//! (ICDE 2022) as a runnable experiment. The `repro` binary prints each
//! experiment's table/figure; the Criterion benches under `benches/` time
//! the computational kernels per experiment.
//!
//! | experiment | module | paper artifact |
//! |---|---|---|
//! | `table1`   | [`experiments::table1`]    | Table 1 (Yahoo one-liner solvability) |
//! | `fig1`–`fig3` | [`experiments::oneliners`] | one-liner demos (OMNI, NAB, Yahoo) |
//! | `fig4`–`fig7`, `fig9` | [`experiments::mislabels`] | mislabeled ground truth |
//! | `fig8`     | [`experiments::taxi`]      | NYC-taxi discord peaks |
//! | `fig10`    | [`experiments::position`]  | run-to-failure bias |
//! | `fig11`–`fig12` | [`experiments::ucr_figs`] | archive constructions |
//! | `fig13`    | [`experiments::fig13`]     | Telemanom vs Discord under noise |
//! | `density`  | [`experiments::density`]   | §2.3 statistics |
//! | `summary`  | [`experiments::summary`]   | §2.6 baselines + scoring disagreement |
//! | `contest`  | [`experiments::contest`]   | §3 archive contest |
//! | `invariances` | [`experiments::invariances`] | §4.2 invariance table |
//! | `protocols` | [`experiments::protocols`] | §4.4 scoring-protocol disagreement |
//! | `gallery` | [`experiments::gallery`] | the supplement's one-liner gallery |
//! | `triviality` | [`experiments::triviality_all`] | §2.2 solvability beyond Yahoo |
//! | `audit` | [`experiments::audit_exp`] | §2.6 audit verdict: benchmark vs archive |
//! | `stream` | [`experiments::stream`] | streaming engine: equivalence + replay tables |
//! | `catalog` | [`experiments::catalog`] | full detector registry × Yahoo triviality grid |

pub mod alloc_track;
pub mod gate;
pub mod minijson;

pub mod experiments {
    //! One module per paper artifact; see the crate-level table.
    pub mod audit_exp;
    pub mod bench_compare;
    pub mod bench_json;
    pub mod catalog;
    pub mod contest;
    pub mod density;
    pub mod faults;
    pub mod fig13;
    pub mod fleet;
    pub mod gallery;
    pub mod ingest_bench;
    pub mod invariances;
    pub mod mislabels;
    pub mod oneliners;
    pub mod position;
    pub mod protocols;
    pub mod stream;
    pub mod summary;
    pub mod table1;
    pub mod taxi;
    pub mod triviality_all;
    pub mod ucr_figs;
    pub mod wal_bench;
}

/// The default seed used by the `repro` binary; every experiment is
/// deterministic given this value.
pub const DEFAULT_SEED: u64 = 42;
