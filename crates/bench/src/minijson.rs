//! A minimal recursive-descent JSON parser.
//!
//! `bench-compare` has to read two `BENCH_kernels.json` documents, and the
//! build is offline (no serde). The documents are small (a few KB) and
//! produced by this workspace, so a compact strict parser is enough: full
//! JSON syntax, `f64` numbers, string escapes, no trailing commas.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects keep insertion-ordered access out of scope
/// on purpose — lookups go through [`JsonValue::get`], and `BTreeMap` keeps
/// iteration deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are out of scope for these
                            // documents; map them to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; copy bytes until the next
                    // one-byte-relevant character)
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|b| b != b'"' && b != b'\\' && (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), JsonValue::Num(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::Str("a\nbA".to_string())
        );
        let doc = parse(r#"{"k": [1, 2, {"x": null}], "s": "v"}"#).unwrap();
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("v"));
        let arr = doc.get("k").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("x"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "truth",
            "1 2",
            "\"unterminated",
            "{,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn round_trips_a_bench_document() {
        // the real consumer: a trimmed BENCH_kernels.json shape
        let doc = parse(
            r#"{
  "schema": "tsad-bench-kernels/v3",
  "seed": 42,
  "kernels": [
    {
      "name": "stomp",
      "median_ns_per_iter_1_thread": 22800000,
      "allocs_per_iter": 0,
      "speedup": null,
      "obs": {"schema": "tsad-obs/v1", "counters": {"core.fft.plan_hit": 3}}
    }
  ]
}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("tsad-bench-kernels/v3")
        );
        let k = &doc.get("kernels").and_then(JsonValue::as_arr).unwrap()[0];
        assert_eq!(k.get("name").and_then(JsonValue::as_str), Some("stomp"));
        assert_eq!(
            k.get("median_ns_per_iter_1_thread")
                .and_then(JsonValue::as_u64),
            Some(22_800_000)
        );
        assert_eq!(
            k.get("allocs_per_iter").and_then(JsonValue::as_u64),
            Some(0)
        );
        assert_eq!(k.get("speedup"), Some(&JsonValue::Null));
        assert_eq!(
            k.get("obs")
                .and_then(|o| o.get("counters"))
                .and_then(|c| c.get("core.fft.plan_hit"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
    }
}
