//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--seed N] [--obs-summary] <experiment>...
//! repro all                             # everything (table1 takes ~1 min in release)
//! repro table1 fig8 fig13               # a subset
//! repro --bench-out /tmp/fresh.json bench-json
//! repro bench-compare --baseline BENCH_kernels.json --fresh /tmp/fresh.json
//! ```

use std::process::ExitCode;

use tsad_bench::experiments::*;
use tsad_bench::DEFAULT_SEED;

// Count allocations in this binary so `bench-json` can report
// `allocs_per_iter` honestly; library consumers never see this allocator.
#[global_allocator]
static ALLOC: tsad_bench::alloc_track::CountingAlloc = tsad_bench::alloc_track::CountingAlloc;

/// Wall-clock time per experiment (one sample per `run_one` call).
static EXPERIMENT_NS: tsad_obs::Span = tsad_obs::Span::new("repro.experiment_ns");

const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "density",
    "summary",
    "contest",
    "invariances",
    "protocols",
    "gallery",
    "triviality",
    "audit",
    "stream",
    "faults",
    "faults-json",
    "faults-compare",
    "catalog",
    "catalog-json",
    "catalog-compare",
    "detectors-md",
    "bench-json",
    "bench-compare",
    "fleet",
    "fleet-json",
    "fleet-compare",
    "loadgen",
    "ingest-json",
    "ingest-compare",
    "wal",
    "wal-json",
    "wal-compare",
    "write-archive",
];

fn usage() -> String {
    format!(
        "usage: repro [--seed N] [--obs-summary] [--bench-out PATH] \
         [--baseline PATH] [--fresh PATH] <experiment>...\n       \
         repro all\nexperiments: {}\n\
         --obs-summary     print the tsad-obs metric summary to stderr at exit\n\
         --bench-out PATH  where bench-json writes its document (default BENCH_kernels.json)\n\
         --baseline PATH   bench-compare: the committed baseline (default BENCH_kernels.json)\n\
         --fresh PATH      bench-compare / faults-compare: the freshly generated document (required)\n\
         --faults-out PATH      where faults-json writes its document (default BENCH_faults.json)\n\
         --faults-baseline PATH faults-compare: the committed baseline (default BENCH_faults.json)\n\
         --catalog-out PATH      where catalog-json writes its document (default BENCH_catalog.json)\n\
         --catalog-baseline PATH catalog-compare: the committed baseline (default BENCH_catalog.json)\n\
         --detectors-out PATH    where detectors-md writes the catalog doc (default DETECTORS.md)\n\
         --fleet-series N       fleet / fleet-json: series count (defaults: fleet 1000000, fleet-json 100000)\n\
         --fleet-out PATH       where fleet-json writes its document (default BENCH_fleet.json)\n\
         --fleet-baseline PATH  fleet-compare: the committed baseline (default BENCH_fleet.json)\n\
         --ingest-out PATH      where ingest-json writes its document (default BENCH_ingest.json)\n\
         --ingest-baseline PATH ingest-compare: the committed baseline (default BENCH_ingest.json)\n\
         --wal-out PATH         where wal-json writes its document (default BENCH_wal.json)\n\
         --wal-baseline PATH    wal-compare: the committed baseline (default BENCH_wal.json)\n\
         --addr HOST:PORT  loadgen: drive an already-running server (default: self-hosted on 127.0.0.1:0)\n\
         --series N        loadgen: series-id space (default 10000)\n\
         --rps N           loadgen: target requests/second, 0 = unpaced (default 0)\n\
         --conns C         loadgen: concurrent client connections (default 4)\n\
         --transport T     loadgen: http or tcp (default http)\n\
         --requests N      loadgen: total requests, 0 = run for --duration-ms (default 10000)\n\
         --duration-ms N   loadgen: run length when --requests 0 (default 5000)\n\
         --batch-points N  loadgen: points per request (default 64)",
        EXPERIMENTS.join(", ")
    )
}

/// Parsed command-line options (everything but the experiment list).
struct Options {
    seed: u64,
    obs_summary: bool,
    bench_out: String,
    baseline: String,
    fresh: Option<String>,
    faults_out: String,
    faults_baseline: String,
    catalog_out: String,
    catalog_baseline: String,
    detectors_out: String,
    fleet_series: Option<u64>,
    fleet_out: String,
    fleet_baseline: String,
    ingest_out: String,
    ingest_baseline: String,
    wal_out: String,
    wal_baseline: String,
    loadgen: ingest_bench::LoadGenCli,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            seed: DEFAULT_SEED,
            obs_summary: false,
            bench_out: "BENCH_kernels.json".to_string(),
            baseline: "BENCH_kernels.json".to_string(),
            fresh: None,
            faults_out: "BENCH_faults.json".to_string(),
            faults_baseline: "BENCH_faults.json".to_string(),
            catalog_out: "BENCH_catalog.json".to_string(),
            catalog_baseline: "BENCH_catalog.json".to_string(),
            detectors_out: "DETECTORS.md".to_string(),
            fleet_series: None,
            fleet_out: "BENCH_fleet.json".to_string(),
            fleet_baseline: "BENCH_fleet.json".to_string(),
            ingest_out: "BENCH_ingest.json".to_string(),
            ingest_baseline: "BENCH_ingest.json".to_string(),
            wal_out: "BENCH_wal.json".to_string(),
            wal_baseline: "BENCH_wal.json".to_string(),
            loadgen: ingest_bench::LoadGenCli::default(),
        }
    }
}

fn run_one(name: &str, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let seed = opts.seed;
    let _timer = EXPERIMENT_NS.start();
    println!("════════ {name} (seed {seed}) ════════");
    match name {
        "table1" => {
            let t = table1::run(seed, None)?;
            println!("Table 1 — brute-force one-liner results on the simulated Yahoo benchmark");
            println!("(paper: A1 65.7%, A2 97.0%, A3 98.0%, A4 77.0%, total 86.1%)");
            println!("{}", t.render());
        }
        "fig1" => print!("{}", oneliners::render_fig1(&oneliners::fig1(seed)?)),
        "fig2" => print!("{}", oneliners::render_fig2(&oneliners::fig2(seed)?)),
        "fig3" => print!("{}", oneliners::render_fig3(&oneliners::fig3(seed)?)),
        "fig4" => {
            let f = mislabels::fig4(seed)?;
            println!(
                "Fig. 4 — constant-region mislabel: value at A ({}) = {:.4}, at B ({}) = {:.4}",
                f.a, f.value_a, f.b, f.value_b
            );
            println!(
                "  A labeled: {}, B labeled: {} — yet nothing changed from A to B",
                f.dataset.labels().contains(f.a),
                f.dataset.labels().contains(f.b)
            );
            println!(
                "  twin analyzer surfaces B as a suspected false negative: {}",
                f.twin_found
            );
        }
        "fig5" => {
            let f = mislabels::fig5(seed)?;
            println!(
                "Fig. 5 — twin dropouts: C at {} (labeled), D at {} (unlabeled)",
                f.c, f.d
            );
            match f.twin_distance {
                Some(d) => println!("  analyzer finds D with z-norm distance {d:.4} to C"),
                None => println!("  analyzer FAILED to find D"),
            }
        }
        "fig6" => print!("{}", mislabels::render_fig6(&mislabels::fig6(seed)?)),
        "fig7" => {
            let f = mislabels::fig7(seed)?;
            println!("Fig. 7 — over-precise toggling labels:");
            println!(
                "  given labels: {} regions toggling after the change point",
                f.dataset.labels().region_count()
            );
            println!(
                "  oracle (whole changed suffix) F1 vs toggling labels: {:.3}; vs proposed contiguous label: {:.3}",
                f.oracle_vs_toggling, f.oracle_vs_proposed
            );
        }
        "fig8" => print!("{}", taxi::render(&taxi::fig8(seed, 1)?)),
        "fig9" => {
            let f = mislabels::fig9(seed)?;
            println!(
                "Fig. 9 — frozen telemetry: {} frozen regions at {:?}, 1 labeled",
                f.frozen.len(),
                f.frozen.iter().map(|r| r.start).collect::<Vec<_>>()
            );
            println!(
                "  twin analyzer surfaces {} of 2 unlabeled freezes as suspected false negatives",
                f.unlabeled_freezes_found
            );
        }
        "fig10" => print!("{}", position::render(&position::fig10(seed, None)?)),
        "fig11" | "fig12" => {
            let f11 = ucr_figs::fig11(seed)?;
            let f12 = ucr_figs::fig12(seed)?;
            print!("{}", ucr_figs::render(&f11, &f12));
        }
        "fig13" => {
            let f = fig13::run(seed, &[0.0, 0.25, 0.5, 0.75, 1.0])?;
            print!("{}", fig13::render(&f));
        }
        "density" => print!("{}", density::render(&density::run(seed)?)),
        "summary" => print!("{}", summary::render(&summary::run(seed, 25)?)),
        "contest" => print!("{}", contest::render(&contest::run(seed, 30)?)),
        "invariances" => print!("{}", invariances::render(&invariances::run(seed, 12_000)?)),
        "protocols" => print!("{}", protocols::render(&protocols::run(seed)?)),
        "gallery" => print!("{}", gallery::render(&gallery::run(seed)?)),
        "triviality" => print!(
            "{}",
            triviality_all::render(&triviality_all::run(seed, 38)?)
        ),
        "audit" => print!("{}", audit_exp::render(&audit_exp::run(seed, 10, 21)?)),
        "stream" => print!("{}", stream::render(&stream::run(seed)?)),
        "faults" => print!("{}", faults::render(&faults::run(seed)?)),
        "faults-json" => {
            let exp = faults::run(seed)?;
            let json = faults::render_json(&exp);
            std::fs::write(&opts.faults_out, &json)?;
            println!("wrote {} ({} rows)", opts.faults_out, exp.rows.len());
        }
        "faults-compare" => {
            let fresh = opts
                .fresh
                .as_deref()
                .ok_or_else(|| format!("faults-compare needs --fresh PATH\n{}", usage()))?;
            match faults::run_files(&opts.faults_baseline, fresh) {
                Ok(summary) => print!("{summary}"),
                Err(failures) => {
                    print!("{failures}");
                    return Err("faults-compare gate failed".into());
                }
            }
        }
        "catalog" => print!(
            "{}",
            catalog::render(&catalog::run(seed, &catalog::CatalogConfig::ci())?)
        ),
        "catalog-json" => {
            let exp = catalog::run(seed, &catalog::CatalogConfig::ci())?;
            let json = catalog::render_json(&exp);
            std::fs::write(&opts.catalog_out, &json)?;
            println!("wrote {} ({} rows)", opts.catalog_out, exp.rows.len());
        }
        "catalog-compare" => {
            let fresh = opts
                .fresh
                .as_deref()
                .ok_or_else(|| format!("catalog-compare needs --fresh PATH\n{}", usage()))?;
            match catalog::run_files(&opts.catalog_baseline, fresh) {
                Ok(table) => print!("{table}"),
                Err(table) => {
                    print!("{table}");
                    return Err("catalog-compare gate failed".into());
                }
            }
        }
        "detectors-md" => {
            let md = catalog::detectors_md();
            std::fs::write(&opts.detectors_out, &md)?;
            println!("wrote {} ({} bytes)", opts.detectors_out, md.len());
        }
        "bench-json" => {
            let doc = bench_json::run(seed, &bench_json::BenchConfig::default())?;
            let json = bench_json::render(&doc);
            std::fs::write(&opts.bench_out, &json)?;
            println!("wrote {} ({} kernels):", opts.bench_out, doc.kernels.len());
            print!("{json}");
        }
        "fleet" => {
            // the acceptance-scale demo: a million resident detectors
            let mut cfg = fleet::FleetBenchConfig::default();
            if let Some(n) = opts.fleet_series {
                cfg.series = n;
            }
            print!("{}", fleet::render(&fleet::run(seed, &cfg)?));
        }
        "fleet-json" => {
            // CI scale by default, so the committed baseline regenerates
            // quickly on any machine
            let mut cfg = fleet::FleetBenchConfig::ci();
            if let Some(n) = opts.fleet_series {
                cfg.series = n;
            }
            let b = fleet::run(seed, &cfg)?;
            let json = fleet::render_json(&b);
            std::fs::write(&opts.fleet_out, &json)?;
            println!("wrote {} ({} series):", opts.fleet_out, b.cfg.series);
            print!("{json}");
        }
        "fleet-compare" => {
            let fresh = opts
                .fresh
                .as_deref()
                .ok_or_else(|| format!("fleet-compare needs --fresh PATH\n{}", usage()))?;
            match bench_compare::run_fleet_files(&opts.fleet_baseline, fresh) {
                Ok(table) => print!("{table}"),
                Err(table) => {
                    print!("{table}");
                    return Err("fleet-compare gate failed".into());
                }
            }
        }
        "loadgen" => match ingest_bench::run_loadgen(&opts.loadgen, seed) {
            Ok(report) => print!("{report}"),
            Err(e) => return Err(e.into()),
        },
        "ingest-json" => {
            let b = ingest_bench::run(seed, &ingest_bench::IngestBenchConfig::ci())?;
            let json = ingest_bench::render_json(&b);
            std::fs::write(&opts.ingest_out, &json)?;
            println!(
                "wrote {} ({} stages, {} transports):",
                opts.ingest_out,
                b.stages.len(),
                b.loadgen.len()
            );
            print!("{}", ingest_bench::render(&b));
        }
        "ingest-compare" => {
            let fresh = opts
                .fresh
                .as_deref()
                .ok_or_else(|| format!("ingest-compare needs --fresh PATH\n{}", usage()))?;
            match bench_compare::run_ingest_files(&opts.ingest_baseline, fresh) {
                Ok(table) => print!("{table}"),
                Err(table) => {
                    print!("{table}");
                    return Err("ingest-compare gate failed".into());
                }
            }
        }
        "wal" => print!(
            "{}",
            wal_bench::render(&wal_bench::run(seed, &wal_bench::WalBenchConfig::ci())?)
        ),
        "wal-json" => {
            let b = wal_bench::run(seed, &wal_bench::WalBenchConfig::ci())?;
            let json = wal_bench::render_json(&b);
            std::fs::write(&opts.wal_out, &json)?;
            println!("wrote {} ({} policies):", opts.wal_out, b.rows.len());
            print!("{}", wal_bench::render(&b));
        }
        "wal-compare" => {
            let fresh = opts
                .fresh
                .as_deref()
                .ok_or_else(|| format!("wal-compare needs --fresh PATH\n{}", usage()))?;
            match bench_compare::run_wal_files(&opts.wal_baseline, fresh) {
                Ok(table) => print!("{table}"),
                Err(table) => {
                    print!("{table}");
                    return Err("wal-compare gate failed".into());
                }
            }
        }
        "bench-compare" => {
            let fresh = opts
                .fresh
                .as_deref()
                .ok_or_else(|| format!("bench-compare needs --fresh PATH\n{}", usage()))?;
            match bench_compare::run_files(&opts.baseline, fresh) {
                Ok(table) => print!("{table}"),
                Err(table) => {
                    print!("{table}");
                    return Err("bench-compare gate failed".into());
                }
            }
        }
        "write-archive" => {
            let dir = std::env::temp_dir().join("tsad-ucr-archive");
            let rows = tsad_archive::manifest::build_and_write(&dir, seed, 30)?;
            println!(
                "wrote {} datasets + MANIFEST.tsv + README.md to {}",
                rows.len(),
                dir.display()
            );
        }
        other => {
            eprintln!("unknown experiment {other:?}\n{}", usage());
            return Err("unknown experiment".into());
        }
    }
    println!();
    Ok(())
}

/// Removes `--flag VALUE` from `args`, returning the value if present.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn parse_options(args: &mut Vec<String>) -> Result<Options, String> {
    let mut opts = Options::default();
    if let Some(v) = take_value_flag(args, "--seed")? {
        opts.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
    }
    if let Some(pos) = args.iter().position(|a| a == "--obs-summary") {
        args.remove(pos);
        opts.obs_summary = true;
    }
    if let Some(v) = take_value_flag(args, "--bench-out")? {
        opts.bench_out = v;
    }
    if let Some(v) = take_value_flag(args, "--baseline")? {
        opts.baseline = v;
    }
    opts.fresh = take_value_flag(args, "--fresh")?;
    if let Some(v) = take_value_flag(args, "--faults-out")? {
        opts.faults_out = v;
    }
    if let Some(v) = take_value_flag(args, "--faults-baseline")? {
        opts.faults_baseline = v;
    }
    if let Some(v) = take_value_flag(args, "--catalog-out")? {
        opts.catalog_out = v;
    }
    if let Some(v) = take_value_flag(args, "--catalog-baseline")? {
        opts.catalog_baseline = v;
    }
    if let Some(v) = take_value_flag(args, "--detectors-out")? {
        opts.detectors_out = v;
    }
    if let Some(v) = take_value_flag(args, "--fleet-series")? {
        opts.fleet_series = Some(v.parse().map_err(|e| format!("bad fleet series: {e}"))?);
    }
    if let Some(v) = take_value_flag(args, "--fleet-out")? {
        opts.fleet_out = v;
    }
    if let Some(v) = take_value_flag(args, "--fleet-baseline")? {
        opts.fleet_baseline = v;
    }
    if let Some(v) = take_value_flag(args, "--ingest-out")? {
        opts.ingest_out = v;
    }
    if let Some(v) = take_value_flag(args, "--ingest-baseline")? {
        opts.ingest_baseline = v;
    }
    if let Some(v) = take_value_flag(args, "--wal-out")? {
        opts.wal_out = v;
    }
    if let Some(v) = take_value_flag(args, "--wal-baseline")? {
        opts.wal_baseline = v;
    }
    opts.loadgen.addr = take_value_flag(args, "--addr")?;
    if let Some(v) = take_value_flag(args, "--series")? {
        opts.loadgen.cfg.series = v.parse().map_err(|e| format!("bad series: {e}"))?;
    }
    if let Some(v) = take_value_flag(args, "--rps")? {
        opts.loadgen.cfg.rps = v.parse().map_err(|e| format!("bad rps: {e}"))?;
    }
    if let Some(v) = take_value_flag(args, "--conns")? {
        opts.loadgen.cfg.conns = v.parse().map_err(|e| format!("bad conns: {e}"))?;
    }
    if let Some(v) = take_value_flag(args, "--transport")? {
        opts.loadgen.cfg.transport = v.parse()?;
    }
    if let Some(v) = take_value_flag(args, "--requests")? {
        opts.loadgen.cfg.requests = v.parse().map_err(|e| format!("bad requests: {e}"))?;
    }
    if let Some(v) = take_value_flag(args, "--duration-ms")? {
        let ms: u64 = v.parse().map_err(|e| format!("bad duration: {e}"))?;
        opts.loadgen.cfg.duration = std::time::Duration::from_millis(ms);
    }
    if let Some(v) = take_value_flag(args, "--batch-points")? {
        opts.loadgen.cfg.batch_points = v.parse().map_err(|e| format!("bad batch points: {e}"))?;
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&mut args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let list: Vec<String> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS
            .iter()
            .filter(|e| {
                !matches!(
                    **e,
                    "fig12"
                        | "write-archive"
                        | "bench-json"
                        | "bench-compare"
                        | "faults-json"
                        | "faults-compare"
                        | "catalog-json"
                        | "catalog-compare"
                        | "detectors-md"
                        | "fleet"
                        | "fleet-json"
                        | "fleet-compare"
                        | "loadgen"
                        | "ingest-json"
                        | "ingest-compare"
                        | "wal"
                        | "wal-json"
                        | "wal-compare"
                )
            })
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };
    for name in &list {
        if let Err(e) = run_one(name, &opts) {
            eprintln!("experiment {name} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if opts.obs_summary {
        eprint!("{}", tsad_obs::render_summary(&tsad_obs::snapshot()));
    }
    ExitCode::SUCCESS
}
