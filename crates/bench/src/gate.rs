//! Shared machinery for the `*-compare` perf-regression gates.
//!
//! Three committed baselines are gated in CI — `BENCH_kernels.json`,
//! `BENCH_fleet.json`, and `BENCH_ingest.json` — and all of them need the
//! same ingredients: a schema-equality check with a regenerate hint, a
//! relative wall-time gate with a noise margin, an exact-zero allocation
//! gate, and a row/failure/note report rendered as a delta table. This
//! module holds those ingredients once so each comparator in
//! [`crate::experiments::bench_compare`] and the ingest gate stays a thin
//! description of *what* it gates, not a third copy of *how*.

use std::fmt::Write as _;

use crate::minijson::{parse, JsonValue};

/// Fresh wall time may be at most this multiple of the baseline. Generous
/// enough to absorb CI-runner noise, tight enough to catch real (2×-style)
/// regressions.
pub const MAX_WALL_RATIO: f64 = 1.30;

/// One measurement's baseline-vs-fresh numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Row name (a kernel, the fleet round, an ingest stage, …).
    pub name: String,
    /// Baseline wall number in ns (`None` if absent there).
    pub base_ns: Option<u64>,
    /// Fresh wall number in ns (`None` if absent there).
    pub fresh_ns: Option<u64>,
    /// `fresh / base` when both sides are present and the base is nonzero.
    pub ratio: Option<f64>,
    /// Baseline allocation count (`None` = not measured).
    pub base_allocs: Option<u64>,
    /// Fresh allocation count (`None` = not measured).
    pub fresh_allocs: Option<u64>,
}

/// The comparison outcome: every row plus the failed checks (empty =
/// the gate passes).
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Per-measurement rows, baseline order first.
    pub rows: Vec<CompareRow>,
    /// Human-readable failures; the gate passes iff this is empty.
    pub failures: Vec<String>,
    /// Non-fatal observations (new rows, unmeasured columns, dispatch
    /// drift).
    pub notes: Vec<String>,
}

impl CompareReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Parses a rendered document and returns its `"schema"` string, erroring
/// unless it starts with `prefix` (catches feeding the wrong BENCH file to
/// the wrong comparator).
pub fn extract_schema(doc_name: &str, doc: &JsonValue, prefix: &str) -> Result<String, String> {
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{doc_name}: missing \"schema\""))?;
    if !schema.starts_with(prefix) {
        return Err(format!("{doc_name}: unexpected schema {schema:?}"));
    }
    Ok(schema.to_string())
}

/// Parses both documents and demands the *same* schema string. A drift
/// (e.g. a committed v1 baseline against a binary that now emits v2) must
/// surface as this message — whose fix is always `regen_cmd` — rather than
/// as a confusing missing-field failure downstream.
pub fn parse_same_schema(
    baseline: &str,
    fresh: &str,
    prefix: &str,
    regen_cmd: &str,
) -> Result<(JsonValue, JsonValue), String> {
    let base = parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let new = parse(fresh).map_err(|e| format!("fresh: {e}"))?;
    let base_schema = extract_schema("baseline", &base, prefix)?;
    let new_schema = extract_schema("fresh", &new, prefix)?;
    if base_schema != new_schema {
        return Err(format!(
            "schema mismatch: committed baseline is \"{base_schema}\" but the fresh run \
             produced \"{new_schema}\" — regenerate the committed document with `{regen_cmd}`"
        ));
    }
    Ok((base, new))
}

/// The relative wall-time gate: computes `fresh / base`, records a failure
/// beyond `max_ratio`, a note when either side is missing. Returns the
/// ratio for the caller's [`CompareRow`].
pub fn gate_wall_ratio(
    report: &mut CompareReport,
    label: &str,
    base_ns: Option<u64>,
    fresh_ns: Option<u64>,
    max_ratio: f64,
) -> Option<f64> {
    match (base_ns, fresh_ns) {
        (Some(b), Some(f)) if b > 0 => {
            let ratio = f as f64 / b as f64;
            if ratio > max_ratio {
                report.failures.push(format!(
                    "{label}: wall-time regression {ratio:.2}x (fresh {f} ns vs \
                     baseline {b} ns, limit {max_ratio:.2}x)"
                ));
            }
            Some(ratio)
        }
        _ => {
            report
                .notes
                .push(format!("{label}: wall time not comparable"));
            None
        }
    }
}

/// The exact-zero allocation gate: any nonzero fresh count fails, and a
/// measurement that silently disappears (baseline has it, fresh does not)
/// fails too — allocation counts are exact and portable, so there is no
/// noise margin at all. `field` names the JSON field in the message.
pub fn gate_exact_zero_allocs(
    report: &mut CompareReport,
    label: &str,
    field: &str,
    base: Option<u64>,
    fresh: Option<u64>,
) {
    match fresh {
        Some(0) => {}
        Some(n) => report
            .failures
            .push(format!("{label}: {field} is {n} (contract: 0)")),
        None if base.is_some() => report.failures.push(format!(
            "{label}: {field} not measured in fresh run (baseline has it)"
        )),
        None => report
            .notes
            .push(format!("{label}: {field} not measured on either side")),
    }
}

/// Notes (never fails) a SIMD dispatch difference between the two sides: a
/// different machine or a `TSAD_SIMD` override legitimately changes it, but
/// the wall-time ratio then compares different code paths — say so.
pub fn note_dispatch_drift(
    report: &mut CompareReport,
    label: &str,
    base_dispatch: Option<&str>,
    base_lanes: Option<u64>,
    fresh_dispatch: Option<&str>,
    fresh_lanes: Option<u64>,
) {
    if base_dispatch != fresh_dispatch || base_lanes != fresh_lanes {
        let lanes = |w: Option<u64>| w.map_or_else(|| "-".into(), |w| w.to_string());
        report.notes.push(format!(
            "{label}: SIMD dispatch differs — baseline {} ({} lanes) vs fresh {} ({} lanes)",
            base_dispatch.unwrap_or("-"),
            lanes(base_lanes),
            fresh_dispatch.unwrap_or("-"),
            lanes(fresh_lanes),
        ));
    }
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.to_string())
}

/// Renders the per-row delta table plus the failure/note lists.
pub fn render(report: &CompareReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>14} {:>14} {:>7} {:>12} {:>12}",
        "kernel", "base ns/iter", "fresh ns/iter", "ratio", "base allocs", "fresh allocs"
    );
    for r in &report.rows {
        let _ = writeln!(
            out,
            "{:<32} {:>14} {:>14} {:>7} {:>12} {:>12}",
            r.name,
            fmt_opt(r.base_ns),
            fmt_opt(r.fresh_ns),
            r.ratio
                .map_or_else(|| "-".to_string(), |x| format!("{x:.2}x")),
            fmt_opt(r.base_allocs),
            fmt_opt(r.fresh_allocs),
        );
    }
    for note in &report.notes {
        let _ = writeln!(out, "note: {note}");
    }
    if report.passed() {
        let _ = writeln!(
            out,
            "PASS: no wall-time regression beyond {MAX_WALL_RATIO:.2}x, allocation contracts hold"
        );
    } else {
        for failure in &report.failures {
            let _ = writeln!(out, "FAIL: {failure}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_ratio_gate_fails_beyond_margin_and_returns_the_ratio() {
        let mut report = CompareReport::default();
        let r = gate_wall_ratio(&mut report, "x", Some(100), Some(120), MAX_WALL_RATIO);
        assert!((r.unwrap() - 1.2).abs() < 1e-12);
        assert!(report.passed());
        let r = gate_wall_ratio(&mut report, "x", Some(100), Some(200), MAX_WALL_RATIO);
        assert!((r.unwrap() - 2.0).abs() < 1e-12);
        assert!(!report.passed());
        assert!(report.failures[0].contains("2.00x"));
    }

    #[test]
    fn missing_wall_numbers_note_instead_of_failing() {
        let mut report = CompareReport::default();
        assert_eq!(
            gate_wall_ratio(&mut report, "x", None, Some(1), MAX_WALL_RATIO),
            None
        );
        assert_eq!(
            gate_wall_ratio(&mut report, "x", Some(0), Some(1), MAX_WALL_RATIO),
            None
        );
        assert!(report.passed());
        assert_eq!(report.notes.len(), 2);
    }

    #[test]
    fn alloc_gate_is_exact_and_catches_vanished_measurements() {
        let mut report = CompareReport::default();
        gate_exact_zero_allocs(&mut report, "x", "allocs", Some(0), Some(0));
        assert!(report.passed());
        gate_exact_zero_allocs(&mut report, "x", "allocs", Some(0), Some(1));
        gate_exact_zero_allocs(&mut report, "y", "allocs", Some(0), None);
        assert_eq!(report.failures.len(), 2);
        let mut report = CompareReport::default();
        gate_exact_zero_allocs(&mut report, "z", "allocs", None, None);
        assert!(report.passed());
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn schema_equality_error_names_both_versions_and_the_fix() {
        let v1 = r#"{"schema": "tsad-bench-thing/v1"}"#;
        let v2 = r#"{"schema": "tsad-bench-thing/v2"}"#;
        let err =
            parse_same_schema(v1, v2, "tsad-bench-thing/", "repro -- thing-json").unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("tsad-bench-thing/v1"));
        assert!(err.contains("tsad-bench-thing/v2"));
        assert!(err.contains("regenerate"));
        assert!(err.contains("repro -- thing-json"));
        assert!(parse_same_schema(v1, v1, "tsad-bench-thing/", "cmd").is_ok());
        assert!(parse_same_schema(v1, v1, "tsad-bench-other/", "cmd").is_err());
    }

    #[test]
    fn dispatch_drift_is_a_note_not_a_failure() {
        let mut report = CompareReport::default();
        note_dispatch_drift(
            &mut report,
            "x",
            Some("avx2"),
            Some(4),
            Some("avx2"),
            Some(4),
        );
        assert!(report.notes.is_empty());
        note_dispatch_drift(
            &mut report,
            "x",
            Some("avx2"),
            Some(4),
            Some("scalar"),
            Some(1),
        );
        assert!(report.passed());
        assert!(report.notes[0].contains("avx2") && report.notes[0].contains("scalar"));
    }
}
