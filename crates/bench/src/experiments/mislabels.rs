//! **Figures 4–7 and 9** — the mislabeled-ground-truth gallery (§2.4),
//! run through the automated mislabel analyzers.

use tsad_core::{Dataset, Labels, Region, Result};
use tsad_eval::features::{feature_z_score, window_features, WindowFeatures};
use tsad_eval::flaws::mislabel::{find_unlabeled_twins, find_unremarkable_labels};
use tsad_eval::report::{fmt, TextTable};
use tsad_eval::scoring::{point_adjust_f1, tolerance_f1};
use tsad_synth::{nasa, yahoo};

/// Fig. 4 — the constant-region mislabel.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The dataset.
    pub dataset: Dataset,
    /// Index A (labeled true positive).
    pub a: usize,
    /// Index B (identical behavior, would be scored false positive).
    pub b: usize,
    /// Values at A and B (identical).
    pub value_a: f64,
    /// Value at B.
    pub value_b: f64,
    /// The analyzer's suspected-twin windows covering B.
    pub twin_found: bool,
}

/// Runs Fig. 4.
pub fn fig4(seed: u64) -> Result<Fig4> {
    let (dataset, a, b) = yahoo::mislabeled_constant(seed);
    let twins = find_unlabeled_twins(&dataset, 0.1)?;
    let value_a = dataset.values()[a];
    let value_b = dataset.values()[b];
    // adjacent matches collapse to one representative, so check that some
    // twin window sits on the same constant value as B
    let twin_found = twins
        .iter()
        .any(|t| dataset.values()[t.twin_start] == value_b);
    Ok(Fig4 {
        dataset,
        a,
        b,
        value_a,
        value_b,
        twin_found,
    })
}

/// Fig. 5 — the twin-dropout mislabel.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// The dataset (C labeled, D not).
    pub dataset: Dataset,
    /// Labeled dropout index.
    pub c: usize,
    /// Unlabeled twin dropout index.
    pub d: usize,
    /// Z-normalized distance between the two dropout windows.
    pub twin_distance: Option<f64>,
}

/// Runs Fig. 5.
pub fn fig5(seed: u64) -> Result<Fig5> {
    let (dataset, c, d) = yahoo::twin_dropout(seed);
    let twins = find_unlabeled_twins(&dataset, 0.15)?;
    let twin_distance = twins
        .iter()
        .filter(|t| (t.twin_start..t.twin_start + 16).contains(&d))
        .map(|t| t.distance)
        .next();
    Ok(Fig5 {
        dataset,
        c,
        d,
        twin_distance,
    })
}

/// Fig. 6 — the unremarkable labeled region `F`.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// The dataset (E and F labeled).
    pub dataset: Dataset,
    /// Features of the labeled region F.
    pub f_features: WindowFeatures,
    /// Max |z-score| of F's features vs the other rounded bottoms.
    pub max_feature_z: f64,
    /// The analyzer flags F as unremarkable.
    pub f_flagged: bool,
    /// The analyzer does *not* flag the genuine dropout E.
    pub e_not_flagged: bool,
}

/// Runs Fig. 6.
pub fn fig6(seed: u64) -> Result<Fig6> {
    let (dataset, e, f, bottoms) = yahoo::rounded_bottoms(seed);
    let width = 20usize;
    let x = dataset.values();
    let f_features = window_features(
        x,
        Region {
            start: f,
            end: f + width,
        },
    )?;
    // feature table for all other bottoms
    let mut per_feature: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for &b in bottoms.iter().filter(|&&b| b != f && b + width <= x.len()) {
        let wf = window_features(
            x,
            Region {
                start: b,
                end: b + width,
            },
        )?;
        per_feature[0].push(wf.mean);
        per_feature[1].push(wf.min);
        per_feature[2].push(wf.max);
        per_feature[3].push(wf.variance);
        per_feature[4].push(wf.complexity);
        per_feature[5].push(wf.nn_distance);
    }
    let f_vals = [
        f_features.mean,
        f_features.min,
        f_features.max,
        f_features.variance,
        f_features.complexity,
        f_features.nn_distance,
    ];
    let max_feature_z = f_vals
        .iter()
        .zip(&per_feature)
        .map(|(&v, pop)| feature_z_score(v, pop).map(f64::abs))
        .collect::<Result<Vec<f64>>>()?
        .into_iter()
        .fold(0.0f64, f64::max);

    let unremarkable = find_unremarkable_labels(&dataset, 1.5)?;
    let f_flagged = unremarkable.iter().any(|u| u.labeled.contains(f));
    let e_not_flagged = !unremarkable.iter().any(|u| u.labeled.contains(e));
    Ok(Fig6 {
        dataset,
        f_features,
        max_feature_z,
        f_flagged,
        e_not_flagged,
    })
}

/// Fig. 7 — over-precise toggling labels.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// The dataset with the rapidly toggling given labels.
    pub dataset: Dataset,
    /// The proposed contiguous labels.
    pub proposed: Labels,
    /// Point-adjust F1 of an oracle that flags the whole changed suffix,
    /// scored against the *toggling* labels (penalized despite being
    /// semantically right).
    pub oracle_vs_toggling: f64,
    /// The same oracle scored against the proposed labels (perfect).
    pub oracle_vs_proposed: f64,
}

/// Runs Fig. 7.
pub fn fig7(seed: u64) -> Result<Fig7> {
    let (dataset, proposed) = yahoo::toggling_labels(seed);
    // the oracle prediction: everything from the change point on
    let oracle = proposed.to_mask();
    let oracle_vs_toggling = tolerance_f1(&oracle, dataset.labels(), 0)?;
    let oracle_vs_proposed = point_adjust_f1(&oracle, &proposed)?;
    Ok(Fig7 {
        dataset,
        proposed,
        oracle_vs_toggling,
        oracle_vs_proposed,
    })
}

/// Fig. 9 — the thrice-frozen NASA channel with one label.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// The dataset.
    pub dataset: Dataset,
    /// All three frozen regions.
    pub frozen: Vec<Region>,
    /// Twins found by the analyzer for the labeled freeze (should cover
    /// the two unlabeled freezes).
    pub unlabeled_freezes_found: usize,
}

/// Runs Fig. 9.
pub fn fig9(seed: u64) -> Result<Fig9> {
    let (dataset, frozen) = nasa::frozen_signal(seed);
    let twins = find_unlabeled_twins(&dataset, 0.2)?;
    let unlabeled_freezes_found = frozen[1..]
        .iter()
        .filter(|f| {
            twins.iter().any(|t| {
                let twin = Region {
                    start: t.twin_start,
                    end: t.twin_start + f.len(),
                };
                twin.overlaps(f)
            })
        })
        .count();
    Ok(Fig9 {
        dataset,
        frozen,
        unlabeled_freezes_found,
    })
}

/// Renders the Fig. 6 feature table.
pub fn render_fig6(fig: &Fig6) -> String {
    let mut t = TextTable::new(vec!["feature", "region F", "max |z| vs other bottoms"]);
    t.row(vec![
        "mean".to_string(),
        fmt(fig.f_features.mean),
        String::new(),
    ]);
    t.row(vec![
        "min".to_string(),
        fmt(fig.f_features.min),
        String::new(),
    ]);
    t.row(vec![
        "max".to_string(),
        fmt(fig.f_features.max),
        String::new(),
    ]);
    t.row(vec![
        "variance".to_string(),
        fmt(fig.f_features.variance),
        String::new(),
    ]);
    t.row(vec![
        "complexity".to_string(),
        fmt(fig.f_features.complexity),
        String::new(),
    ]);
    t.row(vec![
        "1-NN dist".to_string(),
        fmt(fig.f_features.nn_distance),
        String::new(),
    ]);
    t.row(vec![
        "(all)".to_string(),
        String::new(),
        fmt(fig.max_feature_z),
    ]);
    format!(
        "Fig. 6 — label F is statistically unremarkable:\n{}flagged as mislabel: {}, genuine dropout E spared: {}\n",
        t.render(),
        fig.f_flagged,
        fig.e_not_flagged
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_a_and_b_identical_and_twin_found() {
        let f = fig4(42).unwrap();
        assert_eq!(f.value_a, f.value_b, "nothing changed from A to B");
        assert!(f.dataset.labels().contains(f.a));
        assert!(!f.dataset.labels().contains(f.b));
        assert!(f.twin_found, "the analyzer must surface the B region");
    }

    #[test]
    fn fig5_twin_distance_is_tiny() {
        let f = fig5(42).unwrap();
        let d = f.twin_distance.expect("twin D must be found");
        assert!(
            d < 0.15 * (2.0 * 16.0f64).sqrt(),
            "near-identical dropouts: {d}"
        );
    }

    #[test]
    fn fig6_f_is_unremarkable() {
        let f = fig6(42).unwrap();
        assert!(
            f.max_feature_z < 3.0,
            "F's features sit inside the population: {}",
            f.max_feature_z
        );
        assert!(f.f_flagged, "analyzer must flag F");
        assert!(
            f.e_not_flagged,
            "analyzer must not flag the genuine dropout E"
        );
        assert!(render_fig6(&f).contains("1-NN dist"));
    }

    #[test]
    fn fig7_oracle_is_punished_by_toggling_labels() {
        let f = fig7(42).unwrap();
        assert!(
            f.oracle_vs_toggling < 0.8,
            "the right answer scores poorly against toggling labels: {}",
            f.oracle_vs_toggling
        );
        assert!(
            f.oracle_vs_proposed > 0.99,
            "and perfectly against the proposed labels: {}",
            f.oracle_vs_proposed
        );
    }

    #[test]
    fn fig9_finds_both_unlabeled_freezes() {
        let f = fig9(42).unwrap();
        assert_eq!(f.frozen.len(), 3);
        assert_eq!(
            f.unlabeled_freezes_found, 2,
            "both unlabeled freezes surfaced"
        );
    }
}
