//! **§4.2** — the invariance table: which transformations each detector's
//! anomaly peak survives, probed on the Fig. 13 ECG.

use tsad_core::Result;
use tsad_detectors::baselines::{GlobalZScore, MovingAvgResidual};
use tsad_detectors::matrix_profile::DiscordDetector;
use tsad_detectors::telemanom::Telemanom;
use tsad_detectors::Detector;
use tsad_eval::invariance::{probe_invariances, standard_transforms, Transform};
use tsad_eval::report::TextTable;
use tsad_synth::physio::{fig13_ecg_with, PhysioConfig};

/// One detector's row: per-transform invariance verdicts.
#[derive(Debug, Clone)]
pub struct InvarianceRow {
    /// Detector name.
    pub detector: &'static str,
    /// `(transform, survived)` pairs; `None` if the detector failed the
    /// untransformed baseline.
    pub outcomes: Option<Vec<(Transform, bool)>>,
}

/// The invariance study.
#[derive(Debug, Clone)]
pub struct InvarianceStudy {
    /// The probed transforms, in column order.
    pub transforms: Vec<Transform>,
    /// One row per detector.
    pub rows: Vec<InvarianceRow>,
}

/// Runs the study on a `n`-sample ECG (use ~4000 for debug-mode tests,
/// 12 000 for the full figure).
pub fn run(seed: u64, n: usize) -> Result<InvarianceStudy> {
    let config = PhysioConfig {
        n,
        pvc_beat: Some(n / 320),
        ..PhysioConfig::default()
    };
    let dataset = fig13_ecg_with(seed, 0.0, &config, n / 4);
    let transforms = standard_transforms();
    let detectors: Vec<(&'static str, Box<dyn Detector>)> = vec![
        (
            "discord (euclidean)",
            Box::new(DiscordDetector::euclidean(160)),
        ),
        (
            "discord (z-normalized)",
            Box::new(DiscordDetector::new(160)),
        ),
        (
            "telemanom (AR+NDT)",
            Box::new(Telemanom {
                order: 160,
                ..Telemanom::default()
            }),
        ),
        ("global z-score", Box::new(GlobalZScore)),
        (
            "moving-average residual",
            Box::new(MovingAvgResidual::new(21)),
        ),
    ];
    let mut rows = Vec::new();
    for (name, det) in &detectors {
        let outcomes = match probe_invariances(det.as_ref(), &dataset, &transforms, seed) {
            Ok(o) => Some(o.into_iter().map(|x| (x.transform, x.invariant)).collect()),
            Err(_) => None, // failed the untransformed baseline
        };
        rows.push(InvarianceRow {
            detector: name,
            outcomes,
        });
    }
    Ok(InvarianceStudy { transforms, rows })
}

/// Renders the study as the suggested "communicate invariances" table.
pub fn render(study: &InvarianceStudy) -> String {
    let mut header = vec!["detector".to_string()];
    header.extend(study.transforms.iter().map(|t| t.to_string()));
    let mut t = TextTable::new(header);
    for row in &study.rows {
        let mut cells = vec![row.detector.to_string()];
        match &row.outcomes {
            Some(outcomes) => {
                cells.extend(outcomes.iter().map(|(_, ok)| {
                    if *ok {
                        "invariant".to_string()
                    } else {
                        "BREAKS".to_string()
                    }
                }));
            }
            None => cells.extend(std::iter::repeat_n(
                "(fails clean)".to_string(),
                study.transforms.len(),
            )),
        }
        t.row(cells);
    }
    format!("§4.2 — invariance table on the PVC ECG:\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariance_table_has_expected_shape() {
        let s = run(42, 4000).unwrap();
        assert_eq!(s.rows.len(), 5);
        let by_name = |needle: &str| {
            s.rows
                .iter()
                .find(|r| r.detector.contains(needle))
                .expect("present")
        };
        // the z-normalized discord is amplitude/offset invariant by design
        let zn = by_name("z-normalized")
            .outcomes
            .as_ref()
            .expect("baseline holds");
        assert!(zn[0].1, "amplitude scaling");
        assert!(zn[1].1, "offset");
        // the euclidean discord survives offset (distance unchanged) and
        // amplitude scaling (all distances scale together)
        let eu = by_name("euclidean")
            .outcomes
            .as_ref()
            .expect("baseline holds");
        assert!(eu[0].1 && eu[1].1);
        let text = render(&s);
        assert!(text.contains("invariant"), "{text}");
    }
}
