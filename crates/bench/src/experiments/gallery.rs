//! **Supporting-page gallery** — the paper's web supplement \[17\] shows "a
//! gallery of dozens of additional examples from Yahoo, Numenta, NASA and
//! OMNI that yield to one line solutions". This experiment regenerates
//! that gallery in ASCII: one exemplar per family with its solving
//! one-liner printed beneath the plot.

use tsad_core::{Dataset, Result};
use tsad_detectors::oneliner::{search, SearchConfig};
use tsad_eval::report::ascii_plot;
use tsad_synth::{nasa, numenta, omni, yahoo};

/// One gallery entry.
#[derive(Debug, Clone)]
pub struct GalleryEntry {
    /// Which benchmark it simulates.
    pub benchmark: &'static str,
    /// The dataset.
    pub dataset: Dataset,
    /// The solving one-liner, rendered; `None` = not trivially solvable.
    pub one_liner: Option<String>,
}

/// Builds the gallery: one representative per benchmark family.
pub fn run(seed: u64) -> Result<Vec<GalleryEntry>> {
    let config = SearchConfig::default();
    let mut entries = Vec::new();

    let mut push = |benchmark: &'static str, dataset: Dataset| -> Result<()> {
        let one_liner =
            search(dataset.values(), dataset.labels(), &config)?.map(|s| s.one_liner.to_string());
        entries.push(GalleryEntry {
            benchmark,
            dataset,
            one_liner,
        });
        Ok(())
    };

    push(
        "Yahoo A1",
        yahoo::generate(seed, yahoo::Family::A1, 2).dataset,
    )?;
    push(
        "Yahoo A2",
        yahoo::generate(seed, yahoo::Family::A2, 50).dataset,
    )?;
    push(
        "Yahoo A3",
        yahoo::generate(seed, yahoo::Family::A3, 10).dataset,
    )?;
    push(
        "Yahoo A4",
        yahoo::generate(seed, yahoo::Family::A4, 60).dataset,
    )?;
    push("Numenta artificial", numenta::art_daily_jumpsup(seed))?;
    push("Numenta spike density", numenta::art_spike_density(seed))?;
    push("NASA magnitude jump", nasa::magnitude_jump(seed))?;
    // OMNI dim 19 (Fig. 1's channel)
    let machine = omni::smd_machine(seed);
    let dim19 = machine.series.dimension(omni::FIG1_DIM)?;
    let d19 = Dataset::unsupervised(dim19, machine.labels.clone())?;
    push("OMNI/SMD dim 19", d19)?;
    // and one deliberately hard exemplar so the gallery is honest
    push(
        "Yahoo A1 (hard tail)",
        yahoo::generate(seed, yahoo::Family::A1, 60).dataset,
    )?;
    Ok(entries)
}

/// Renders the gallery.
pub fn render(entries: &[GalleryEntry]) -> String {
    let mut out = String::from("Gallery — one exemplar per benchmark, with its one-liner:\n\n");
    for e in entries {
        out.push_str(&format!("── {} ({}) ──\n", e.benchmark, e.dataset.name()));
        out.push_str(&ascii_plot(
            e.dataset.values(),
            Some(&e.dataset.labels().to_mask()),
            100,
            7,
        ));
        match &e.one_liner {
            Some(ol) => out.push_str(&format!("   solved by: {ol}\n\n")),
            None => out.push_str("   NOT solvable by the one-liner family\n\n"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallery_solves_the_easy_families_not_the_hard_tail() {
        let g = run(42).unwrap();
        assert_eq!(g.len(), 9);
        let by_name = |needle: &str| {
            g.iter()
                .find(|e| e.benchmark.contains(needle))
                .expect("present")
        };
        for easy in ["Yahoo A2", "Yahoo A3", "NASA"] {
            assert!(
                by_name(easy).one_liner.is_some(),
                "{easy} should be trivially solvable"
            );
        }
        assert!(by_name("hard tail").one_liner.is_none());
        let text = render(&g);
        assert!(text.contains("solved by:"));
        assert!(text.contains("NOT solvable"));
    }
}
