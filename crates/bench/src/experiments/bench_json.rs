//! `bench-json` — machine-readable kernel baselines.
//!
//! Times the four parallelized kernels (STOMP, MERLIN, the sliding dot
//! product, and a streaming replay) at 1 thread and at [`PAR_THREADS`]
//! threads via `tsad_parallel::with_threads`, and renders the medians as a
//! small, dependency-free JSON document (`BENCH_kernels.json`). Alongside
//! each median the document records `allocs_per_iter`: the number of heap
//! allocations one warm single-threaded iteration performs, counted by the
//! [`crate::alloc_track`] allocator when the host binary installs it (the
//! `repro` driver does; under `cargo test` the field is honestly `null`).
//!
//! The timings are a *baseline*, not a pass/fail gate — absolute numbers
//! are machine-specific. The allocation counts, in contrast, are exact and
//! portable, so CI does gate on `allocs_per_iter == 0` for the three
//! kernels with allocation-free contracts (`sliding_dot_product`, `stomp`,
//! `merlin`); the wall-clock columns are gated *relatively* by the
//! `bench-compare` subcommand (fresh run vs the committed baseline).
//!
//! Since schema v3 every kernel entry embeds a per-kernel `tsad-obs`
//! snapshot (`"obs"`, schema `tsad-obs/v1`): FFT plan-cache hit rates,
//! STOMP band timings, MERLIN prune counts, worker utilization, replay
//! throughput. The registry is reset before each kernel, so the block
//! describes that kernel alone.
//!
//! Schema v4 adds the SIMD dispatch the run resolved to: every kernel
//! entry carries `"dispatch"` (the backend name — `avx2`, `sse2`, `neon`,
//! or `scalar`) and `"lane_width"` (f64 lanes per vector). Both come from
//! `tsad_core::simd::current()` at measure time, so a `TSAD_SIMD=0` run is
//! self-describing in the committed baseline.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use tsad_core::error::Result;
use tsad_core::fft::sliding_dot_product_into;
use tsad_core::Labels;
use tsad_detectors::matrix_profile::{
    stomp_metric_with, MatrixProfile, ProfileMetric, StompWorkspace,
};
use tsad_detectors::merlin::merlin_into;
use tsad_parallel::with_threads;
use tsad_stream::{replay, ReplayConfig, StreamingLeftDiscord};

use crate::alloc_track::{count_allocs, counting_allocator_active};

/// Thread count used for the parallel column.
pub const PAR_THREADS: usize = 4;

/// Sizes for one timing run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Series length for STOMP.
    pub stomp_n: usize,
    /// STOMP window.
    pub stomp_m: usize,
    /// Series length for MERLIN.
    pub merlin_n: usize,
    /// MERLIN length range (inclusive).
    pub merlin_lengths: (usize, usize),
    /// Series length for the sliding dot product.
    pub sdp_n: usize,
    /// Query length for the sliding dot product (past the FFT crossover).
    pub sdp_m: usize,
    /// Series length for the streaming replay.
    pub replay_n: usize,
    /// Left-discord window for the streaming replay.
    pub replay_m: usize,
    /// Timed repetitions per kernel per thread count (median reported).
    pub iters: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            stomp_n: 4096,
            stomp_m: 128,
            merlin_n: 800,
            merlin_lengths: (24, 40),
            sdp_n: 65_536,
            sdp_m: 512,
            replay_n: 6000,
            replay_m: 32,
            iters: 5,
        }
    }
}

impl BenchConfig {
    /// A tiny configuration for debug-mode tests.
    pub fn smoke() -> Self {
        Self {
            stomp_n: 300,
            stomp_m: 16,
            merlin_n: 200,
            merlin_lengths: (8, 10),
            sdp_n: 2048,
            sdp_m: 256,
            replay_n: 400,
            replay_m: 8,
            iters: 2,
        }
    }
}

/// Median wall-clock per iteration for one kernel at both thread counts,
/// plus the warm-iteration allocation count.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel label.
    pub name: &'static str,
    /// Human-readable size note.
    pub params: String,
    /// Timed repetitions per thread count.
    pub iters: usize,
    /// Median ns/iter at 1 thread.
    pub median_ns_1t: u128,
    /// Median ns/iter at [`PAR_THREADS`] threads.
    pub median_ns_nt: u128,
    /// Heap allocations in one warm single-threaded iteration, or `None`
    /// when the counting allocator is not installed in this process.
    pub allocs_per_iter: Option<u64>,
    /// SIMD backend the run dispatched to (`avx2`, `sse2`, `neon`, or
    /// `scalar`), resolved at measure time via `tsad_core::simd::current()`.
    pub dispatch: &'static str,
    /// f64 lanes per vector on that backend (1 for scalar).
    pub lane_width: usize,
    /// Observability snapshot covering this kernel's warm-up, allocation
    /// count, and both timing columns (the registry is reset before each
    /// kernel, so the snapshot is per-kernel, not cumulative).
    pub obs: tsad_obs::Snapshot,
}

impl KernelTiming {
    /// `1-thread / N-thread` wall-clock ratio (> 1 means the pool helped),
    /// or `None` when the host cannot actually run [`PAR_THREADS`] workers
    /// concurrently — on a single-CPU host the ratio measures scheduler
    /// thrash, not parallel speedup, so the document refuses to report one.
    pub fn speedup(&self, host_threads: usize) -> Option<f64> {
        if host_threads <= 1 || self.median_ns_nt == 0 {
            None
        } else {
            Some(self.median_ns_1t as f64 / self.median_ns_nt as f64)
        }
    }
}

/// The full baseline document.
#[derive(Debug, Clone)]
pub struct BenchJson {
    /// Seed the inputs were generated from.
    pub seed: u64,
    /// Thread count of the parallel column.
    pub threads: usize,
    /// Host parallelism the override competed against.
    pub host_threads: usize,
    /// Per-kernel medians.
    pub kernels: Vec<KernelTiming>,
}

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (i as f64 * 0.12).sin() + 0.2 * noise
        })
        .collect()
}

fn median_ns(iters: usize, f: &mut dyn FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_at_threads(iters: usize, threads: usize, f: &mut dyn FnMut()) -> u128 {
    with_threads(threads, || median_ns(iters, f))
}

/// Warms the kernel once at 1 effective thread (populating plan caches,
/// thread-local scratch, and pooled band buffers on *this* thread), counts
/// the allocations of a second warm iteration, then times both thread
/// columns. The count is taken single-threaded because the per-call scoped
/// worker spawns at higher thread counts allocate by construction.
///
/// The global metric registry is reset on entry and snapshotted on exit,
/// so each kernel's `obs` block covers exactly its own activity.
fn measure(name: &'static str, params: String, iters: usize, f: &mut dyn FnMut()) -> KernelTiming {
    tsad_obs::reset_all();
    let allocs_per_iter = with_threads(1, || {
        f();
        counting_allocator_active().then(|| count_allocs(&mut *f))
    });
    let median_ns_1t = time_at_threads(iters, 1, f);
    let median_ns_nt = time_at_threads(iters, PAR_THREADS, f);
    let backend = tsad_core::simd::current();
    KernelTiming {
        name,
        params,
        iters,
        median_ns_1t,
        median_ns_nt,
        allocs_per_iter,
        dispatch: backend.name(),
        lane_width: backend.lane_width(),
        obs: tsad_obs::snapshot(),
    }
}

/// Serializes [`run`] calls within one process: the observability registry
/// is global, so two concurrent runs (e.g. unit tests on the default
/// multi-threaded test runner) would reset and snapshot through each other.
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// Runs the kernel panel and collects the timings.
pub fn run(seed: u64, cfg: &BenchConfig) -> Result<BenchJson> {
    let _serialize = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut kernels = Vec::new();

    // STOMP through the caller-owned-buffer entry point: the workspace and
    // output profile persist across iterations, so warm iterations are
    // allocation-free.
    let x = series(cfg.stomp_n, seed);
    let m = cfg.stomp_m;
    let mut ws = StompWorkspace::default();
    let mut mp = MatrixProfile {
        profile: Vec::new(),
        index: Vec::new(),
        window: m,
    };
    kernels.push(measure(
        "stomp",
        format!("n={}, m={}", cfg.stomp_n, cfg.stomp_m),
        cfg.iters,
        &mut || {
            stomp_metric_with(&x, m, ProfileMetric::ZNormalized, &mut ws, &mut mp).expect("stomp");
        },
    ));

    // MERLIN through the caller-owned-buffer entry point: the output list
    // persists across iterations (cleared, not dropped), the per-chunk
    // partials come from a scratch pool, and the DRAG buffers are
    // thread-local — so warm iterations are allocation-free.
    let x = series(cfg.merlin_n, seed + 1);
    let (lo, hi) = cfg.merlin_lengths;
    let mut discords = Vec::new();
    kernels.push(measure(
        "merlin",
        format!("n={}, lengths={lo}..={hi}", cfg.merlin_n),
        cfg.iters,
        &mut || {
            discords.clear();
            merlin_into(&x, lo, hi, &mut discords).expect("merlin");
        },
    ));

    // The sliding dot product into a persistent output buffer; the FFT
    // scratch lives in plan-cache-adjacent thread-locals.
    let x = series(cfg.sdp_n, seed + 2);
    let q = series(cfg.sdp_m, seed + 3);
    let mut dots = Vec::new();
    kernels.push(measure(
        "sliding_dot_product",
        format!("n={}, m={}", cfg.sdp_n, cfg.sdp_m),
        cfg.iters,
        &mut || {
            sliding_dot_product_into(&q, &x, &mut dots).expect("sliding_dot_product");
        },
    ));

    let x = series(cfg.replay_n, seed + 4);
    let labels = Labels::new(x.len(), vec![])?;
    let replay_cfg = ReplayConfig {
        chunk_size: 64,
        threshold: f64::INFINITY,
        slop: 0,
    };
    kernels.push(measure(
        "streaming_replay_left_discord",
        format!("n={}, m={}", cfg.replay_n, cfg.replay_m),
        cfg.iters,
        &mut || {
            let mut det = StreamingLeftDiscord::new(cfg.replay_m, Default::default(), x.len())
                .expect("detector");
            replay(&mut det, &x, &labels, &replay_cfg).expect("replay");
        },
    ));

    Ok(BenchJson {
        seed,
        threads: PAR_THREADS,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        kernels,
    })
}

/// Renders the document as pretty-printed JSON (handwritten — the build is
/// offline, so no serde).
pub fn render(doc: &BenchJson) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"tsad-bench-kernels/v4\",");
    let _ = writeln!(out, "  \"seed\": {},", doc.seed);
    let _ = writeln!(out, "  \"threads\": {},", doc.threads);
    let _ = writeln!(out, "  \"host_threads\": {},", doc.host_threads);
    out.push_str("  \"kernels\": [\n");
    for (i, k) in doc.kernels.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", k.name);
        let _ = writeln!(out, "      \"params\": \"{}\",", k.params);
        let _ = writeln!(out, "      \"iters\": {},", k.iters);
        let _ = writeln!(
            out,
            "      \"median_ns_per_iter_1_thread\": {},",
            k.median_ns_1t
        );
        let _ = writeln!(
            out,
            "      \"median_ns_per_iter_{}_threads\": {},",
            doc.threads, k.median_ns_nt
        );
        match k.allocs_per_iter {
            Some(n) => {
                let _ = writeln!(out, "      \"allocs_per_iter\": {n},");
            }
            None => out.push_str("      \"allocs_per_iter\": null,\n"),
        }
        match k.speedup(doc.host_threads) {
            Some(s) => {
                let _ = writeln!(out, "      \"speedup\": {s:.3},");
            }
            None => out.push_str("      \"speedup\": null,\n"),
        }
        let _ = writeln!(out, "      \"dispatch\": \"{}\",", k.dispatch);
        let _ = writeln!(out, "      \"lane_width\": {},", k.lane_width);
        let _ = writeln!(out, "      \"obs\": {}", tsad_obs::render_json(&k.obs, 6));
        out.push_str(if i + 1 < doc.kernels.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_wellformed_json() {
        let doc = run(42, &BenchConfig::smoke()).unwrap();
        assert_eq!(doc.kernels.len(), 4);
        let json = render(&doc);
        // structural sanity without a JSON parser: balanced braces/brackets
        // and every expected field present
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for field in [
            "\"schema\": \"tsad-bench-kernels/v4\"",
            "\"obs\"",
            "\"tsad-obs/v1\"",
            "\"seed\"",
            "\"threads\"",
            "\"host_threads\"",
            "\"kernels\"",
            "\"median_ns_per_iter_1_thread\"",
            "\"allocs_per_iter\"",
            "\"speedup\"",
            "\"dispatch\"",
            "\"lane_width\"",
            "\"stomp\"",
            "\"merlin\"",
            "\"sliding_dot_product\"",
            "\"streaming_replay_left_discord\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // no trailing commas (the classic handwritten-JSON bug)
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n    }"));
    }

    #[test]
    fn smoke_run_embeds_nonzero_obs_snapshots() {
        let doc = run(42, &BenchConfig::smoke()).unwrap();
        let kernel = |name: &str| {
            doc.kernels
                .iter()
                .find(|k| k.name == name)
                .unwrap_or_else(|| panic!("kernel {name} missing"))
        };
        // the sliding dot product is past the FFT crossover: warm
        // iterations hit the cached rfft plan
        let sdp = kernel("sliding_dot_product");
        assert!(
            sdp.obs.counter("core.fft.plan_hit").unwrap_or(0) > 0,
            "sdp snapshot lacks FFT plan hits: {:?}",
            sdp.obs
        );
        assert!(sdp.obs.counter("core.fft.scratch_reuse").unwrap_or(0) > 0);
        // every STOMP band fill is timed, on workers and the caller alike
        let stomp = kernel("stomp");
        let band = stomp
            .obs
            .histogram("detectors.stomp.band_ns")
            .expect("stomp snapshot lacks band timings");
        assert!(band.count > 0 && band.sum > 0);
        assert!(
            stomp
                .obs
                .histogram("parallel.worker.busy_ns")
                .is_some_and(|h| h.count > 0),
            "stomp snapshot lacks worker utilization: {:?}",
            stomp.obs
        );
        // MERLIN's phase 1 prunes almost everything on a smooth series
        let merlin = kernel("merlin");
        assert!(
            merlin
                .obs
                .counter("detectors.merlin.drag_passes")
                .unwrap_or(0)
                > 0
        );
        assert!(
            merlin
                .obs
                .counter("detectors.merlin.windows_pruned")
                .unwrap_or(0)
                > 0
        );
        // the replay kernel reports throughput and per-chunk latency
        let rep = kernel("streaming_replay_left_discord");
        assert!(rep.obs.counter("stream.replay.points").unwrap_or(0) > 0);
        assert!(rep
            .obs
            .histogram("stream.replay.chunk_push_ns")
            .is_some_and(|h| h.count > 0));
    }

    #[test]
    fn forced_scalar_reports_scalar_dispatch() {
        use tsad_core::simd::{self, Backend};
        let doc = simd::with_backend(Backend::Scalar, || run(11, &BenchConfig::smoke()).unwrap());
        for k in &doc.kernels {
            assert_eq!(k.dispatch, "scalar", "{}", k.name);
            assert_eq!(k.lane_width, 1, "{}", k.name);
        }
        let json = render(&doc);
        assert!(json.contains("\"dispatch\": \"scalar\""));
        assert!(json.contains("\"lane_width\": 1"));
    }

    #[test]
    fn dispatch_matches_the_resolved_backend() {
        let doc = run(13, &BenchConfig::smoke()).unwrap();
        let current = tsad_core::simd::current();
        for k in &doc.kernels {
            assert_eq!(k.dispatch, current.name(), "{}", k.name);
            assert_eq!(k.lane_width, current.lane_width(), "{}", k.name);
        }
    }

    #[test]
    fn timings_are_positive() {
        let doc = run(7, &BenchConfig::smoke()).unwrap();
        for k in doc.kernels {
            assert!(k.median_ns_1t > 0, "{}", k.name);
            assert!(k.median_ns_nt > 0, "{}", k.name);
        }
    }

    #[test]
    fn allocs_are_null_without_the_counting_allocator() {
        // the library test binary runs under the plain system allocator, so
        // the document must say "not measured" rather than a bogus zero
        let doc = run(3, &BenchConfig::smoke()).unwrap();
        for k in &doc.kernels {
            assert_eq!(k.allocs_per_iter, None, "{}", k.name);
        }
        assert!(render(&doc).contains("\"allocs_per_iter\": null"));
    }

    #[test]
    fn speedup_is_null_on_single_cpu_hosts() {
        let mut doc = run(5, &BenchConfig::smoke()).unwrap();
        doc.host_threads = 1;
        assert!(doc.kernels.iter().all(|k| k.speedup(1).is_none()));
        let json = render(&doc);
        assert!(json.contains("\"speedup\": null"));
        assert!(!json.contains("\"speedup\": 0."));

        doc.host_threads = 8;
        for k in &doc.kernels {
            let s = k.speedup(doc.host_threads);
            assert!(s.is_some() && s.unwrap() > 0.0, "{}", k.name);
        }
        assert!(!render(&doc).contains("\"speedup\": null"));
    }
}
