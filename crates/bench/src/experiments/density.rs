//! **§2.3** — unrealistic-density statistics across the simulated
//! benchmark families.

use tsad_core::Result;
use tsad_eval::flaws::density::{analyze, DensityCriteria, DensityReport};
use tsad_eval::report::{fmt, TextTable};
use tsad_synth::{nasa, numenta, yahoo};

/// One exhibit in the density study.
#[derive(Debug, Clone)]
pub struct DensityExhibit {
    /// What this exemplar models.
    pub label: String,
    /// The measured report.
    pub report: DensityReport,
    /// Whether it trips the default criteria.
    pub flawed: bool,
}

/// The density study: the three §2.3 flavors plus healthy references.
#[derive(Debug, Clone)]
pub struct DensityStudy {
    /// All exhibits.
    pub exhibits: Vec<DensityExhibit>,
}

/// Runs the density study.
pub fn run(seed: u64) -> Result<DensityStudy> {
    let criteria = DensityCriteria::default();
    let mut exhibits = Vec::new();
    let mut push = |label: &str, dataset: &tsad_core::Dataset| {
        let report = analyze(dataset);
        let flawed = report.is_flawed(&criteria);
        exhibits.push(DensityExhibit {
            label: label.to_string(),
            report,
            flawed,
        });
    };
    // flavor 1: >half the test data one contiguous anomaly (NASA D-2/M-1/M-2)
    push(
        "NASA D-2-like (60% contiguous)",
        &nasa::dense_anomaly(seed, 0.6),
    );
    push(
        "NASA M-1-like (40% contiguous)",
        &nasa::dense_anomaly(seed + 1, 0.4),
    );
    // flavor 2: many separate anomalies (SMD machine-2-5: 21)
    push(
        "SMD machine-2-5-like (21 regions)",
        &nasa::crowded_anomalies(seed, 21),
    );
    // flavor 3: anomalies sandwiching a single normal point (Yahoo A1-Real1)
    push("Yahoo A1-Real1-like (1-point gap)", &yahoo::a1_real1(seed));
    // healthy references
    push(
        "Numenta art (single region)",
        &numenta::art_spike_density(seed),
    );
    let healthy = yahoo::generate(seed, yahoo::Family::A3, 1).dataset;
    push("Yahoo A3 exemplar", &healthy);
    Ok(DensityStudy { exhibits })
}

/// Renders the study.
pub fn render(study: &DensityStudy) -> String {
    let mut t = TextTable::new(vec![
        "exemplar",
        "test density",
        "#regions",
        "longest/test",
        "min gap",
        "flawed?",
    ]);
    for e in &study.exhibits {
        t.row(vec![
            e.label.clone(),
            fmt(e.report.test_density),
            e.report.region_count.to_string(),
            fmt(e.report.longest_region_fraction),
            e.report.min_gap.map_or("-".to_string(), |g| g.to_string()),
            if e.flawed {
                "YES".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    format!("§2.3 — anomaly-density statistics:\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flawed_exemplars_are_flagged_healthy_are_not() {
        let s = run(42).unwrap();
        let by_label = |needle: &str| {
            s.exhibits
                .iter()
                .find(|e| e.label.contains(needle))
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        assert!(by_label("D-2").flawed);
        assert!(by_label("machine-2-5").flawed);
        assert!(by_label("1-point gap").flawed);
        assert!(!by_label("art").flawed);
        assert!(by_label("D-2").report.test_density > 0.5);
        assert_eq!(by_label("machine-2-5").report.region_count, 21);
        assert_eq!(by_label("1-point gap").report.min_gap, Some(1));
        let text = render(&s);
        assert!(text.contains("YES") && text.contains("no"));
    }
}
