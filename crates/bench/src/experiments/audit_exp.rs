//! **§2.6 verdict** — the one-call benchmark audit over a mixed simulated
//! benchmark vs. a slice of the UCR-style archive: the flawed benchmark
//! fails the audit, the archive passes.

use tsad_archive::builder::build_archive;
use tsad_core::{Dataset, Result};
use tsad_eval::flaws::audit::{audit, AuditConfig, BenchmarkAudit};
use tsad_eval::report::{fmt, TextTable};
use tsad_synth::yahoo::{self, Family};

/// The two audits side by side.
#[derive(Debug, Clone)]
pub struct AuditStudy {
    /// Audit of the simulated Yahoo benchmark slice.
    pub yahoo: BenchmarkAudit,
    /// Audit of the archive slice.
    pub archive: BenchmarkAudit,
}

/// Runs both audits. `per_family` Yahoo series per family, `archive_count`
/// archive entries.
pub fn run(seed: u64, per_family: usize, archive_count: usize) -> Result<AuditStudy> {
    let config = AuditConfig::default();
    let mut yahoo_sets: Vec<Dataset> = Vec::new();
    for family in Family::all() {
        for index in 1..=per_family.min(family.size()) {
            yahoo_sets.push(yahoo::generate(seed, family, index).dataset);
        }
    }
    let yahoo_audit = audit(yahoo_sets.iter(), &config)?;

    let entries = build_archive(seed, archive_count).map_err(|e| match e {
        tsad_archive::ArchiveError::Core(c) => c,
        // IO/validation failures cannot occur for an in-memory build; map
        // them to a parameter error rather than panicking
        _ => tsad_core::CoreError::BadParameter {
            name: "archive_count",
            value: archive_count as f64,
            expected: "a buildable archive",
        },
    })?;
    let archive_sets: Vec<Dataset> = entries.into_iter().map(|e| e.dataset).collect();
    let archive_audit = audit(archive_sets.iter(), &config)?;
    Ok(AuditStudy {
        yahoo: yahoo_audit,
        archive: archive_audit,
    })
}

/// Renders the side-by-side verdict.
pub fn render(study: &AuditStudy) -> String {
    let mut t = TextTable::new(vec![
        "collection",
        "trivial",
        "any flaw",
        "position bias p",
        "naive-last hits",
        "suitable for comparison?",
    ]);
    for (name, a) in [
        ("simulated Yahoo", &study.yahoo),
        ("UCR-style archive", &study.archive),
    ] {
        t.row(vec![
            name.to_string(),
            fmt(a.trivial_fraction()),
            fmt(a.flawed_fraction()),
            format!("{:.1e}", a.position_bias.p_value),
            fmt(a.position_bias.naive_last_hit_rate),
            if a.suitable_for_comparison(0.01) {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    format!(
        "§2.6 — the audit verdict, flawed benchmark vs. the archive:\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yahoo_fails_archive_passes() {
        let s = run(42, 8, 10).unwrap();
        assert!(
            !s.yahoo.suitable_for_comparison(0.01),
            "{:?}",
            s.yahoo.position_bias
        );
        assert!(
            s.yahoo.trivial_fraction() > 0.5,
            "{}",
            s.yahoo.trivial_fraction()
        );
        assert!(
            s.archive.trivial_fraction() < s.yahoo.trivial_fraction(),
            "archive {} vs yahoo {}",
            s.archive.trivial_fraction(),
            s.yahoo.trivial_fraction()
        );
        // the archive gives the naive end detector nothing, unlike Yahoo
        assert!(
            s.archive.position_bias.naive_last_hit_rate < s.yahoo.position_bias.naive_last_hit_rate,
            "archive {:?} vs yahoo {:?}",
            s.archive.position_bias.naive_last_hit_rate,
            s.yahoo.position_bias.naive_last_hit_rate
        );
        let text = render(&s);
        assert!(text.contains("suitable for comparison"));
    }
}
