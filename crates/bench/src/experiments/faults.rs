//! **faults** — the robustness experiment: the streaming detector panel
//! replayed under every standard fault-injection profile.
//!
//! For each synthetic family × [`tsad_faults::standard_profiles`] profile ×
//! streaming detector, the series is corrupted deterministically
//! (`tsad-faults`, seeded), replayed through the detector wrapped in
//! [`Sanitized`] with [`NanPolicy::ImputeLast`] (the deployment-style
//! choice: scores stay finite across gaps), and scored against the clean
//! labels — injection is length-preserving, so label alignment survives:
//!
//! * **UCR hit** — does the argmax of the score stream land inside the
//!   (slop-widened) labeled region? The `clean` profile rows are the
//!   control; comparing a fault row against its clean row gives the
//!   UCR-score delta the paper-style robustness table reports.
//! * **False alarms** — alarms (score > per-detector threshold) outside
//!   every labeled window, plus the total alarm count.
//! * **Quarantine** — points the sanitizer replaced (NaN/∞ reaching the
//!   detector), cross-checked against the injection report.
//!
//! Every number here is a deterministic function of the seed — no wall
//! clock — so `BENCH_faults.json` is byte-stable and CI gates on *exact*
//! row equality ([`compare`]): a vanished profile, detector, or flipped
//! outcome fails the `fault-matrix` job.

use std::fmt::Write as _;

use tsad_core::{Labels, Result};
use tsad_detectors::cusum::Cusum;
use tsad_detectors::oneliner::{equation, Equation};
use tsad_eval::report::TextTable;
use tsad_eval::streaming::delays_from_scores;
use tsad_eval::ucr::ucr_correct;
use tsad_faults::{standard_profiles, FaultProfile};
use tsad_stream::{
    NanPolicy, Sanitized, StreamingCusum, StreamingDetector, StreamingGlobalZScore,
    StreamingMovingAvgResidual, StreamingOneLiner,
};

use crate::minijson::{parse, JsonValue};

/// UCR-style slop appended to each labeled region when scoring alarms.
const SLOP: usize = 100;

/// One (family × profile × detector) measurement. All integer/bool fields:
/// the document must be byte-stable for exact gating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRow {
    /// Fault profile name (`clean` is the control).
    pub profile: String,
    /// Series family.
    pub dataset: String,
    /// Detector `name()` (the `Sanitized` wrapper is part of the name).
    pub detector: String,
    /// Points the injector modified.
    pub injected_points: usize,
    /// Points the sanitizer replaced (non-finite reaching the detector).
    pub quarantined: u64,
    /// Argmax of the score stream lands in the labeled (slop-widened)
    /// region. For multi-region labels: at least one region detected.
    pub ucr_hit: bool,
    /// Regions with at least one alarm in their window.
    pub detected: usize,
    /// Labeled regions.
    pub regions: usize,
    /// Alarms outside every region window.
    pub false_alarms: usize,
    /// Total alarms raised.
    pub total_alarms: usize,
}

/// Everything the experiment produces.
#[derive(Debug, Clone)]
pub struct FaultsExperiment {
    /// Seed the injections and series were generated from.
    pub seed: u64,
    /// One row per family × profile × detector.
    pub rows: Vec<FaultRow>,
}

fn families(seed: u64) -> Vec<(&'static str, Vec<f64>, Labels)> {
    let yahoo = tsad_synth::yahoo::generate(seed, tsad_synth::yahoo::Family::A1, 3);
    let (nasa, _) = tsad_synth::nasa::frozen_signal(seed);
    let taxi = tsad_synth::numenta::nyc_taxi(seed);
    vec![
        (
            "yahoo-a1",
            yahoo.dataset.values().to_vec(),
            yahoo.dataset.labels().clone(),
        ),
        ("nasa-frozen", nasa.values().to_vec(), nasa.labels().clone()),
        (
            "nyc-taxi",
            taxi.dataset.values().to_vec(),
            taxi.dataset.labels().clone(),
        ),
    ]
}

/// The native streaming panel with per-detector alarm thresholds,
/// mirroring the `stream` experiment.
fn panel(n: usize) -> Result<Vec<(Box<dyn StreamingDetector>, f64)>> {
    let train = (n / 4).max(2);
    Ok(vec![
        (
            Box::new(StreamingGlobalZScore::new(train)?) as Box<dyn StreamingDetector>,
            3.0,
        ),
        (Box::new(StreamingCusum::new(Cusum::default(), train)?), 5.0),
        (Box::new(StreamingMovingAvgResidual::new(21)?), 3.0),
        (
            Box::new(StreamingOneLiner::compile(&equation(
                Equation::Eq5,
                21,
                3.0,
                0.1,
            ))?),
            0.0,
        ),
    ])
}

fn score_row(
    profile: &FaultProfile,
    dataset: &str,
    xs: &[f64],
    labels: &Labels,
    det: Box<dyn StreamingDetector>,
    threshold: f64,
    seed: u64,
) -> Result<FaultRow> {
    let (faulted, report) = profile.inject(xs, seed);
    let mut wrapped = Sanitized::new(det, NanPolicy::ImputeLast);
    let scores = wrapped.score_stream(&faulted);
    let offset = wrapped.score_offset();

    // argmax over emitted scores, mapped back to a series position;
    // total_cmp keeps this well-defined if a score still goes NaN
    let pred = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i + offset)
        .unwrap_or(0);
    let ucr_hit = if labels.region_count() == 1 {
        ucr_correct(pred, labels)?
    } else {
        labels
            .regions()
            .iter()
            .any(|r| pred + SLOP >= r.start && pred < r.end + SLOP)
    };

    let delays = delays_from_scores(&scores, offset, threshold, labels, SLOP)?;
    Ok(FaultRow {
        profile: profile.name.clone(),
        dataset: dataset.to_string(),
        detector: wrapped.name(),
        injected_points: report.points_injected(),
        quarantined: wrapped.quarantined(),
        ucr_hit,
        detected: delays.detected(),
        regions: delays.regions.len(),
        false_alarms: delays.false_alarms,
        total_alarms: delays.total_alarms,
    })
}

/// Runs the full matrix. Deterministic given `seed`.
pub fn run(seed: u64) -> Result<FaultsExperiment> {
    let mut rows = Vec::new();
    for (dataset, xs, labels) in families(seed) {
        for profile in standard_profiles() {
            for (det, threshold) in panel(xs.len())? {
                rows.push(score_row(
                    &profile, dataset, &xs, &labels, det, threshold, seed,
                )?);
            }
        }
    }
    Ok(FaultsExperiment { seed, rows })
}

/// Renders the human-readable table: one block per family, profiles as
/// rows, with the clean-row control first.
pub fn render(exp: &FaultsExperiment) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fault matrix — detector panel under injected stream corruption (seed {})",
        exp.seed
    );
    let _ = writeln!(
        out,
        "(`clean` is the control; `hit` = score argmax inside the labeled region)"
    );
    let mut datasets: Vec<&str> = exp.rows.iter().map(|r| r.dataset.as_str()).collect();
    datasets.dedup();
    for dataset in datasets {
        let _ = writeln!(out, "\n── {dataset} ──");
        let mut t = TextTable::new(vec![
            "profile", "detector", "inj", "quar", "hit", "det/reg", "false", "alarms",
        ]);
        for r in exp.rows.iter().filter(|r| r.dataset == dataset) {
            // the wrapper suffix is constant noise in the table; keep the
            // JSON document exact instead
            let short = r.detector.replace(" [nan: impute-last]", "");
            t.row(vec![
                r.profile.clone(),
                short,
                r.injected_points.to_string(),
                r.quarantined.to_string(),
                if r.ucr_hit { "yes" } else { "NO" }.to_string(),
                format!("{}/{}", r.detected, r.regions),
                r.false_alarms.to_string(),
                r.total_alarms.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Renders the machine-readable `BENCH_faults.json` document.
pub fn render_json(exp: &FaultsExperiment) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"tsad-bench-faults/v1\",");
    let _ = writeln!(out, "  \"seed\": {},", exp.seed);
    out.push_str("  \"rows\": [\n");
    for (i, r) in exp.rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"profile\": \"{}\", \"dataset\": \"{}\", \"detector\": \"{}\", \
             \"injected_points\": {}, \"quarantined\": {}, \"ucr_hit\": {}, \
             \"detected\": {}, \"regions\": {}, \"false_alarms\": {}, \
             \"total_alarms\": {}",
            r.profile,
            r.dataset,
            r.detector,
            r.injected_points,
            r.quarantined,
            r.ucr_hit,
            r.detected,
            r.regions,
            r.false_alarms,
            r.total_alarms
        );
        out.push_str(if i + 1 == exp.rows.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn extract_rows(doc_name: &str, text: &str) -> std::result::Result<Vec<FaultRow>, String> {
    let doc = parse(text).map_err(|e| format!("{doc_name}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{doc_name}: missing \"schema\""))?;
    if !schema.starts_with("tsad-bench-faults/") {
        return Err(format!("{doc_name}: unexpected schema {schema:?}"));
    }
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{doc_name}: missing \"rows\" array"))?;
    rows.iter()
        .map(|r| {
            let field_str = |k: &str| {
                r.get(k)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("{doc_name}: row missing string {k:?}"))
            };
            let field_u64 = |k: &str| {
                r.get(k)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("{doc_name}: row missing integer {k:?}"))
            };
            Ok(FaultRow {
                profile: field_str("profile")?,
                dataset: field_str("dataset")?,
                detector: field_str("detector")?,
                injected_points: field_u64("injected_points")? as usize,
                quarantined: field_u64("quarantined")?,
                ucr_hit: r
                    .get("ucr_hit")
                    .and_then(JsonValue::as_bool)
                    .ok_or_else(|| format!("{doc_name}: row missing bool \"ucr_hit\""))?,
                detected: field_u64("detected")? as usize,
                regions: field_u64("regions")? as usize,
                false_alarms: field_u64("false_alarms")? as usize,
                total_alarms: field_u64("total_alarms")? as usize,
            })
        })
        .collect()
}

/// Compares a committed baseline against a fresh run. The matrix is fully
/// deterministic, so the gate is exact: every baseline row must exist in
/// the fresh document with identical values. A vanished (profile, dataset,
/// detector) row is a hard failure; fresh-only rows are allowed (that is
/// what adding a profile looks like). Returns the failure list (empty =
/// gate passes).
pub fn compare(baseline: &str, fresh: &str) -> std::result::Result<Vec<String>, String> {
    let base = extract_rows("baseline", baseline)?;
    let new = extract_rows("fresh", fresh)?;
    let mut failures = Vec::new();
    for b in &base {
        let key = (b.profile.as_str(), b.dataset.as_str(), b.detector.as_str());
        match new
            .iter()
            .find(|f| (f.profile.as_str(), f.dataset.as_str(), f.detector.as_str()) == key)
        {
            None => failures.push(format!(
                "row vanished from fresh run: profile={} dataset={} detector={}",
                b.profile, b.dataset, b.detector
            )),
            Some(f) if f != b => failures.push(format!(
                "row changed: profile={} dataset={} detector={}: \
                 baseline {b:?} vs fresh {f:?}",
                b.profile, b.dataset, b.detector
            )),
            Some(_) => {}
        }
    }
    Ok(failures)
}

/// File-based gate for the CLI: reads both documents, prints nothing on
/// success, returns the rendered failures as `Err` otherwise.
pub fn run_files(baseline_path: &str, fresh_path: &str) -> std::result::Result<String, String> {
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let fresh =
        std::fs::read_to_string(fresh_path).map_err(|e| format!("read {fresh_path}: {e}"))?;
    let failures = compare(&baseline, &fresh)?;
    if failures.is_empty() {
        Ok(format!(
            "fault-matrix gate: {} baseline rows all present and identical\n",
            extract_rows("baseline", &baseline)?.len()
        ))
    } else {
        Err(format!(
            "fault-matrix gate FAILED:\n  {}\n",
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    fn small_run() -> FaultsExperiment {
        // full matrix but cached once per test binary would be nicer;
        // the run is a few seconds in test profile, fine for two tests
        run(DEFAULT_SEED).unwrap()
    }

    #[test]
    fn matrix_is_deterministic_and_clean_control_detects() {
        let a = small_run();
        let b = small_run();
        assert_eq!(a.rows, b.rows, "fault matrix must be deterministic");
        assert_eq!(a.rows.len(), 3 * standard_profiles().len() * 4);
        // the clean control rows must quarantine nothing
        for r in a.rows.iter().filter(|r| r.profile == "clean") {
            assert_eq!(r.quarantined, 0, "{}/{}", r.dataset, r.detector);
            assert_eq!(r.injected_points, 0);
        }
        // the spike-style families have a clean-control hit; the NASA
        // frozen-signal anomaly is *flat* and argmax-style detectors
        // legitimately miss it, so it is not asserted here
        for dataset in ["yahoo-a1", "nyc-taxi"] {
            assert!(
                a.rows
                    .iter()
                    .any(|r| r.profile == "clean" && r.dataset == dataset && r.ucr_hit),
                "no clean hit on {dataset}"
            );
        }
    }

    #[test]
    fn json_round_trips_and_gate_is_exact() {
        let exp = small_run();
        let json = render_json(&exp);
        let parsed = extract_rows("doc", &json).unwrap();
        assert_eq!(parsed, exp.rows);
        // identical documents pass
        assert!(compare(&json, &json).unwrap().is_empty());
        // a vanished row fails
        let mut truncated = exp.clone();
        truncated.rows.pop();
        let failures = compare(&json, &render_json(&truncated)).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("vanished"));
        // a flipped outcome fails
        let mut flipped = exp.clone();
        flipped.rows[0].ucr_hit = !flipped.rows[0].ucr_hit;
        let failures = compare(&json, &render_json(&flipped)).unwrap();
        assert!(failures.iter().any(|f| f.contains("row changed")));
    }
}
