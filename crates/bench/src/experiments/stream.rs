//! **stream** — the bounded-memory streaming engine, end to end.
//!
//! Three tables, over one series per synthetic family (Yahoo A1, NASA
//! frozen-signal, NYC taxi):
//!
//! 1. *equivalence* — machine-checked batch ↔ stream agreement: bitwise
//!    for the z-score / CUSUM / moving-average-residual / one-liner ports,
//!    1e-6 tolerance for the horizon-bounded left discord.
//! 2. *replay* — each streaming port replayed point by point: throughput,
//!    per-push latency, memory bound, and the detection-delay metric
//!    (first alarm − anomaly onset) against the family's labels.
//! 3. *chunking* — one detector replayed at chunk sizes {1, 64, 4096};
//!    alarms and delays are identical, only the timing moves.
//!
//! Scores, alarms, and delays are deterministic given the seed; the
//! throughput/latency columns are wall-clock measurements.

use tsad_core::{Labels, Result, TimeSeries};
use tsad_detectors::baselines::{GlobalZScore, MovingAvgResidual};
use tsad_detectors::cusum::Cusum;
use tsad_detectors::matrix_profile::OnlineDiscordDetector;
use tsad_detectors::oneliner::{equation, Equation};
use tsad_detectors::Detector;
use tsad_eval::report::TextTable;
use tsad_stream::{
    check_equivalence, replay, EquivalenceMode, EquivalenceReport, ReplayConfig, ReplayOutcome,
    StreamingCusum, StreamingDetector, StreamingGlobalZScore, StreamingLeftDiscord,
    StreamingMovingAvgResidual, StreamingOneLiner,
};

/// Discord subsequence length used throughout the experiment.
const DISCORD_M: usize = 32;
/// Points of each series the discord checks run on (the stream is
/// O(n · horizon); the cheap ports use the full series).
const DISCORD_CAP: usize = 2500;

/// One replay row: which series it ran on plus the measurements.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// Series (family) name.
    pub dataset: String,
    /// Alarm threshold the scores were cut at.
    pub threshold: f64,
    /// The measurements.
    pub outcome: ReplayOutcome,
}

/// Everything the `stream` experiment produces.
#[derive(Debug, Clone)]
pub struct StreamExperiment {
    /// Batch ↔ stream equivalence verdicts.
    pub equivalence: Vec<EquivalenceReport>,
    /// Replay measurements (chunk size 1) per family × detector.
    pub replays: Vec<ReplayRow>,
    /// One detector at several chunk sizes on the taxi series.
    pub chunking: Vec<ReplayRow>,
}

fn families(seed: u64) -> Vec<(&'static str, Vec<f64>, Labels)> {
    let yahoo = tsad_synth::yahoo::generate(seed, tsad_synth::yahoo::Family::A1, 3);
    let (nasa, _) = tsad_synth::nasa::frozen_signal(seed);
    let taxi = tsad_synth::numenta::nyc_taxi(seed);
    vec![
        (
            "yahoo-a1",
            yahoo.dataset.values().to_vec(),
            yahoo.dataset.labels().clone(),
        ),
        ("nasa-frozen", nasa.values().to_vec(), nasa.labels().clone()),
        (
            "nyc-taxi",
            taxi.dataset.values().to_vec(),
            taxi.dataset.labels().clone(),
        ),
    ]
}

/// The native streaming panel with per-detector alarm thresholds. The
/// one-liner scores are margins, so they alarm above 0.
fn panel(n: usize) -> Result<Vec<(Box<dyn StreamingDetector>, f64)>> {
    let train = (n / 4).max(2);
    Ok(vec![
        (
            Box::new(StreamingGlobalZScore::new(train)?) as Box<dyn StreamingDetector>,
            3.0,
        ),
        (Box::new(StreamingCusum::new(Cusum::default(), train)?), 5.0),
        (Box::new(StreamingMovingAvgResidual::new(21)?), 3.0),
        (
            Box::new(StreamingOneLiner::compile(&equation(
                Equation::Eq5,
                21,
                3.0,
                0.1,
            ))?),
            0.0,
        ),
    ])
}

/// Runs the experiment. Deterministic given `seed` except for the
/// wall-clock columns.
pub fn run(seed: u64) -> Result<StreamExperiment> {
    let data = families(seed);

    let mut equivalence = Vec::new();
    for (name, xs, _) in &data {
        let n = xs.len();
        let train = (n / 4).max(2);
        let ts = TimeSeries::from_values(xs.clone())?;

        let batch = GlobalZScore.score(&ts, train)?;
        let mut det = StreamingGlobalZScore::new(train)?;
        equivalence.push(check_equivalence(
            name,
            &batch,
            &mut det,
            xs,
            EquivalenceMode::Bitwise,
        )?);

        let params = Cusum::default();
        let batch = params.score(&ts, train)?;
        let mut det = StreamingCusum::new(params, train)?;
        equivalence.push(check_equivalence(
            name,
            &batch,
            &mut det,
            xs,
            EquivalenceMode::Bitwise,
        )?);

        let batch = MovingAvgResidual::new(21).score(&ts, 0)?;
        let mut det = StreamingMovingAvgResidual::new(21)?;
        equivalence.push(check_equivalence(
            name,
            &batch,
            &mut det,
            xs,
            EquivalenceMode::Bitwise,
        )?);

        let ol = equation(Equation::Eq5, 21, 3.0, 0.1);
        let batch = ol.score_values(xs)?;
        let mut det = StreamingOneLiner::compile(&ol)?;
        equivalence.push(check_equivalence(
            name,
            &batch,
            &mut det,
            xs,
            EquivalenceMode::Bitwise,
        )?);

        let capped: Vec<f64> = xs.iter().copied().take(DISCORD_CAP).collect();
        let ts = TimeSeries::from_values(capped.clone())?;
        let batch = OnlineDiscordDetector::new(DISCORD_M).score(&ts, 0)?;
        let mut det = StreamingLeftDiscord::new(DISCORD_M, Default::default(), capped.len())?;
        equivalence.push(check_equivalence(
            name,
            &batch,
            &mut det,
            &capped,
            EquivalenceMode::Tolerance(1e-6),
        )?);
    }

    let mut replays = Vec::new();
    for (name, xs, labels) in &data {
        for (mut det, threshold) in panel(xs.len())? {
            let cfg = ReplayConfig {
                chunk_size: 1,
                threshold,
                slop: 32,
            };
            let outcome = replay(det.as_mut(), xs, labels, &cfg)?;
            replays.push(ReplayRow {
                dataset: name.to_string(),
                threshold,
                outcome,
            });
        }
    }

    let (name, xs, labels) = &data[2];
    let mut chunking = Vec::new();
    let mut det = StreamingGlobalZScore::new((xs.len() / 4).max(2))?;
    for chunk_size in [1usize, 64, 4096] {
        let cfg = ReplayConfig {
            chunk_size,
            threshold: 3.0,
            slop: 32,
        };
        let outcome = replay(&mut det, xs, labels, &cfg)?;
        chunking.push(ReplayRow {
            dataset: name.to_string(),
            threshold: 3.0,
            outcome,
        });
    }
    debug_assert!(chunking
        .windows(2)
        .all(|w| w[0].outcome.delays == w[1].outcome.delays));

    Ok(StreamExperiment {
        equivalence,
        replays,
        chunking,
    })
}

fn delay_cells(row: &ReplayRow) -> [String; 3] {
    let d = &row.outcome.delays;
    [
        format!("{}/{}", d.detected(), d.regions.len()),
        d.mean_delay()
            .map_or_else(|| "-".to_string(), |m| format!("{m:.1}")),
        d.false_alarms.to_string(),
    ]
}

/// Renders the three tables.
pub fn render(e: &StreamExperiment) -> String {
    let mut out = String::from("stream — bounded-memory streaming engine:\n\n");

    out.push_str("batch <-> stream equivalence (per family x port):\n");
    let mut t = TextTable::new(vec![
        "dataset",
        "detector",
        "mode",
        "positions",
        "max |diff|",
        "verdict",
    ]);
    for r in &e.equivalence {
        let mode = match r.mode {
            EquivalenceMode::Bitwise => "bitwise".to_string(),
            EquivalenceMode::Tolerance(tol) => format!("tol {tol:.0e}"),
        };
        t.row(vec![
            r.dataset.clone(),
            r.detector.clone(),
            mode,
            r.compared.to_string(),
            format!("{:.2e}", r.max_abs_diff),
            if r.passed {
                "PASS".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nreplay (chunk size 1; delay = first alarm - onset, slop 32):\n");
    let mut t = TextTable::new(vec![
        "dataset",
        "detector",
        "thr",
        "points",
        "Mpts/s",
        "ns/push",
        "mem (f64s)",
        "detected",
        "mean delay",
        "false alarms",
    ]);
    for row in &e.replays {
        let o = &row.outcome;
        let [det, mean, fa] = delay_cells(row);
        t.row(vec![
            row.dataset.clone(),
            o.detector.clone(),
            format!("{:.1}", row.threshold),
            o.points.to_string(),
            format!("{:.1}", o.points_per_sec / 1e6),
            format!("{:.0}", o.mean_push_ns),
            o.memory_bound.to_string(),
            det,
            mean,
            fa,
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nchunking invariance (global z-score on nyc-taxi):\n");
    let mut t = TextTable::new(vec![
        "chunk",
        "Mpts/s",
        "ns/push",
        "worst chunk ns/pt",
        "detected",
        "mean delay",
        "false alarms",
    ]);
    for row in &e.chunking {
        let o = &row.outcome;
        let [det, mean, fa] = delay_cells(row);
        t.row(vec![
            o.chunk_size.to_string(),
            format!("{:.1}", o.points_per_sec / 1e6),
            format!("{:.0}", o.mean_push_ns),
            format!("{:.0}", o.max_chunk_ns_per_point),
            det,
            mean,
            fa,
        ]);
    }
    out.push_str(&t.render());
    out.push_str("alarms and delays are identical at every chunk size; only timing moves.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_equivalence_checks_pass() {
        let e = run(42).unwrap();
        // 3 families x 5 ports
        assert_eq!(e.equivalence.len(), 15);
        for r in &e.equivalence {
            assert!(r.passed, "{r}");
        }
    }

    #[test]
    fn replay_tables_are_populated_and_deterministic() {
        let e1 = run(42).unwrap();
        let e2 = run(42).unwrap();
        assert_eq!(e1.replays.len(), 12); // 3 families x 4 native ports
        for (a, b) in e1.replays.iter().zip(&e2.replays) {
            assert_eq!(a.outcome.delays, b.outcome.delays, "{}", a.outcome.detector);
        }
        for (a, b) in e1.chunking.iter().zip(&e2.chunking) {
            assert_eq!(a.outcome.delays, b.outcome.delays);
        }
        let text = render(&e1);
        assert!(text.contains("PASS"));
        assert!(!text.contains("FAIL"));
        assert!(text.contains("chunking invariance"));
    }
}
