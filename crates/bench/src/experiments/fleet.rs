//! `fleet` / `fleet-json` — the million-series fleet engine, end to end.
//!
//! Drives a [`tsad_fleet::Fleet`] of `Sanitized<StreamingCusum>` detectors
//! through batched multi-series ingestion and reports:
//!
//! * **Throughput** — median wall time per full round (one point to every
//!   series, delivered in `batch_points`-sized batches) at 1 thread and at
//!   [`PAR_THREADS`] threads, plus the derived aggregate points/second.
//! * **Steady-state allocations** — heap allocations of one warm round at
//!   a single effective thread with observability ON, counted by
//!   [`crate::alloc_track`] when the host binary installs it (the `repro`
//!   driver does; under `cargo test` the field is honestly `null`). The
//!   contract is **zero**: slab storage, reused batch buffers, and
//!   allocation-free detector pushes mean a resident fleet ingests without
//!   touching the allocator.
//! * **Suspend/resume** — the fleet is checkpointed (sharded TSCK
//!   segments + manifest), restored into a fresh fleet, and both are
//!   driven one further round: the scores must match **bitwise**, and the
//!   checkpoint bytes themselves must be identical when produced at 1
//!   thread and at [`PAR_THREADS`] threads.
//! * **Footprint** — accounted bytes per resident series and the total
//!   checkpoint size.
//!
//! `fleet-json` renders the same run as `BENCH_fleet.json` (schema
//! `tsad-bench-fleet/v2`), which CI gates via `repro -- fleet-compare`:
//! wall time relatively (like the kernel gate), allocations and the
//! bitwise bit exactly. Schema v2 adds the SIMD dispatch the run resolved
//! to — `"dispatch"` (the backend name) and `"lane_width"` (f64 lanes per
//! vector), both from [`tsad_core::simd::current`] at measure time — so a
//! wall-time drift on a machine that dispatched differently (or under a
//! `TSAD_SIMD` override) is attributable instead of mysterious.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use tsad_core::error::Result;
use tsad_detectors::cusum::Cusum;
use tsad_fleet::{BatchOutput, Fleet, FleetConfig, SeriesId};
use tsad_parallel::with_threads;
use tsad_stream::{FnFactory, NanPolicy, Sanitized, StreamingCusum, StreamingDetector};

use crate::alloc_track::{count_allocs, counting_allocator_active};

/// Thread count used for the parallel column (matches the kernel panel).
pub const PAR_THREADS: usize = 4;

/// Sizes for one fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetBenchConfig {
    /// Number of distinct series in the fleet.
    pub series: u64,
    /// Shard count.
    pub shards: usize,
    /// Points per `push_batch` call.
    pub batch_points: usize,
    /// Warm-up rounds (detector calibration + buffer high-water marks)
    /// before anything is counted or timed.
    pub warm_rounds: usize,
    /// Timed rounds per thread count (median reported).
    pub iters: usize,
}

impl Default for FleetBenchConfig {
    fn default() -> Self {
        // the acceptance-scale run: one million resident detectors
        Self {
            series: 1_000_000,
            shards: 64,
            batch_points: 65_536,
            warm_rounds: 10,
            iters: 3,
        }
    }
}

impl FleetBenchConfig {
    /// The CI-scale run backing the committed `BENCH_fleet.json` and the
    /// `fleet-smoke` job: large enough to exercise every shard, small
    /// enough for a debug-build runner.
    pub fn ci() -> Self {
        Self {
            series: 100_000,
            ..Self::default()
        }
    }

    /// A tiny configuration for debug-mode tests.
    pub fn smoke() -> Self {
        Self {
            series: 2_000,
            shards: 8,
            batch_points: 512,
            warm_rounds: 3,
            iters: 2,
        }
    }
}

/// One complete fleet measurement.
#[derive(Debug, Clone)]
pub struct FleetBench {
    /// Seed the point values were generated from.
    pub seed: u64,
    /// The configuration measured.
    pub cfg: FleetBenchConfig,
    /// Detector fingerprint (every series spawns this configuration).
    pub detector: String,
    /// Points fed per round (= `cfg.series`; values are always finite).
    pub points_per_round: u64,
    /// Median ns per round at 1 thread.
    pub median_ns_1t: u128,
    /// Median ns per round at [`PAR_THREADS`] threads.
    pub median_ns_nt: u128,
    /// Heap allocations in one warm single-threaded round, or `None` when
    /// the counting allocator is not installed in this process.
    pub steady_allocs: Option<u64>,
    /// Accounted bytes per resident series after the run.
    pub bytes_per_series: usize,
    /// Total checkpoint size (manifest + all segments).
    pub checkpoint_bytes: usize,
    /// Checkpoint bytes identical at 1 and [`PAR_THREADS`] threads, AND
    /// the restored fleet's next-round scores bitwise equal to the
    /// original's.
    pub suspend_resume_bitwise: bool,
    /// SIMD backend the run dispatched to (`avx2`, `sse2`, `neon`, or
    /// `scalar`), resolved at measure time via [`tsad_core::simd::current`].
    pub dispatch: &'static str,
    /// f64 lanes per vector of that backend.
    pub lane_width: usize,
    /// Observability snapshot covering the whole run.
    pub obs: tsad_obs::Snapshot,
}

impl FleetBench {
    /// Aggregate throughput at 1 thread, points per second.
    pub fn points_per_sec_1t(&self) -> f64 {
        points_per_sec(self.points_per_round, self.median_ns_1t)
    }

    /// Aggregate throughput at [`PAR_THREADS`] threads, points per second.
    pub fn points_per_sec_nt(&self) -> f64 {
        points_per_sec(self.points_per_round, self.median_ns_nt)
    }

    /// Steady-state allocations per ingested point, rounded up so any
    /// nonzero round count reads as a violation (`Some(0)` iff the round
    /// was allocation-free).
    pub fn allocs_per_point(&self) -> Option<u64> {
        self.steady_allocs
            .map(|a| a.div_ceil(self.points_per_round.max(1)))
    }
}

fn points_per_sec(points: u64, ns: u128) -> f64 {
    if ns == 0 {
        0.0
    } else {
        points as f64 * 1e9 / ns as f64
    }
}

type FleetDetector = Sanitized<StreamingCusum>;
type FleetFactory = FnFactory<fn(u64) -> FleetDetector>;

fn spawn_detector(_id: u64) -> FleetDetector {
    let cusum = StreamingCusum::new(Cusum::default(), 8).expect("valid CUSUM parameters");
    Sanitized::new(cusum, NanPolicy::Skip)
}

fn new_fleet(cfg: &FleetBenchConfig) -> Fleet<FleetFactory> {
    Fleet::new(
        FnFactory(spawn_detector as fn(u64) -> FleetDetector),
        FleetConfig {
            shards: cfg.shards,
            ..FleetConfig::default()
        },
    )
}

/// Deterministic finite value for (series, round).
fn value(seed: u64, id: u64, round: u64) -> f64 {
    let mut x = seed
        .wrapping_add(id.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(round.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 30;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % 4000) as f64 / 100.0 - 20.0
}

/// Feeds one point to every series, in `batch_points`-sized batches.
/// Returns the per-round score log as `(series, score bits)` pairs when
/// `log` is requested (the bitwise resume check needs it).
fn drive_round(
    fleet: &mut Fleet<FleetFactory>,
    cfg: &FleetBenchConfig,
    seed: u64,
    round: u64,
    batch: &mut Vec<(SeriesId, f64)>,
    out: &mut BatchOutput,
    mut log: Option<&mut Vec<(u64, u64)>>,
) {
    let mut id = 0u64;
    while id < cfg.series {
        batch.clear();
        let end = (id + cfg.batch_points as u64).min(cfg.series);
        for i in id..end {
            batch.push((SeriesId(i), value(seed, i, round)));
        }
        fleet.push_batch(batch, out);
        if let Some(log) = log.as_deref_mut() {
            for s in &out.scores {
                log.push((s.id.0, s.score.to_bits()));
            }
        }
        id = end;
    }
}

/// Serializes [`run`] calls within one process (the observability registry
/// is global; see `bench_json` for the same pattern).
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// Runs the fleet measurement.
pub fn run(seed: u64, cfg: &FleetBenchConfig) -> Result<FleetBench> {
    let _serialize = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tsad_obs::reset_all();

    let mut fleet = new_fleet(cfg);
    let mut out = BatchOutput::new();
    let mut batch = Vec::with_capacity(cfg.batch_points);
    let mut round = 0u64;

    // warm-up: spawn every series, calibrate detectors, grow every
    // reusable buffer to its high-water mark
    for _ in 0..cfg.warm_rounds.max(1) {
        drive_round(&mut fleet, cfg, seed, round, &mut batch, &mut out, None);
        round += 1;
    }

    // steady-state allocation count, single-threaded, obs ON
    let steady_allocs = with_threads(1, || {
        drive_round(&mut fleet, cfg, seed, round, &mut batch, &mut out, None);
        round += 1;
        counting_allocator_active().then(|| {
            let allocs = count_allocs(|| {
                drive_round(&mut fleet, cfg, seed, round, &mut batch, &mut out, None);
            });
            round += 1;
            allocs
        })
    });

    // timing columns (medians over cfg.iters rounds each)
    let median_ns_1t = with_threads(1, || {
        median_round_ns(&mut fleet, cfg, seed, &mut round, &mut batch, &mut out)
    });
    let median_ns_nt = with_threads(PAR_THREADS, || {
        median_round_ns(&mut fleet, cfg, seed, &mut round, &mut batch, &mut out)
    });

    // suspend/resume: thread-count-invariant checkpoint bytes, then a
    // bitwise-identical continuation from the restored fleet
    let ckpt_1t = with_threads(1, || fleet.checkpoint());
    let ckpt_nt = with_threads(PAR_THREADS, || fleet.checkpoint());
    let mut resumed = new_fleet(cfg);
    let report = resumed.restore(&ckpt_1t)?;
    let mut log_a = Vec::new();
    let mut log_b = Vec::new();
    drive_round(
        &mut fleet,
        cfg,
        seed,
        round,
        &mut batch,
        &mut out,
        Some(&mut log_a),
    );
    drive_round(
        &mut resumed,
        cfg,
        seed,
        round,
        &mut batch,
        &mut out,
        Some(&mut log_b),
    );
    let suspend_resume_bitwise = ckpt_1t.to_bytes() == ckpt_nt.to_bytes()
        && report.series as u64 == cfg.series
        && report.evicted.is_empty()
        && !log_a.is_empty()
        && log_a == log_b;

    let backend = tsad_core::simd::current();
    Ok(FleetBench {
        seed,
        cfg: *cfg,
        detector: spawn_detector(0).name(),
        points_per_round: cfg.series,
        median_ns_1t,
        median_ns_nt,
        steady_allocs,
        bytes_per_series: fleet.bytes_per_series(),
        checkpoint_bytes: ckpt_1t.total_bytes(),
        suspend_resume_bitwise,
        dispatch: backend.name(),
        lane_width: backend.lane_width(),
        obs: tsad_obs::snapshot(),
    })
}

fn median_round_ns(
    fleet: &mut Fleet<FleetFactory>,
    cfg: &FleetBenchConfig,
    seed: u64,
    round: &mut u64,
    batch: &mut Vec<(SeriesId, f64)>,
    out: &mut BatchOutput,
) -> u128 {
    let mut samples: Vec<u128> = (0..cfg.iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            drive_round(fleet, cfg, seed, *round, batch, out, None);
            *round += 1;
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Renders the human-readable report for `repro -- fleet`.
pub fn render(b: &FleetBench) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fleet: {} series x {} shards, {} detector",
        b.cfg.series, b.cfg.shards, b.detector
    );
    let _ = writeln!(
        out,
        "  dispatch:   {} ({} f64 lanes)",
        b.dispatch, b.lane_width
    );
    let _ = writeln!(
        out,
        "  ingest:     {:>12.0} points/s at 1 thread ({} ns/round)",
        b.points_per_sec_1t(),
        b.median_ns_1t
    );
    let _ = writeln!(
        out,
        "              {:>12.0} points/s at {} threads ({} ns/round)",
        b.points_per_sec_nt(),
        PAR_THREADS,
        b.median_ns_nt
    );
    let _ = writeln!(
        out,
        "  steady-state allocations/round: {}",
        b.steady_allocs
            .map_or_else(|| "not measured".to_string(), |a| a.to_string())
    );
    let _ = writeln!(out, "  bytes/series (accounted): {}", b.bytes_per_series);
    let _ = writeln!(
        out,
        "  checkpoint: {} bytes across {} shard segments",
        b.checkpoint_bytes, b.cfg.shards
    );
    let _ = writeln!(
        out,
        "  suspend/resume bitwise (1 vs {} threads): {}",
        PAR_THREADS,
        if b.suspend_resume_bitwise {
            "PASS"
        } else {
            "FAIL"
        }
    );
    out
}

/// Renders the machine-readable document (`BENCH_fleet.json`).
pub fn render_json(b: &FleetBench) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"tsad-bench-fleet/v2\",");
    let _ = writeln!(out, "  \"seed\": {},", b.seed);
    let _ = writeln!(out, "  \"series\": {},", b.cfg.series);
    let _ = writeln!(out, "  \"shards\": {},", b.cfg.shards);
    let _ = writeln!(out, "  \"dispatch\": \"{}\",", b.dispatch);
    let _ = writeln!(out, "  \"lane_width\": {},", b.lane_width);
    let _ = writeln!(out, "  \"batch_points\": {},", b.cfg.batch_points);
    let _ = writeln!(out, "  \"threads\": {PAR_THREADS},");
    let _ = writeln!(
        out,
        "  \"host_threads\": {},",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    let _ = writeln!(out, "  \"detector\": \"{}\",", b.detector);
    let _ = writeln!(out, "  \"points_per_round\": {},", b.points_per_round);
    let _ = writeln!(
        out,
        "  \"median_ns_per_round_1_thread\": {},",
        b.median_ns_1t
    );
    let _ = writeln!(
        out,
        "  \"median_ns_per_round_{PAR_THREADS}_threads\": {},",
        b.median_ns_nt
    );
    let _ = writeln!(
        out,
        "  \"points_per_sec_1_thread\": {:.0},",
        b.points_per_sec_1t()
    );
    let _ = writeln!(
        out,
        "  \"points_per_sec_{PAR_THREADS}_threads\": {:.0},",
        b.points_per_sec_nt()
    );
    match b.steady_allocs {
        Some(n) => {
            let _ = writeln!(out, "  \"steady_state_allocs\": {n},");
        }
        None => out.push_str("  \"steady_state_allocs\": null,\n"),
    }
    match b.allocs_per_point() {
        Some(n) => {
            let _ = writeln!(out, "  \"allocs_per_point\": {n},");
        }
        None => out.push_str("  \"allocs_per_point\": null,\n"),
    }
    let _ = writeln!(out, "  \"bytes_per_series\": {},", b.bytes_per_series);
    let _ = writeln!(out, "  \"checkpoint_bytes\": {},", b.checkpoint_bytes);
    let _ = writeln!(
        out,
        "  \"suspend_resume_bitwise\": {},",
        b.suspend_resume_bitwise
    );
    let _ = writeln!(out, "  \"obs\": {}", tsad_obs::render_json(&b.obs, 2));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_measures_and_resumes_bitwise() {
        let b = run(42, &FleetBenchConfig::smoke()).unwrap();
        assert_eq!(b.points_per_round, 2_000);
        assert!(b.median_ns_1t > 0 && b.median_ns_nt > 0);
        assert!(b.points_per_sec_1t() > 0.0);
        assert!(b.bytes_per_series > 0);
        assert!(b.checkpoint_bytes > 0);
        assert!(b.suspend_resume_bitwise, "resume diverged");
        // library tests run under the system allocator: honestly unmeasured
        assert_eq!(b.steady_allocs, None);
        assert_eq!(b.allocs_per_point(), None);
    }

    #[test]
    fn smoke_json_is_wellformed_and_parses() {
        let b = run(42, &FleetBenchConfig::smoke()).unwrap();
        let json = render_json(&b);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let doc = crate::minijson::parse(&json).expect("fleet json parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("tsad-bench-fleet/v2")
        );
        assert_eq!(
            doc.get("dispatch").and_then(|v| v.as_str()),
            Some(tsad_core::simd::current().name())
        );
        assert_eq!(
            doc.get("lane_width").and_then(|v| v.as_u64()),
            Some(tsad_core::simd::current().lane_width() as u64)
        );
        assert_eq!(
            doc.get("suspend_resume_bitwise").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert!(doc
            .get("median_ns_per_round_1_thread")
            .and_then(|v| v.as_u64())
            .is_some());
        assert!(json.contains("\"allocs_per_point\": null"));
        assert!(!json.contains(",\n}"));
        let human = render(&b);
        assert!(human.contains("points/s"));
        assert!(human.contains("PASS"));
    }

    #[test]
    fn forced_scalar_reports_scalar_dispatch() {
        use tsad_core::simd::{self, Backend};
        let b = simd::with_backend(Backend::Scalar, || {
            run(11, &FleetBenchConfig::smoke()).unwrap()
        });
        assert_eq!(b.dispatch, "scalar");
        assert_eq!(b.lane_width, 1);
    }

    #[test]
    fn allocs_per_point_rounds_up_violations() {
        let b = run(7, &FleetBenchConfig::smoke()).unwrap();
        let mut with_allocs = b.clone();
        with_allocs.steady_allocs = Some(0);
        assert_eq!(with_allocs.allocs_per_point(), Some(0));
        with_allocs.steady_allocs = Some(1); // 1 alloc over 2000 points
        assert_eq!(with_allocs.allocs_per_point(), Some(1), "must not hide");
    }
}
