//! `bench-compare` / `fleet-compare` / `ingest-compare` — perf-regression
//! gating against the committed baselines.
//!
//! Each comparator reads two rendered documents — the checked-in baseline
//! and a freshly generated run — and applies the shared gates from
//! [`crate::gate`]:
//!
//! * **Wall time**: a fresh single-thread number more than
//!   [`MAX_WALL_RATIO`]× the baseline fails. The 1-thread column is
//!   compared because it is the least scheduler-sensitive number the
//!   document has; the generous threshold absorbs CI-runner noise while
//!   still catching real (2×-style) regressions.
//! * **Allocations** (for measurements with allocation-free contracts):
//!   any nonzero count or a vanished measurement fails; allocation counts
//!   are exact and portable, so this gate has no noise margin at all.
//! * **Coverage**: a baseline row missing from the fresh run fails (a
//!   silently dropped kernel must not pass the gate); a fresh-only row is
//!   reported but allowed (that is what adding a kernel looks like).
//! * **Schema**: the two documents must carry the *same* schema string —
//!   drift is an explicit regenerate-the-baseline error, not a confusing
//!   missing-field failure downstream.
//!
//! The ingest comparator additionally gates the per-stage p99 latencies
//! **absolutely** against the crate's budgets ([`tsad_ingest::BUDGET_PARSE_NS`]
//! and friends, widened to the containing log2 histogram bucket bound), and
//! loopback loadgen throughput relatively with a wider margin
//! ([`MAX_RPS_DROP`]) because socket numbers are noisier than in-process
//! ones.
//!
//! The CLI (`repro -- bench-compare|fleet-compare|ingest-compare`) prints
//! the delta table and exits nonzero when any check fails; CI runs each in
//! its smoke job against a fresh run written to a temp path, so the
//! committed baselines stay authoritative.

pub use crate::gate::{render, CompareReport, CompareRow, MAX_WALL_RATIO};

use crate::gate::{
    gate_exact_zero_allocs, gate_wall_ratio, note_dispatch_drift, parse_same_schema,
};
use crate::minijson::JsonValue;

/// Kernels with an allocation-free contract (`allocs_per_iter == 0`).
pub const GATED_KERNELS: [&str; 3] = ["sliding_dot_product", "stomp", "merlin"];

struct KernelNumbers {
    name: String,
    ns_1t: Option<u64>,
    allocs: Option<u64>,
    dispatch: Option<String>,
    lane_width: Option<u64>,
}

fn extract_kernels(doc_name: &str, doc: &JsonValue) -> Result<Vec<KernelNumbers>, String> {
    let kernels = doc
        .get("kernels")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{doc_name}: missing \"kernels\" array"))?;
    kernels
        .iter()
        .map(|k| {
            let name = k
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{doc_name}: kernel without a name"))?
                .to_string();
            Ok(KernelNumbers {
                ns_1t: k
                    .get("median_ns_per_iter_1_thread")
                    .and_then(JsonValue::as_u64),
                allocs: k.get("allocs_per_iter").and_then(JsonValue::as_u64),
                dispatch: k
                    .get("dispatch")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string),
                lane_width: k.get("lane_width").and_then(JsonValue::as_u64),
                name,
            })
        })
        .collect()
}

/// Compares two rendered kernel documents. `max_ratio` is the wall-time
/// gate (pass [`MAX_WALL_RATIO`] outside tests). Errors are malformed
/// inputs; regression *failures* come back inside the report.
pub fn compare(baseline: &str, fresh: &str, max_ratio: f64) -> Result<CompareReport, String> {
    let (base_doc, new_doc) = parse_same_schema(
        baseline,
        fresh,
        "tsad-bench-kernels/",
        "repro -- bench-json",
    )?;
    let base = extract_kernels("baseline", &base_doc)?;
    let new = extract_kernels("fresh", &new_doc)?;
    let mut report = CompareReport::default();

    for b in &base {
        let f = new.iter().find(|k| k.name == b.name);
        let mut row = CompareRow {
            name: b.name.clone(),
            base_ns: b.ns_1t,
            fresh_ns: f.and_then(|k| k.ns_1t),
            ratio: None,
            base_allocs: b.allocs,
            fresh_allocs: f.and_then(|k| k.allocs),
        };
        let Some(f) = f else {
            report.failures.push(format!(
                "{}: present in baseline but missing from fresh run",
                b.name
            ));
            report.rows.push(row);
            continue;
        };
        row.ratio = gate_wall_ratio(&mut report, &b.name, b.ns_1t, f.ns_1t, max_ratio);
        note_dispatch_drift(
            &mut report,
            &b.name,
            b.dispatch.as_deref(),
            b.lane_width,
            f.dispatch.as_deref(),
            f.lane_width,
        );
        if GATED_KERNELS.contains(&b.name.as_str()) {
            gate_exact_zero_allocs(&mut report, &b.name, "allocs_per_iter", b.allocs, f.allocs);
        }
        report.rows.push(row);
    }

    for f in &new {
        if !base.iter().any(|b| b.name == f.name) {
            report
                .notes
                .push(format!("{}: new kernel, not in baseline (allowed)", f.name));
            report.rows.push(CompareRow {
                name: f.name.clone(),
                base_ns: None,
                fresh_ns: f.ns_1t,
                ratio: None,
                base_allocs: None,
                fresh_allocs: f.allocs,
            });
        }
    }
    Ok(report)
}

/// Reads both files and runs the gate; `Err` for unreadable/malformed
/// inputs or a failed gate (message includes the table).
pub fn run_files(baseline_path: &str, fresh_path: &str) -> Result<String, String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let fresh = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh run {fresh_path}: {e}"))?;
    let report = compare(&baseline, &fresh, MAX_WALL_RATIO)?;
    let table = render(&report);
    if report.passed() {
        Ok(table)
    } else {
        Err(table)
    }
}

// ─── fleet gate (BENCH_fleet.json, schema tsad-bench-fleet/v2) ──────────

/// Fresh `bytes_per_series` may be at most this multiple of the baseline
/// (the accounted footprint is deterministic, so the margin only covers
/// deliberate, reviewed growth of detector state).
pub const MAX_BYTES_PER_SERIES_RATIO: f64 = 1.10;

/// The fleet numbers one document contributes to the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetNumbers {
    /// Series count (geometry must match to compare at all).
    pub series: u64,
    /// Shard count.
    pub shards: u64,
    /// Median ns per full round at 1 thread.
    pub ns_1t: Option<u64>,
    /// Steady-state allocations per point (`None` = not measured).
    pub allocs_per_point: Option<u64>,
    /// Accounted bytes per resident series.
    pub bytes_per_series: Option<u64>,
    /// Whether suspend/resume reproduced bitwise.
    pub bitwise: Option<bool>,
    /// SIMD backend the run dispatched to.
    pub dispatch: Option<String>,
    /// f64 lanes of that backend.
    pub lane_width: Option<u64>,
}

fn extract_fleet(doc_name: &str, doc: &JsonValue) -> Result<FleetNumbers, String> {
    let u64_field = |key: &str| doc.get(key).and_then(JsonValue::as_u64);
    Ok(FleetNumbers {
        series: u64_field("series").ok_or_else(|| format!("{doc_name}: missing \"series\""))?,
        shards: u64_field("shards").ok_or_else(|| format!("{doc_name}: missing \"shards\""))?,
        ns_1t: u64_field("median_ns_per_round_1_thread"),
        allocs_per_point: u64_field("allocs_per_point"),
        bytes_per_series: u64_field("bytes_per_series"),
        bitwise: doc
            .get("suspend_resume_bitwise")
            .and_then(JsonValue::as_bool),
        dispatch: doc
            .get("dispatch")
            .and_then(JsonValue::as_str)
            .map(str::to_string),
        lane_width: u64_field("lane_width"),
    })
}

/// Compares two `BENCH_fleet.json` documents: schema strings must be
/// identical, geometry must match, wall time is gated relatively (like the
/// kernels), `allocs_per_point` exactly to zero, `bytes_per_series` to at
/// most [`MAX_BYTES_PER_SERIES_RATIO`]×, `suspend_resume_bitwise` must be
/// `true` in the fresh run, and a SIMD dispatch drift is noted.
pub fn compare_fleet(baseline: &str, fresh: &str, max_ratio: f64) -> Result<CompareReport, String> {
    let (base_doc, new_doc) =
        parse_same_schema(baseline, fresh, "tsad-bench-fleet/", "repro -- fleet-json")?;
    let base = extract_fleet("baseline", &base_doc)?;
    let new = extract_fleet("fresh", &new_doc)?;
    let mut report = CompareReport::default();

    if (base.series, base.shards) != (new.series, new.shards) {
        report.failures.push(format!(
            "fleet geometry changed: baseline {}x{} series/shards, fresh {}x{} \
             (regenerate the committed baseline)",
            base.series, base.shards, new.series, new.shards
        ));
    }
    let mut row = CompareRow {
        name: "fleet_ingest_round".to_string(),
        base_ns: base.ns_1t,
        fresh_ns: new.ns_1t,
        ratio: None,
        base_allocs: base.allocs_per_point,
        fresh_allocs: new.allocs_per_point,
    };
    row.ratio = gate_wall_ratio(
        &mut report,
        "fleet ingest",
        base.ns_1t,
        new.ns_1t,
        max_ratio,
    );
    gate_exact_zero_allocs(
        &mut report,
        "fleet ingest",
        "allocs_per_point",
        base.allocs_per_point,
        new.allocs_per_point,
    );
    note_dispatch_drift(
        &mut report,
        "fleet ingest",
        base.dispatch.as_deref(),
        base.lane_width,
        new.dispatch.as_deref(),
        new.lane_width,
    );
    match (base.bytes_per_series, new.bytes_per_series) {
        (Some(b), Some(f)) if b > 0 => {
            let ratio = f as f64 / b as f64;
            if ratio > MAX_BYTES_PER_SERIES_RATIO {
                report.failures.push(format!(
                    "fleet footprint: bytes_per_series grew {ratio:.2}x ({b} -> {f}, \
                     limit {MAX_BYTES_PER_SERIES_RATIO:.2}x)"
                ));
            }
        }
        _ => report
            .notes
            .push("fleet footprint: bytes_per_series not comparable".to_string()),
    }
    match new.bitwise {
        Some(true) => {}
        Some(false) => report
            .failures
            .push("fleet checkpoint: suspend_resume_bitwise is false".to_string()),
        None => report
            .failures
            .push("fleet checkpoint: suspend_resume_bitwise missing from fresh run".to_string()),
    }
    report.rows.push(row);
    Ok(report)
}

/// Reads both fleet documents and runs the gate; `Err` for
/// unreadable/malformed inputs or a failed gate.
pub fn run_fleet_files(baseline_path: &str, fresh_path: &str) -> Result<String, String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read fleet baseline {baseline_path}: {e}"))?;
    let fresh = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh fleet run {fresh_path}: {e}"))?;
    let report = compare_fleet(&baseline, &fresh, MAX_WALL_RATIO)?;
    let table = render(&report);
    if report.passed() {
        Ok(table)
    } else {
        Err(table)
    }
}

// ─── ingest gate (BENCH_ingest.json, schema tsad-bench-ingest/v1) ───────

/// Loopback loadgen throughput may drop to at most `1/MAX_RPS_DROP` of the
/// baseline: socket numbers bounce more than in-process medians, so the
/// relative margin is wider than [`MAX_WALL_RATIO`].
pub const MAX_RPS_DROP: f64 = 1.5;

/// The stages whose fresh p99 is gated absolutely against the crate's
/// latency budgets, as `(stage name, budget field)` pairs.
const BUDGETED_STAGES: [(&str, &str); 3] = [
    ("parse", "budget_parse_ns"),
    ("route", "budget_route_ns"),
    ("overhead", "budget_overhead_ns"),
];

struct StageNumbers {
    stage: String,
    p99_ns: Option<u64>,
    count: Option<u64>,
}

fn extract_stages(doc_name: &str, doc: &JsonValue) -> Result<Vec<StageNumbers>, String> {
    let stages = doc
        .get("stages")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{doc_name}: missing \"stages\" array"))?;
    stages
        .iter()
        .map(|s| {
            let stage = s
                .get("stage")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{doc_name}: stage without a name"))?
                .to_string();
            Ok(StageNumbers {
                p99_ns: s.get("p99_ns").and_then(JsonValue::as_u64),
                count: s.get("count").and_then(JsonValue::as_u64),
                stage,
            })
        })
        .collect()
}

/// Compares two `BENCH_ingest.json` documents.
///
/// Gated: schema equality, request-geometry equality (`batch_points`), the
/// fresh per-stage p99 against the **absolute** latency budgets the
/// document itself carries (widened to [`tsad_ingest::budget_bound`], the
/// containing log2-bucket upper bound, because the histogram quantile
/// overestimates by at most one bucket), `allocs_per_request` exactly to
/// zero, loadgen `errors` exactly to zero, and per-transport loopback
/// throughput relatively via [`MAX_RPS_DROP`]. The per-stage ratio columns
/// are informational — sub-10μs medians are too jittery for a relative
/// gate; the budgets are the contract.
pub fn compare_ingest(baseline: &str, fresh: &str) -> Result<CompareReport, String> {
    let (base_doc, new_doc) = parse_same_schema(
        baseline,
        fresh,
        "tsad-bench-ingest/",
        "repro -- ingest-json",
    )?;
    let mut report = CompareReport::default();

    let geometry = |doc: &JsonValue| {
        (
            doc.get("batch_points").and_then(JsonValue::as_u64),
            doc.get("series").and_then(JsonValue::as_u64),
        )
    };
    if geometry(&base_doc) != geometry(&new_doc) {
        report.failures.push(format!(
            "ingest geometry changed: baseline {:?} batch_points/series, fresh {:?} \
             (regenerate the committed baseline)",
            geometry(&base_doc),
            geometry(&new_doc)
        ));
    }
    note_dispatch_drift(
        &mut report,
        "ingest",
        base_doc.get("dispatch").and_then(JsonValue::as_str),
        base_doc.get("lane_width").and_then(JsonValue::as_u64),
        new_doc.get("dispatch").and_then(JsonValue::as_str),
        new_doc.get("lane_width").and_then(JsonValue::as_u64),
    );

    // per-stage rows: informational ratios, absolute budget gates
    let base_stages = extract_stages("baseline", &base_doc)?;
    let new_stages = extract_stages("fresh", &new_doc)?;
    for b in &base_stages {
        let f = new_stages.iter().find(|s| s.stage == b.stage);
        let mut row = CompareRow {
            name: format!("ingest_{}_p99", b.stage),
            base_ns: b.p99_ns,
            fresh_ns: f.and_then(|s| s.p99_ns),
            ratio: None,
            base_allocs: None,
            fresh_allocs: None,
        };
        let Some(f) = f else {
            report.failures.push(format!(
                "ingest stage {}: present in baseline but missing from fresh run",
                b.stage
            ));
            report.rows.push(row);
            continue;
        };
        if let (Some(bn), Some(fn_)) = (b.p99_ns, f.p99_ns) {
            if bn > 0 {
                row.ratio = Some(fn_ as f64 / bn as f64);
            }
        }
        if f.count == Some(0) {
            report.failures.push(format!(
                "ingest stage {}: zero samples in fresh run",
                b.stage
            ));
        }
        report.rows.push(row);
    }
    for (stage, budget_field) in BUDGETED_STAGES {
        let budget = new_doc
            .get(budget_field)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("fresh: missing \"{budget_field}\""))?;
        let bound = tsad_ingest::budget_bound(budget);
        let Some(p99) = new_stages
            .iter()
            .find(|s| s.stage == stage)
            .and_then(|s| s.p99_ns)
        else {
            report
                .failures
                .push(format!("ingest stage {stage}: p99 missing from fresh run"));
            continue;
        };
        if p99 > bound {
            report.failures.push(format!(
                "ingest stage {stage}: p99 {p99} ns busts the {budget} ns budget \
                 (bucket bound {bound} ns)"
            ));
        }
    }

    gate_exact_zero_allocs(
        &mut report,
        "ingest request path",
        "allocs_per_request",
        base_doc
            .get("allocs_per_request")
            .and_then(JsonValue::as_u64),
        new_doc
            .get("allocs_per_request")
            .and_then(JsonValue::as_u64),
    );

    // Loopback throughput per transport: relative, wide margin — but
    // only when both documents were produced with the same worker
    // count. `TSAD_THREADS` resizes the server's worker set, so rps
    // across different thread counts is not a regression signal (the
    // CI matrix runs at TSAD_THREADS=1 and 4 against one committed
    // baseline). Error counts and the absolute budgets gate regardless.
    let threads = |doc: &JsonValue| doc.get("host_threads").and_then(JsonValue::as_u64);
    let rps_comparable = match (threads(&base_doc), threads(&new_doc)) {
        (Some(b), Some(f)) if b == f => true,
        (Some(b), Some(f)) => {
            report.notes.push(format!(
                "loadgen throughput not gated: host_threads {b} (baseline) vs {f} (fresh)"
            ));
            false
        }
        _ => false,
    };
    struct LoadRun {
        transport: String,
        rps: Option<u64>,
        errors: Option<u64>,
    }
    let loadgen = |doc: &JsonValue, name: &str| -> Result<Vec<LoadRun>, String> {
        let runs = doc
            .get("loadgen")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("{name}: missing \"loadgen\" array"))?;
        runs.iter()
            .map(|r| {
                let transport = r
                    .get("transport")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{name}: loadgen run without a transport"))?
                    .to_string();
                Ok(LoadRun {
                    transport,
                    rps: r.get("rps").and_then(JsonValue::as_u64),
                    errors: r.get("errors").and_then(JsonValue::as_u64),
                })
            })
            .collect()
    };
    let base_runs = loadgen(&base_doc, "baseline")?;
    let new_runs = loadgen(&new_doc, "fresh")?;
    for run in &base_runs {
        let (transport, base_rps) = (&run.transport, &run.rps);
        let Some(fresh) = new_runs.iter().find(|r| &r.transport == transport) else {
            report.failures.push(format!(
                "loadgen {transport}: present in baseline but missing from fresh run"
            ));
            continue;
        };
        let (fresh_rps, fresh_errors) = (&fresh.rps, &fresh.errors);
        match fresh_errors {
            Some(0) => {}
            Some(n) => report.failures.push(format!(
                "loadgen {transport}: {n} request errors (contract: 0)"
            )),
            None => report.failures.push(format!(
                "loadgen {transport}: errors missing from fresh run"
            )),
        }
        match (base_rps, fresh_rps) {
            (Some(b), Some(f)) if *b > 0 => {
                let drop = *b as f64 / (*f).max(1) as f64;
                if rps_comparable && drop > MAX_RPS_DROP {
                    report.failures.push(format!(
                        "loadgen {transport}: throughput dropped {drop:.2}x \
                         ({b} -> {f} req/s, limit {MAX_RPS_DROP:.2}x)"
                    ));
                }
                report
                    .notes
                    .push(format!("loadgen {transport}: {b} -> {f} req/s on loopback"));
            }
            _ => report
                .notes
                .push(format!("loadgen {transport}: throughput not comparable")),
        }
    }
    Ok(report)
}

/// Reads both ingest documents and runs the gate; `Err` for
/// unreadable/malformed inputs or a failed gate.
pub fn run_ingest_files(baseline_path: &str, fresh_path: &str) -> Result<String, String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read ingest baseline {baseline_path}: {e}"))?;
    let fresh = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh ingest run {fresh_path}: {e}"))?;
    let report = compare_ingest(&baseline, &fresh)?;
    let table = render(&report);
    if report.passed() {
        Ok(table)
    } else {
        Err(table)
    }
}

// ─── wal gate (BENCH_wal.json, schema tsad-bench-wal/v1) ────────────────

struct WalPolicyNumbers {
    policy: String,
    wall_ns: Option<u64>,
    allocs: Option<u64>,
}

fn extract_wal_policies(doc_name: &str, doc: &JsonValue) -> Result<Vec<WalPolicyNumbers>, String> {
    let rows = doc
        .get("policies")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{doc_name}: missing \"policies\" array"))?;
    rows.iter()
        .map(|r| {
            let policy = r
                .get("policy")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{doc_name}: policy row without a name"))?
                .to_string();
            Ok(WalPolicyNumbers {
                wall_ns: r.get("wall_ns_per_batch").and_then(JsonValue::as_u64),
                allocs: r.get("allocs_per_batch").and_then(JsonValue::as_u64),
                policy,
            })
        })
        .collect()
}

/// Compares two `BENCH_wal.json` documents.
///
/// Gated: schema equality, workload-geometry equality
/// (`batches`/`batch_points`/`segment_bytes`), append wall time relatively
/// for the **fsync-free** policy only (the `per-batch` and `group` rows
/// are dominated by fsync latency, which is a property of the CI runner's
/// disk, not of the code — their ratios are informational),
/// `allocs_per_batch` exactly to zero for every policy, and the recovery
/// booleans absolutely: a fresh run whose torn-tail recovery is not
/// bitwise-faithful fails regardless of what the baseline says.
pub fn compare_wal(baseline: &str, fresh: &str, max_ratio: f64) -> Result<CompareReport, String> {
    let (base_doc, new_doc) =
        parse_same_schema(baseline, fresh, "tsad-bench-wal/", "repro -- wal-json")?;
    let mut report = CompareReport::default();

    let geometry = |doc: &JsonValue| {
        (
            doc.get("batches").and_then(JsonValue::as_u64),
            doc.get("batch_points").and_then(JsonValue::as_u64),
            doc.get("segment_bytes").and_then(JsonValue::as_u64),
        )
    };
    if geometry(&base_doc) != geometry(&new_doc) {
        report.failures.push(format!(
            "wal geometry changed: baseline {:?} batches/batch_points/segment_bytes, \
             fresh {:?} (regenerate the committed baseline)",
            geometry(&base_doc),
            geometry(&new_doc)
        ));
    }

    let base = extract_wal_policies("baseline", &base_doc)?;
    let new = extract_wal_policies("fresh", &new_doc)?;
    for b in &base {
        let f = new.iter().find(|p| p.policy == b.policy);
        let name = format!("wal_append_{}", b.policy);
        let mut row = CompareRow {
            name: name.clone(),
            base_ns: b.wall_ns,
            fresh_ns: f.and_then(|p| p.wall_ns),
            ratio: None,
            base_allocs: b.allocs,
            fresh_allocs: f.and_then(|p| p.allocs),
        };
        let Some(f) = f else {
            report.failures.push(format!(
                "{name}: present in baseline but missing from fresh run"
            ));
            report.rows.push(row);
            continue;
        };
        if b.policy == "off" {
            row.ratio = gate_wall_ratio(&mut report, &name, b.wall_ns, f.wall_ns, max_ratio);
        } else if let (Some(bn), Some(fn_)) = (b.wall_ns, f.wall_ns) {
            // fsync-bound rows: the ratio is runner-disk news, not a gate
            if bn > 0 {
                row.ratio = Some(fn_ as f64 / bn as f64);
            }
        }
        gate_exact_zero_allocs(&mut report, &name, "allocs_per_batch", b.allocs, f.allocs);
        report.rows.push(row);
    }

    let recovery = new_doc
        .get("recovery")
        .ok_or_else(|| "fresh: missing \"recovery\" object".to_string())?;
    for (field, label) in [
        ("bitwise", "recovered state not bitwise-equal"),
        ("torn_tail_truncated", "torn tail not repaired"),
    ] {
        match recovery.get(field).and_then(JsonValue::as_bool) {
            Some(true) => {}
            Some(false) => report
                .failures
                .push(format!("wal recovery: {label} ({field} is false)")),
            None => report
                .failures
                .push(format!("wal recovery: {field} missing from fresh run")),
        }
    }
    match recovery.get("replayed_batches").and_then(JsonValue::as_u64) {
        Some(n) if n > 0 => report.notes.push(format!(
            "wal recovery: replayed {n} batches past a torn tail"
        )),
        _ => report
            .failures
            .push("wal recovery: fresh run replayed zero batches".to_string()),
    }
    Ok(report)
}

/// Reads both WAL documents and runs the gate; `Err` for
/// unreadable/malformed inputs or a failed gate.
pub fn run_wal_files(baseline_path: &str, fresh_path: &str) -> Result<String, String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read wal baseline {baseline_path}: {e}"))?;
    let fresh = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh wal run {fresh_path}: {e}"))?;
    let report = compare_wal(&baseline, &fresh, MAX_WALL_RATIO)?;
    let table = render(&report);
    if report.passed() {
        Ok(table)
    } else {
        Err(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::bench_json::{render as render_bench, run as run_bench, BenchConfig};

    fn doc_with_merlin(stomp_ns: u64, stomp_allocs: &str, merlin_allocs: &str) -> String {
        format!(
            r#"{{
  "schema": "tsad-bench-kernels/v4",
  "seed": 42,
  "threads": 4,
  "host_threads": 1,
  "kernels": [
    {{
      "name": "stomp",
      "params": "n=4096, m=128",
      "iters": 5,
      "median_ns_per_iter_1_thread": {stomp_ns},
      "median_ns_per_iter_4_threads": {stomp_ns},
      "allocs_per_iter": {stomp_allocs},
      "speedup": null,
      "dispatch": "avx2",
      "lane_width": 4,
      "obs": {{"schema": "tsad-obs/v1", "counters": {{}}, "gauges": {{}}, "histograms": {{}}}}
    }},
    {{
      "name": "merlin",
      "params": "n=800",
      "iters": 5,
      "median_ns_per_iter_1_thread": 1000000,
      "median_ns_per_iter_4_threads": 900000,
      "allocs_per_iter": {merlin_allocs},
      "speedup": null,
      "dispatch": "avx2",
      "lane_width": 4,
      "obs": {{"schema": "tsad-obs/v1", "counters": {{}}, "gauges": {{}}, "histograms": {{}}}}
    }}
  ]
}}"#
        )
    }

    fn doc(stomp_ns: u64, stomp_allocs: &str) -> String {
        doc_with_merlin(stomp_ns, stomp_allocs, "0")
    }

    #[test]
    fn identical_documents_pass() {
        let base = doc(22_000_000, "0");
        let report = compare(&base, &base, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.rows.len(), 2);
        assert!((report.rows[0].ratio.unwrap() - 1.0).abs() < 1e-12);
        let table = render(&report);
        assert!(table.contains("PASS"));
        assert!(table.contains("stomp"));
        assert!(table.contains("1.00x"));
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        let base = doc(22_000_000, "0");
        let slow = doc(44_000_000, "0"); // synthetic 2x wall-time regression
        let report = compare(&base, &slow, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("2.00x")),
            "failures: {:?}",
            report.failures
        );
        assert!(render(&report).contains("FAIL"));
        // and the mirror image (a 2x speedup) passes
        let report = compare(&slow, &base, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn small_jitter_within_the_margin_passes() {
        let base = doc(22_000_000, "0");
        let jitter = doc(26_000_000, "0"); // +18%, inside the 30% margin
        let report = compare(&base, &jitter, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn alloc_increase_on_a_gated_kernel_fails() {
        let base = doc(22_000_000, "0");
        for bad in ["1", "null"] {
            let report = compare(&base, &doc(22_000_000, bad), MAX_WALL_RATIO).unwrap();
            assert!(!report.passed(), "allocs {bad} passed");
            assert!(
                report
                    .failures
                    .iter()
                    .any(|f| f.contains("allocs_per_iter")),
                "failures: {:?}",
                report.failures
            );
        }
        // merlin is gated too since its buffers moved into scratch pools
        for bad in ["1", "null"] {
            let report = compare(
                &base,
                &doc_with_merlin(22_000_000, "0", bad),
                MAX_WALL_RATIO,
            )
            .unwrap();
            assert!(!report.passed(), "merlin allocs {bad} passed");
            assert!(report
                .failures
                .iter()
                .any(|f| f.contains("merlin") && f.contains("allocs_per_iter")));
        }
    }

    #[test]
    fn schema_drift_is_a_clear_error_not_a_parse_failure() {
        let base = doc(22_000_000, "0").replace("tsad-bench-kernels/v4", "tsad-bench-kernels/v3");
        let err = compare(&base, &doc(22_000_000, "0"), MAX_WALL_RATIO).unwrap_err();
        assert!(err.contains("schema mismatch"), "unhelpful error: {err}");
        assert!(err.contains("tsad-bench-kernels/v3"));
        assert!(err.contains("tsad-bench-kernels/v4"));
        assert!(err.contains("regenerate"), "no fix hint in: {err}");
    }

    #[test]
    fn dispatch_drift_is_noted_but_passes() {
        let base = doc(22_000_000, "0");
        let scalar = base
            .replace("\"dispatch\": \"avx2\"", "\"dispatch\": \"scalar\"")
            .replace("\"lane_width\": 4", "\"lane_width\": 1");
        let report = compare(&base, &scalar, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("dispatch") && n.contains("avx2") && n.contains("scalar")),
            "notes: {:?}",
            report.notes
        );
    }

    #[test]
    fn missing_kernel_fails_but_new_kernel_is_noted() {
        let base = doc(22_000_000, "0");
        let only_stomp = r#"{
  "schema": "tsad-bench-kernels/v4",
  "kernels": [
    {"name": "stomp", "median_ns_per_iter_1_thread": 22000000, "allocs_per_iter": 0}
  ]
}"#;
        let report = compare(&base, only_stomp, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("merlin")));
        // fresh-only kernels are allowed
        let report = compare(only_stomp, &base, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.notes.iter().any(|n| n.contains("merlin")));
    }

    #[test]
    fn malformed_inputs_are_errors_not_failures() {
        assert!(compare("not json", &doc(1, "0"), MAX_WALL_RATIO).is_err());
        assert!(compare(&doc(1, "0"), "{}", MAX_WALL_RATIO).is_err());
        let wrong_schema = doc(1, "0").replace("tsad-bench-kernels/v4", "something-else/v9");
        assert!(compare(&wrong_schema, &doc(1, "0"), MAX_WALL_RATIO).is_err());
    }

    fn fleet_doc(ns: u64, allocs: &str, bytes: u64, bitwise: &str) -> String {
        format!(
            r#"{{
  "schema": "tsad-bench-fleet/v2",
  "seed": 42,
  "series": 100000,
  "shards": 64,
  "dispatch": "avx2",
  "lane_width": 4,
  "median_ns_per_round_1_thread": {ns},
  "allocs_per_point": {allocs},
  "bytes_per_series": {bytes},
  "suspend_resume_bitwise": {bitwise}
}}"#
        )
    }

    #[test]
    fn identical_fleet_documents_pass() {
        let doc = fleet_doc(50_000_000, "0", 240, "true");
        let report = compare_fleet(&doc, &doc, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.rows.len(), 1);
        assert!((report.rows[0].ratio.unwrap() - 1.0).abs() < 1e-12);
        assert!(render(&report).contains("fleet_ingest_round"));
    }

    #[test]
    fn fleet_wall_regression_and_speedup_behave_like_kernels() {
        let base = fleet_doc(50_000_000, "0", 240, "true");
        let slow = fleet_doc(100_000_000, "0", 240, "true");
        let report = compare_fleet(&base, &slow, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("2.00x")));
        let report = compare_fleet(&slow, &base, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn fleet_alloc_gate_is_exact() {
        let base = fleet_doc(1000, "0", 240, "true");
        for bad in ["1", "null"] {
            let report =
                compare_fleet(&base, &fleet_doc(1000, bad, 240, "true"), MAX_WALL_RATIO).unwrap();
            assert!(!report.passed(), "allocs {bad} passed");
            assert!(report
                .failures
                .iter()
                .any(|f| f.contains("allocs_per_point")));
        }
    }

    #[test]
    fn fleet_footprint_growth_fails_but_margin_passes() {
        let base = fleet_doc(1000, "0", 240, "true");
        // +8% is inside the 10% margin
        let report =
            compare_fleet(&base, &fleet_doc(1000, "0", 259, "true"), MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        // +20% is not
        let report =
            compare_fleet(&base, &fleet_doc(1000, "0", 288, "true"), MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("bytes_per_series")));
    }

    #[test]
    fn fleet_bitwise_flag_must_hold() {
        let base = fleet_doc(1000, "0", 240, "true");
        let report =
            compare_fleet(&base, &fleet_doc(1000, "0", 240, "false"), MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("suspend_resume_bitwise")));
    }

    #[test]
    fn fleet_geometry_change_fails_the_gate() {
        let base = fleet_doc(1000, "0", 240, "true");
        let rescaled = base.replace("\"series\": 100000", "\"series\": 50000");
        let report = compare_fleet(&base, &rescaled, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("geometry")));
    }

    #[test]
    fn fleet_schema_drift_is_a_regenerate_error() {
        let base = fleet_doc(1000, "0", 240, "true").replace("/v2", "/v1");
        let err =
            compare_fleet(&base, &fleet_doc(1000, "0", 240, "true"), MAX_WALL_RATIO).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("fleet-json"), "no fix hint in: {err}");
    }

    #[test]
    fn fleet_dispatch_drift_is_noted_but_passes() {
        let base = fleet_doc(1000, "0", 240, "true");
        let scalar = base
            .replace("\"dispatch\": \"avx2\"", "\"dispatch\": \"scalar\"")
            .replace("\"lane_width\": 4", "\"lane_width\": 1");
        let report = compare_fleet(&base, &scalar, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("dispatch") && n.contains("scalar")),
            "notes: {:?}",
            report.notes
        );
    }

    #[test]
    fn fleet_malformed_inputs_are_errors() {
        let good = fleet_doc(1000, "0", 240, "true");
        assert!(compare_fleet("nope", &good, MAX_WALL_RATIO).is_err());
        assert!(compare_fleet(&good, "{}", MAX_WALL_RATIO).is_err());
        let wrong = good.replace("tsad-bench-fleet/v2", "tsad-bench-kernels/v4");
        assert!(compare_fleet(&wrong, &good, MAX_WALL_RATIO).is_err());
    }

    #[test]
    fn a_real_fleet_run_compares_clean_against_itself() {
        use crate::experiments::fleet::{render_json, run as run_fleet, FleetBenchConfig};
        let rendered = render_json(&run_fleet(42, &FleetBenchConfig::smoke()).unwrap());
        let report = compare_fleet(&rendered, &rendered, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn a_real_bench_run_compares_clean_against_itself() {
        // end-to-end: generate a real (smoke-sized) document and push it
        // through the parser + gate
        let rendered = render_bench(&run_bench(42, &BenchConfig::smoke()).unwrap());
        let report = compare(&rendered, &rendered, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().all(|r| r.ratio == Some(1.0)));
    }

    // ─── ingest gate ────────────────────────────────────────────────────

    fn ingest_doc(parse_p99: u64, allocs: &str, http_rps: u64, errors: u64) -> String {
        format!(
            r#"{{
  "schema": "tsad-bench-ingest/v1",
  "seed": 42,
  "series": 4096,
  "batch_points": 64,
  "host_threads": 1,
  "dispatch": "avx2",
  "lane_width": 4,
  "budget_parse_ns": 5000,
  "budget_route_ns": 10000,
  "budget_overhead_ns": 100000,
  "stages": [
    {{"stage": "parse", "count": 512, "p50_ns": 900, "p95_ns": 1500, "p99_ns": {parse_p99}, "max_ns": 8000}},
    {{"stage": "route", "count": 512, "p50_ns": 200, "p95_ns": 400, "p99_ns": 511, "max_ns": 2000}},
    {{"stage": "push", "count": 512, "p50_ns": 3000, "p95_ns": 5000, "p99_ns": 8191, "max_ns": 20000}},
    {{"stage": "respond", "count": 512, "p50_ns": 800, "p95_ns": 1200, "p99_ns": 2047, "max_ns": 4000}},
    {{"stage": "request", "count": 512, "p50_ns": 6000, "p95_ns": 9000, "p99_ns": 16383, "max_ns": 40000}},
    {{"stage": "overhead", "count": 512, "p50_ns": 3000, "p95_ns": 5000, "p99_ns": 8191, "max_ns": 20000}}
  ],
  "allocs_per_request": {allocs},
  "loadgen": [
    {{"transport": "http", "requests": 2000, "errors": {errors}, "rps": {http_rps}, "p99_ns": 100000}},
    {{"transport": "tcp", "requests": 2000, "errors": 0, "rps": 90000, "p99_ns": 80000}}
  ]
}}"#
        )
    }

    #[test]
    fn identical_ingest_documents_pass() {
        let doc = ingest_doc(2047, "0", 50_000, 0);
        let report = compare_ingest(&doc, &doc).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        // one row per stage
        assert_eq!(report.rows.len(), 6);
        assert!(render(&report).contains("ingest_parse_p99"));
    }

    #[test]
    fn ingest_budget_bust_fails_absolutely() {
        let base = ingest_doc(2047, "0", 50_000, 0);
        // 9000 ns > budget_bound(5000) = 8191: busted even though the
        // baseline also carried it (absolute, not relative)
        let report = compare_ingest(&base, &ingest_doc(9000, "0", 50_000, 0)).unwrap();
        assert!(!report.passed());
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("parse") && f.contains("budget")),
            "failures: {:?}",
            report.failures
        );
        // right at the bucket bound passes
        let report = compare_ingest(&base, &ingest_doc(8191, "0", 50_000, 0)).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn ingest_alloc_gate_is_exact() {
        let base = ingest_doc(2047, "0", 50_000, 0);
        for bad in ["1", "null"] {
            let report = compare_ingest(&base, &ingest_doc(2047, bad, 50_000, 0)).unwrap();
            assert!(!report.passed(), "allocs {bad} passed");
            assert!(report
                .failures
                .iter()
                .any(|f| f.contains("allocs_per_request")));
        }
    }

    #[test]
    fn ingest_throughput_drop_fails_but_noise_passes() {
        let base = ingest_doc(2047, "0", 60_000, 0);
        // 2x drop fails
        let report = compare_ingest(&base, &ingest_doc(2047, "0", 30_000, 0)).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("throughput")));
        // -20% is inside the 1.5x margin
        let report = compare_ingest(&base, &ingest_doc(2047, "0", 48_000, 0)).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        // and a speedup obviously passes
        let report = compare_ingest(&base, &ingest_doc(2047, "0", 120_000, 0)).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn ingest_throughput_is_not_gated_across_thread_counts() {
        // TSAD_THREADS resizes the worker set; a 2x rps drop against a
        // baseline from a different thread count is noted, not failed
        // (the CI matrix compares 1- and 4-thread runs to one baseline).
        let base = ingest_doc(2047, "0", 60_000, 0);
        let fresh =
            ingest_doc(2047, "0", 30_000, 0).replace("\"host_threads\": 1", "\"host_threads\": 4");
        let report = compare_ingest(&base, &fresh).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("host_threads 1 (baseline) vs 4 (fresh)")),
            "notes: {:?}",
            report.notes
        );
        // errors still fail even when rps is not comparable
        let fresh =
            ingest_doc(2047, "0", 30_000, 7).replace("\"host_threads\": 1", "\"host_threads\": 4");
        let report = compare_ingest(&base, &fresh).unwrap();
        assert!(!report.passed());
    }

    #[test]
    fn ingest_loadgen_errors_fail_the_gate() {
        let base = ingest_doc(2047, "0", 50_000, 0);
        let report = compare_ingest(&base, &ingest_doc(2047, "0", 50_000, 3)).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("http") && f.contains("errors")));
    }

    #[test]
    fn ingest_schema_drift_and_geometry_changes_are_caught() {
        let base = ingest_doc(2047, "0", 50_000, 0);
        let v2 = base.replace("tsad-bench-ingest/v1", "tsad-bench-ingest/v2");
        let err = compare_ingest(&base, &v2).unwrap_err();
        assert!(err.contains("ingest-json"), "no fix hint in: {err}");
        let rescaled = base.replace("\"batch_points\": 64", "\"batch_points\": 128");
        let report = compare_ingest(&base, &rescaled).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("geometry")));
    }

    #[test]
    fn a_real_ingest_run_compares_clean_against_itself() {
        use crate::experiments::ingest_bench::{render_json, run, IngestBenchConfig};
        let rendered = render_json(&run(42, &IngestBenchConfig::smoke()).unwrap());
        let report = compare_ingest(&rendered, &rendered).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    // ─── wal gate ───────────────────────────────────────────────────────

    fn wal_doc(off_ns: u64, off_allocs: &str, bitwise: &str, torn: &str) -> String {
        format!(
            r#"{{
  "schema": "tsad-bench-wal/v1",
  "seed": 42,
  "batches": 2000,
  "batch_points": 64,
  "segment_bytes": 1048576,
  "policies": [
    {{"policy": "per-batch", "wall_ns_per_batch": 2000000, "points_per_sec": 32000, "fsyncs": 2001, "bytes_written": 3000000, "allocs_per_batch": 0}},
    {{"policy": "group", "wall_ns_per_batch": 400000, "points_per_sec": 160000, "fsyncs": 251, "bytes_written": 3000000, "allocs_per_batch": 0}},
    {{"policy": "off", "wall_ns_per_batch": {off_ns}, "points_per_sec": 8000000, "fsyncs": 3, "bytes_written": 3000000, "allocs_per_batch": {off_allocs}}}
  ],
  "recovery": {{"bitwise": {bitwise}, "replayed_batches": 41, "truncated_bytes": 7, "torn_tail_truncated": {torn}}}
}}"#
        )
    }

    #[test]
    fn identical_wal_documents_pass() {
        let doc = wal_doc(8000, "0", "true", "true");
        let report = compare_wal(&doc, &doc, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.rows.len(), 3);
        assert!(render(&report).contains("wal_append_off"));
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("replayed 41 batches")));
    }

    #[test]
    fn wal_wall_gate_applies_to_the_fsync_free_policy_only() {
        let base = wal_doc(8000, "0", "true", "true");
        // 2x on the off row fails
        let report =
            compare_wal(&base, &wal_doc(16000, "0", "true", "true"), MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("wal_append_off") && f.contains("2.00x")));
        // 2x on the fsync-bound rows is informational: runner disks vary
        let slow_fsync = base
            .replace(
                "\"wall_ns_per_batch\": 2000000",
                "\"wall_ns_per_batch\": 4000000",
            )
            .replace(
                "\"wall_ns_per_batch\": 400000",
                "\"wall_ns_per_batch\": 800000",
            );
        let report = compare_wal(&base, &slow_fsync, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn wal_alloc_gate_is_exact_per_policy() {
        let base = wal_doc(8000, "0", "true", "true");
        for bad in ["1", "null"] {
            let report =
                compare_wal(&base, &wal_doc(8000, bad, "true", "true"), MAX_WALL_RATIO).unwrap();
            assert!(!report.passed(), "allocs {bad} passed");
            assert!(report
                .failures
                .iter()
                .any(|f| f.contains("allocs_per_batch")));
        }
    }

    #[test]
    fn wal_recovery_contracts_are_absolute() {
        let base = wal_doc(8000, "0", "true", "true");
        // a baseline that also carries bitwise=false does not excuse it
        let bad = wal_doc(8000, "0", "false", "true");
        let report = compare_wal(&bad, &bad, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("bitwise")));
        let report =
            compare_wal(&base, &wal_doc(8000, "0", "true", "false"), MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("torn tail not repaired")));
        // zero replayed batches means the harness never exercised recovery
        let hollow = base.replace("\"replayed_batches\": 41", "\"replayed_batches\": 0");
        let report = compare_wal(&base, &hollow, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("zero batches")));
    }

    #[test]
    fn wal_geometry_change_and_schema_drift_are_caught() {
        let base = wal_doc(8000, "0", "true", "true");
        let rescaled = base.replace("\"batches\": 2000", "\"batches\": 100");
        let report = compare_wal(&base, &rescaled, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("geometry")));
        let v2 = base.replace("tsad-bench-wal/v1", "tsad-bench-wal/v2");
        let err = compare_wal(&base, &v2, MAX_WALL_RATIO).unwrap_err();
        assert!(err.contains("wal-json"), "no fix hint in: {err}");
    }

    #[test]
    fn wal_missing_policy_fails_the_gate() {
        let base = wal_doc(8000, "0", "true", "true");
        let gone = base.replace(
            "{\"policy\": \"group\", \"wall_ns_per_batch\": 400000, \"points_per_sec\": 160000, \"fsyncs\": 251, \"bytes_written\": 3000000, \"allocs_per_batch\": 0},\n",
            "",
        );
        let report = compare_wal(&base, &gone, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("wal_append_group") && f.contains("missing")));
    }

    #[test]
    fn a_real_wal_run_compares_clean_against_itself() {
        use crate::experiments::wal_bench::{render_json, run, WalBenchConfig};
        let rendered = render_json(&run(42, &WalBenchConfig::smoke()).unwrap());
        let report = compare_wal(&rendered, &rendered, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }
}
