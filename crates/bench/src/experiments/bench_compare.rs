//! `bench-compare` — perf-regression gating against the committed baseline.
//!
//! Reads two `BENCH_kernels.json` documents — the checked-in baseline and a
//! freshly generated run — and compares them kernel by kernel:
//!
//! * **Wall time**: a fresh single-thread median more than
//!   [`MAX_WALL_RATIO`]× the baseline fails the gate. The 1-thread column is
//!   compared because it is the least scheduler-sensitive number the
//!   document has; the generous threshold absorbs CI-runner noise while
//!   still catching real (2×-style) regressions.
//! * **Allocations** (for the [`GATED_KERNELS`] with allocation-free
//!   contracts): any increase over the baseline, any nonzero count, or a
//!   missing measurement fails. Allocation counts are exact and portable,
//!   so this gate has no noise margin at all.
//! * **Coverage**: a baseline kernel missing from the fresh run fails (a
//!   silently dropped kernel must not pass the gate); a fresh-only kernel
//!   is reported but allowed (that is what adding a kernel looks like).
//! * **Schema**: the two documents must carry the *same* schema string. A
//!   drift (e.g. a committed v3 baseline against a binary that now emits
//!   v4) is reported as an explicit mismatch with a regenerate hint rather
//!   than surfacing as a confusing missing-field failure downstream.
//!
//! The CLI (`repro -- bench-compare`) prints the per-kernel delta table and
//! exits nonzero when any check fails; CI runs it in the `bench-smoke` job
//! against a fresh run written to a temp path, so the committed baseline
//! stays authoritative.

use std::fmt::Write as _;

use crate::minijson::{parse, JsonValue};

/// Fresh wall time may be at most this multiple of the baseline.
pub const MAX_WALL_RATIO: f64 = 1.30;

/// Kernels with an allocation-free contract (`allocs_per_iter == 0`).
pub const GATED_KERNELS: [&str; 3] = ["sliding_dot_product", "stomp", "merlin"];

/// One kernel's baseline-vs-fresh numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Kernel name.
    pub name: String,
    /// Baseline median ns/iter at 1 thread (`None` if absent there).
    pub base_ns: Option<u64>,
    /// Fresh median ns/iter at 1 thread (`None` if absent there).
    pub fresh_ns: Option<u64>,
    /// `fresh / base` when both sides are present and the base is nonzero.
    pub ratio: Option<f64>,
    /// Baseline allocations per warm iteration (`None` = not measured).
    pub base_allocs: Option<u64>,
    /// Fresh allocations per warm iteration (`None` = not measured).
    pub fresh_allocs: Option<u64>,
}

/// The comparison outcome: every row plus the failed checks (empty =
/// the gate passes).
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Per-kernel rows, baseline order first, then fresh-only kernels.
    pub rows: Vec<CompareRow>,
    /// Human-readable failures; the gate passes iff this is empty.
    pub failures: Vec<String>,
    /// Non-fatal observations (fresh-only kernels, unmeasured columns).
    pub notes: Vec<String>,
}

impl CompareReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

struct KernelNumbers {
    name: String,
    ns_1t: Option<u64>,
    allocs: Option<u64>,
    dispatch: Option<String>,
    lane_width: Option<u64>,
}

struct KernelDoc {
    schema: String,
    kernels: Vec<KernelNumbers>,
}

fn extract_kernels(doc_name: &str, text: &str) -> Result<KernelDoc, String> {
    let doc = parse(text).map_err(|e| format!("{doc_name}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{doc_name}: missing \"schema\""))?;
    if !schema.starts_with("tsad-bench-kernels/") {
        return Err(format!("{doc_name}: unexpected schema {schema:?}"));
    }
    let kernels = doc
        .get("kernels")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{doc_name}: missing \"kernels\" array"))?;
    let kernels = kernels
        .iter()
        .map(|k| {
            let name = k
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{doc_name}: kernel without a name"))?
                .to_string();
            Ok(KernelNumbers {
                ns_1t: k
                    .get("median_ns_per_iter_1_thread")
                    .and_then(JsonValue::as_u64),
                allocs: k.get("allocs_per_iter").and_then(JsonValue::as_u64),
                dispatch: k
                    .get("dispatch")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string),
                lane_width: k.get("lane_width").and_then(JsonValue::as_u64),
                name,
            })
        })
        .collect::<Result<_, String>>()?;
    Ok(KernelDoc {
        schema: schema.to_string(),
        kernels,
    })
}

/// Compares two rendered documents. `max_ratio` is the wall-time gate
/// (pass [`MAX_WALL_RATIO`] outside tests). Errors are malformed inputs;
/// regression *failures* come back inside the report.
pub fn compare(baseline: &str, fresh: &str, max_ratio: f64) -> Result<CompareReport, String> {
    let base_doc = extract_kernels("baseline", baseline)?;
    let new_doc = extract_kernels("fresh", fresh)?;
    // A schema drift between the committed baseline and the freshly built
    // binary must surface as *this* message, not as a cryptic missing-field
    // parse error further down: the fix is always to regenerate the
    // committed document with the new binary.
    if base_doc.schema != new_doc.schema {
        return Err(format!(
            "schema mismatch: committed baseline is \"{}\" but the fresh run produced \"{}\" \
             — regenerate the committed BENCH_kernels.json with `repro -- bench-json`",
            base_doc.schema, new_doc.schema
        ));
    }
    let (base, new) = (base_doc.kernels, new_doc.kernels);
    let mut report = CompareReport::default();

    for b in &base {
        let f = new.iter().find(|k| k.name == b.name);
        let mut row = CompareRow {
            name: b.name.clone(),
            base_ns: b.ns_1t,
            fresh_ns: f.and_then(|k| k.ns_1t),
            ratio: None,
            base_allocs: b.allocs,
            fresh_allocs: f.and_then(|k| k.allocs),
        };
        let Some(f) = f else {
            report.failures.push(format!(
                "{}: present in baseline but missing from fresh run",
                b.name
            ));
            report.rows.push(row);
            continue;
        };
        match (b.ns_1t, f.ns_1t) {
            (Some(base_ns), Some(fresh_ns)) if base_ns > 0 => {
                let ratio = fresh_ns as f64 / base_ns as f64;
                row.ratio = Some(ratio);
                if ratio > max_ratio {
                    report.failures.push(format!(
                        "{}: wall-time regression {:.2}x (fresh {} ns vs baseline {} ns, limit {:.2}x)",
                        b.name, ratio, fresh_ns, base_ns, max_ratio
                    ));
                }
            }
            _ => report
                .notes
                .push(format!("{}: wall time not comparable", b.name)),
        }
        // A dispatch difference is not a regression (a different machine or
        // a TSAD_SIMD override legitimately changes it), but the wall-time
        // ratio then compares different code paths — say so.
        if b.dispatch != f.dispatch || b.lane_width != f.lane_width {
            report.notes.push(format!(
                "{}: SIMD dispatch differs — baseline {} ({} lanes) vs fresh {} ({} lanes)",
                b.name,
                b.dispatch.as_deref().unwrap_or("-"),
                b.lane_width.map_or_else(|| "-".into(), |w| w.to_string()),
                f.dispatch.as_deref().unwrap_or("-"),
                f.lane_width.map_or_else(|| "-".into(), |w| w.to_string()),
            ));
        }
        if GATED_KERNELS.contains(&b.name.as_str()) {
            match (b.allocs, f.allocs) {
                (_, Some(fresh_allocs)) if fresh_allocs > 0 => {
                    report.failures.push(format!(
                        "{}: allocs_per_iter is {} (contract: 0)",
                        b.name, fresh_allocs
                    ));
                }
                (Some(base_allocs), Some(fresh_allocs)) if fresh_allocs > base_allocs => {
                    report.failures.push(format!(
                        "{}: allocs_per_iter grew {} -> {}",
                        b.name, base_allocs, fresh_allocs
                    ));
                }
                (Some(_), None) => {
                    report.failures.push(format!(
                        "{}: allocs_per_iter not measured in fresh run (baseline has it)",
                        b.name
                    ));
                }
                _ => {}
            }
        }
        report.rows.push(row);
    }

    for f in &new {
        if !base.iter().any(|b| b.name == f.name) {
            report
                .notes
                .push(format!("{}: new kernel, not in baseline (allowed)", f.name));
            report.rows.push(CompareRow {
                name: f.name.clone(),
                base_ns: None,
                fresh_ns: f.ns_1t,
                ratio: None,
                base_allocs: None,
                fresh_allocs: f.allocs,
            });
        }
    }
    Ok(report)
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.to_string())
}

/// Renders the per-kernel delta table plus the failure/note lists.
pub fn render(report: &CompareReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>14} {:>14} {:>7} {:>12} {:>12}",
        "kernel", "base ns/iter", "fresh ns/iter", "ratio", "base allocs", "fresh allocs"
    );
    for r in &report.rows {
        let _ = writeln!(
            out,
            "{:<32} {:>14} {:>14} {:>7} {:>12} {:>12}",
            r.name,
            fmt_opt(r.base_ns),
            fmt_opt(r.fresh_ns),
            r.ratio
                .map_or_else(|| "-".to_string(), |x| format!("{x:.2}x")),
            fmt_opt(r.base_allocs),
            fmt_opt(r.fresh_allocs),
        );
    }
    for note in &report.notes {
        let _ = writeln!(out, "note: {note}");
    }
    if report.passed() {
        let _ = writeln!(
            out,
            "PASS: no wall-time regression beyond {MAX_WALL_RATIO:.2}x, allocation contracts hold"
        );
    } else {
        for failure in &report.failures {
            let _ = writeln!(out, "FAIL: {failure}");
        }
    }
    out
}

/// Reads both files and runs the gate; `Err` for unreadable/malformed
/// inputs or a failed gate (message includes the table).
pub fn run_files(baseline_path: &str, fresh_path: &str) -> Result<String, String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let fresh = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh run {fresh_path}: {e}"))?;
    let report = compare(&baseline, &fresh, MAX_WALL_RATIO)?;
    let table = render(&report);
    if report.passed() {
        Ok(table)
    } else {
        Err(table)
    }
}

// ─── fleet gate (BENCH_fleet.json, schema tsad-bench-fleet/v1) ──────────

/// Fresh `bytes_per_series` may be at most this multiple of the baseline
/// (the accounted footprint is deterministic, so the margin only covers
/// deliberate, reviewed growth of detector state).
pub const MAX_BYTES_PER_SERIES_RATIO: f64 = 1.10;

/// The fleet numbers one document contributes to the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetNumbers {
    /// Series count (geometry must match to compare at all).
    pub series: u64,
    /// Shard count.
    pub shards: u64,
    /// Median ns per full round at 1 thread.
    pub ns_1t: Option<u64>,
    /// Steady-state allocations per point (`None` = not measured).
    pub allocs_per_point: Option<u64>,
    /// Accounted bytes per resident series.
    pub bytes_per_series: Option<u64>,
    /// Whether suspend/resume reproduced bitwise.
    pub bitwise: Option<bool>,
}

fn extract_fleet(doc_name: &str, text: &str) -> Result<FleetNumbers, String> {
    let doc = parse(text).map_err(|e| format!("{doc_name}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{doc_name}: missing \"schema\""))?;
    if !schema.starts_with("tsad-bench-fleet/") {
        return Err(format!("{doc_name}: unexpected schema {schema:?}"));
    }
    let u64_field = |key: &str| doc.get(key).and_then(JsonValue::as_u64);
    Ok(FleetNumbers {
        series: u64_field("series").ok_or_else(|| format!("{doc_name}: missing \"series\""))?,
        shards: u64_field("shards").ok_or_else(|| format!("{doc_name}: missing \"shards\""))?,
        ns_1t: u64_field("median_ns_per_round_1_thread"),
        allocs_per_point: u64_field("allocs_per_point"),
        bytes_per_series: u64_field("bytes_per_series"),
        bitwise: doc
            .get("suspend_resume_bitwise")
            .and_then(JsonValue::as_bool),
    })
}

/// Compares two `BENCH_fleet.json` documents: geometry must match, wall
/// time is gated relatively (like the kernels), `allocs_per_point` is
/// gated to exactly zero, `bytes_per_series` to at most
/// [`MAX_BYTES_PER_SERIES_RATIO`]×, and `suspend_resume_bitwise` must be
/// `true` in the fresh run.
pub fn compare_fleet(baseline: &str, fresh: &str, max_ratio: f64) -> Result<CompareReport, String> {
    let base = extract_fleet("baseline", baseline)?;
    let new = extract_fleet("fresh", fresh)?;
    let mut report = CompareReport::default();

    if (base.series, base.shards) != (new.series, new.shards) {
        report.failures.push(format!(
            "fleet geometry changed: baseline {}x{} series/shards, fresh {}x{} \
             (regenerate the committed baseline)",
            base.series, base.shards, new.series, new.shards
        ));
    }
    let mut row = CompareRow {
        name: "fleet_ingest_round".to_string(),
        base_ns: base.ns_1t,
        fresh_ns: new.ns_1t,
        ratio: None,
        base_allocs: base.allocs_per_point,
        fresh_allocs: new.allocs_per_point,
    };
    match (base.ns_1t, new.ns_1t) {
        (Some(b), Some(f)) if b > 0 => {
            let ratio = f as f64 / b as f64;
            row.ratio = Some(ratio);
            if ratio > max_ratio {
                report.failures.push(format!(
                    "fleet ingest: wall-time regression {ratio:.2}x (fresh {f} ns vs \
                     baseline {b} ns per round, limit {max_ratio:.2}x)"
                ));
            }
        }
        _ => report
            .notes
            .push("fleet ingest: wall time not comparable".to_string()),
    }
    match new.allocs_per_point {
        Some(0) => {}
        Some(n) => report.failures.push(format!(
            "fleet ingest: allocs_per_point is {n} (contract: 0)"
        )),
        None if base.allocs_per_point.is_some() => report.failures.push(
            "fleet ingest: allocs_per_point not measured in fresh run (baseline has it)"
                .to_string(),
        ),
        None => report
            .notes
            .push("fleet ingest: allocs_per_point not measured on either side".to_string()),
    }
    match (base.bytes_per_series, new.bytes_per_series) {
        (Some(b), Some(f)) if b > 0 => {
            let ratio = f as f64 / b as f64;
            if ratio > MAX_BYTES_PER_SERIES_RATIO {
                report.failures.push(format!(
                    "fleet footprint: bytes_per_series grew {ratio:.2}x ({b} -> {f}, \
                     limit {MAX_BYTES_PER_SERIES_RATIO:.2}x)"
                ));
            }
        }
        _ => report
            .notes
            .push("fleet footprint: bytes_per_series not comparable".to_string()),
    }
    match new.bitwise {
        Some(true) => {}
        Some(false) => report
            .failures
            .push("fleet checkpoint: suspend_resume_bitwise is false".to_string()),
        None => report
            .failures
            .push("fleet checkpoint: suspend_resume_bitwise missing from fresh run".to_string()),
    }
    report.rows.push(row);
    Ok(report)
}

/// Reads both fleet documents and runs the gate; `Err` for
/// unreadable/malformed inputs or a failed gate.
pub fn run_fleet_files(baseline_path: &str, fresh_path: &str) -> Result<String, String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read fleet baseline {baseline_path}: {e}"))?;
    let fresh = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh fleet run {fresh_path}: {e}"))?;
    let report = compare_fleet(&baseline, &fresh, MAX_WALL_RATIO)?;
    let table = render(&report);
    if report.passed() {
        Ok(table)
    } else {
        Err(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::bench_json::{render as render_bench, run as run_bench, BenchConfig};

    fn doc_with_merlin(stomp_ns: u64, stomp_allocs: &str, merlin_allocs: &str) -> String {
        format!(
            r#"{{
  "schema": "tsad-bench-kernels/v4",
  "seed": 42,
  "threads": 4,
  "host_threads": 1,
  "kernels": [
    {{
      "name": "stomp",
      "params": "n=4096, m=128",
      "iters": 5,
      "median_ns_per_iter_1_thread": {stomp_ns},
      "median_ns_per_iter_4_threads": {stomp_ns},
      "allocs_per_iter": {stomp_allocs},
      "speedup": null,
      "dispatch": "avx2",
      "lane_width": 4,
      "obs": {{"schema": "tsad-obs/v1", "counters": {{}}, "gauges": {{}}, "histograms": {{}}}}
    }},
    {{
      "name": "merlin",
      "params": "n=800",
      "iters": 5,
      "median_ns_per_iter_1_thread": 1000000,
      "median_ns_per_iter_4_threads": 900000,
      "allocs_per_iter": {merlin_allocs},
      "speedup": null,
      "dispatch": "avx2",
      "lane_width": 4,
      "obs": {{"schema": "tsad-obs/v1", "counters": {{}}, "gauges": {{}}, "histograms": {{}}}}
    }}
  ]
}}"#
        )
    }

    fn doc(stomp_ns: u64, stomp_allocs: &str) -> String {
        doc_with_merlin(stomp_ns, stomp_allocs, "0")
    }

    #[test]
    fn identical_documents_pass() {
        let base = doc(22_000_000, "0");
        let report = compare(&base, &base, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.rows.len(), 2);
        assert!((report.rows[0].ratio.unwrap() - 1.0).abs() < 1e-12);
        let table = render(&report);
        assert!(table.contains("PASS"));
        assert!(table.contains("stomp"));
        assert!(table.contains("1.00x"));
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        let base = doc(22_000_000, "0");
        let slow = doc(44_000_000, "0"); // synthetic 2x wall-time regression
        let report = compare(&base, &slow, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("2.00x")),
            "failures: {:?}",
            report.failures
        );
        assert!(render(&report).contains("FAIL"));
        // and the mirror image (a 2x speedup) passes
        let report = compare(&slow, &base, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn small_jitter_within_the_margin_passes() {
        let base = doc(22_000_000, "0");
        let jitter = doc(26_000_000, "0"); // +18%, inside the 30% margin
        let report = compare(&base, &jitter, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn alloc_increase_on_a_gated_kernel_fails() {
        let base = doc(22_000_000, "0");
        for bad in ["1", "null"] {
            let report = compare(&base, &doc(22_000_000, bad), MAX_WALL_RATIO).unwrap();
            assert!(!report.passed(), "allocs {bad} passed");
            assert!(
                report
                    .failures
                    .iter()
                    .any(|f| f.contains("allocs_per_iter")),
                "failures: {:?}",
                report.failures
            );
        }
        // merlin is gated too since its buffers moved into scratch pools
        for bad in ["1", "null"] {
            let report = compare(
                &base,
                &doc_with_merlin(22_000_000, "0", bad),
                MAX_WALL_RATIO,
            )
            .unwrap();
            assert!(!report.passed(), "merlin allocs {bad} passed");
            assert!(report
                .failures
                .iter()
                .any(|f| f.contains("merlin") && f.contains("allocs_per_iter")));
        }
    }

    #[test]
    fn schema_drift_is_a_clear_error_not_a_parse_failure() {
        let base = doc(22_000_000, "0").replace("tsad-bench-kernels/v4", "tsad-bench-kernels/v3");
        let err = compare(&base, &doc(22_000_000, "0"), MAX_WALL_RATIO).unwrap_err();
        assert!(err.contains("schema mismatch"), "unhelpful error: {err}");
        assert!(err.contains("tsad-bench-kernels/v3"));
        assert!(err.contains("tsad-bench-kernels/v4"));
        assert!(err.contains("regenerate"), "no fix hint in: {err}");
    }

    #[test]
    fn dispatch_drift_is_noted_but_passes() {
        let base = doc(22_000_000, "0");
        let scalar = base
            .replace("\"dispatch\": \"avx2\"", "\"dispatch\": \"scalar\"")
            .replace("\"lane_width\": 4", "\"lane_width\": 1");
        let report = compare(&base, &scalar, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("dispatch") && n.contains("avx2") && n.contains("scalar")),
            "notes: {:?}",
            report.notes
        );
    }

    #[test]
    fn missing_kernel_fails_but_new_kernel_is_noted() {
        let base = doc(22_000_000, "0");
        let only_stomp = r#"{
  "schema": "tsad-bench-kernels/v4",
  "kernels": [
    {"name": "stomp", "median_ns_per_iter_1_thread": 22000000, "allocs_per_iter": 0}
  ]
}"#;
        let report = compare(&base, only_stomp, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("merlin")));
        // fresh-only kernels are allowed
        let report = compare(only_stomp, &base, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.notes.iter().any(|n| n.contains("merlin")));
    }

    #[test]
    fn malformed_inputs_are_errors_not_failures() {
        assert!(compare("not json", &doc(1, "0"), MAX_WALL_RATIO).is_err());
        assert!(compare(&doc(1, "0"), "{}", MAX_WALL_RATIO).is_err());
        let wrong_schema = doc(1, "0").replace("tsad-bench-kernels/v4", "something-else/v9");
        assert!(compare(&wrong_schema, &doc(1, "0"), MAX_WALL_RATIO).is_err());
    }

    fn fleet_doc(ns: u64, allocs: &str, bytes: u64, bitwise: &str) -> String {
        format!(
            r#"{{
  "schema": "tsad-bench-fleet/v1",
  "seed": 42,
  "series": 100000,
  "shards": 64,
  "median_ns_per_round_1_thread": {ns},
  "allocs_per_point": {allocs},
  "bytes_per_series": {bytes},
  "suspend_resume_bitwise": {bitwise}
}}"#
        )
    }

    #[test]
    fn identical_fleet_documents_pass() {
        let doc = fleet_doc(50_000_000, "0", 240, "true");
        let report = compare_fleet(&doc, &doc, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.rows.len(), 1);
        assert!((report.rows[0].ratio.unwrap() - 1.0).abs() < 1e-12);
        assert!(render(&report).contains("fleet_ingest_round"));
    }

    #[test]
    fn fleet_wall_regression_and_speedup_behave_like_kernels() {
        let base = fleet_doc(50_000_000, "0", 240, "true");
        let slow = fleet_doc(100_000_000, "0", 240, "true");
        let report = compare_fleet(&base, &slow, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("2.00x")));
        let report = compare_fleet(&slow, &base, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn fleet_alloc_gate_is_exact() {
        let base = fleet_doc(1000, "0", 240, "true");
        for bad in ["1", "null"] {
            let report =
                compare_fleet(&base, &fleet_doc(1000, bad, 240, "true"), MAX_WALL_RATIO).unwrap();
            assert!(!report.passed(), "allocs {bad} passed");
            assert!(report
                .failures
                .iter()
                .any(|f| f.contains("allocs_per_point")));
        }
    }

    #[test]
    fn fleet_footprint_growth_fails_but_margin_passes() {
        let base = fleet_doc(1000, "0", 240, "true");
        // +8% is inside the 10% margin
        let report =
            compare_fleet(&base, &fleet_doc(1000, "0", 259, "true"), MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        // +20% is not
        let report =
            compare_fleet(&base, &fleet_doc(1000, "0", 288, "true"), MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("bytes_per_series")));
    }

    #[test]
    fn fleet_bitwise_flag_must_hold() {
        let base = fleet_doc(1000, "0", 240, "true");
        let report =
            compare_fleet(&base, &fleet_doc(1000, "0", 240, "false"), MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("suspend_resume_bitwise")));
    }

    #[test]
    fn fleet_geometry_change_fails_the_gate() {
        let base = fleet_doc(1000, "0", 240, "true");
        let rescaled = base.replace("\"series\": 100000", "\"series\": 50000");
        let report = compare_fleet(&base, &rescaled, MAX_WALL_RATIO).unwrap();
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("geometry")));
    }

    #[test]
    fn fleet_malformed_inputs_are_errors() {
        let good = fleet_doc(1000, "0", 240, "true");
        assert!(compare_fleet("nope", &good, MAX_WALL_RATIO).is_err());
        assert!(compare_fleet(&good, "{}", MAX_WALL_RATIO).is_err());
        let wrong = good.replace("tsad-bench-fleet/v1", "tsad-bench-kernels/v4");
        assert!(compare_fleet(&wrong, &good, MAX_WALL_RATIO).is_err());
    }

    #[test]
    fn a_real_fleet_run_compares_clean_against_itself() {
        use crate::experiments::fleet::{render_json, run as run_fleet, FleetBenchConfig};
        let rendered = render_json(&run_fleet(42, &FleetBenchConfig::smoke()).unwrap());
        let report = compare_fleet(&rendered, &rendered, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn a_real_bench_run_compares_clean_against_itself() {
        // end-to-end: generate a real (smoke-sized) document and push it
        // through the parser + gate
        let rendered = render_bench(&run_bench(42, &BenchConfig::smoke()).unwrap());
        let report = compare(&rendered, &rendered, MAX_WALL_RATIO).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().all(|r| r.ratio == Some(1.0)));
    }
}
