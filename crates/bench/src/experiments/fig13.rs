//! **Figure 13** — invariance demonstration: Telemanom vs Discord on a
//! one-minute ECG with a single PVC, clean and with added Gaussian noise
//! (§4.2).
//!
//! Paper shape to reproduce: on clean data both methods peak at the
//! anomaly (Discord with more "discrimination"); with significant noise,
//! Discord still peaks in the right place while Telemanom peaks in the
//! wrong location.

use tsad_core::{Dataset, Result};
use tsad_detectors::matrix_profile::DiscordDetector;
use tsad_detectors::telemanom::Telemanom;
use tsad_detectors::threshold::discrimination_ratio;
use tsad_detectors::Detector;
use tsad_eval::report::{fmt, sparkline, TextTable};
use tsad_eval::ucr::ucr_correct;
use tsad_synth::physio::{fig13_ecg_with, PhysioConfig};

/// One method's outcome on one noise level.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Detector name.
    pub method: &'static str,
    /// Arg-max of the score over the test region.
    pub peak: usize,
    /// Whether the peak is within the UCR tolerance of the PVC.
    pub correct: bool,
    /// Discrimination ratio (peak / mean of the score).
    pub discrimination: f64,
    /// The score series (for plotting).
    pub score: Vec<f64>,
}

/// Fig. 13 at one noise level.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Gaussian noise sigma added to the ECG.
    pub noise_sigma: f64,
    /// Telemanom outcome.
    pub telemanom: MethodOutcome,
    /// Discord outcome.
    pub discord: MethodOutcome,
}

/// The full experiment: clean + noisy (and optionally a sweep).
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// One row per noise level.
    pub rows: Vec<Fig13Row>,
}

fn run_method(
    detector: &dyn Detector,
    name: &'static str,
    dataset: &Dataset,
) -> Result<MethodOutcome> {
    let score = detector.score(dataset.series(), dataset.train_len())?;
    let test = &score[dataset.train_len()..];
    let rel_peak = tsad_core::stats::argmax(test)?;
    let peak = dataset.train_len() + rel_peak;
    let correct = ucr_correct(peak, dataset.labels())?;
    let discrimination = discrimination_ratio(test)?;
    Ok(MethodOutcome {
        method: name,
        peak,
        correct,
        discrimination,
        score,
    })
}

/// Runs Fig. 13 at the given noise levels (the paper uses clean + one
/// noisy level; the ablation sweeps more) at the full 12 000-sample,
/// one-minute recording length.
pub fn run(seed: u64, noise_levels: &[f64]) -> Result<Fig13> {
    run_sized(seed, noise_levels, 12_000, 55, 3000)
}

/// [`run`] with explicit recording length / PVC beat / train prefix —
/// debug-mode tests use a shorter recording (STOMP is quadratic).
pub fn run_sized(
    seed: u64,
    noise_levels: &[f64],
    n: usize,
    pvc_beat: usize,
    train_len: usize,
) -> Result<Fig13> {
    // The forecaster gets one full beat of history so it can model the
    // periodic ECG (the original LSTM sees a comparable input window). The
    // discord uses the raw-Euclidean metric of Yankov et al.'s disk-aware
    // discords — on a spiky ECG, z-normalization would let flat diastolic
    // windows (pure noise after normalization) dominate the profile.
    let telemanom = Telemanom {
        order: 160,
        ..Telemanom::default()
    };
    let discord = DiscordDetector::euclidean(160);
    let config = PhysioConfig {
        n,
        pvc_beat: Some(pvc_beat),
        ..PhysioConfig::default()
    };
    // Noise levels are independent replicates (each regenerates its own
    // dataset), and within a level the two methods never interact — fan the
    // levels out and run the pair with `join`. Results come back in
    // noise-level order by construction.
    let rows = tsad_parallel::par_map_indexed(noise_levels, |_, &sigma| -> Result<Fig13Row> {
        let dataset = fig13_ecg_with(seed, sigma, &config, train_len);
        let (t, d) = tsad_parallel::join(
            || run_method(&telemanom, "Telemanom (AR+NDT)", &dataset),
            || run_method(&discord, "Discord", &dataset),
        );
        Ok(Fig13Row {
            noise_sigma: sigma,
            telemanom: t?,
            discord: d?,
        })
    });
    Ok(Fig13 {
        rows: rows.into_iter().collect::<Result<Vec<_>>>()?,
    })
}

/// Renders the score traces and the outcome table.
pub fn render(fig: &Fig13) -> String {
    let mut out = String::from("Fig. 13 — Telemanom vs Discord on 1-minute ECG with one PVC:\n");
    let mut t = TextTable::new(vec![
        "noise σ",
        "method",
        "peak at",
        "correct?",
        "discrimination",
    ]);
    for row in &fig.rows {
        for m in [&row.telemanom, &row.discord] {
            t.row(vec![
                fmt(row.noise_sigma),
                m.method.to_string(),
                m.peak.to_string(),
                if m.correct {
                    "yes".to_string()
                } else {
                    "NO".to_string()
                },
                fmt(m.discrimination),
            ]);
        }
    }
    out.push_str(&t.render());
    if let Some(first) = fig.rows.first() {
        out.push_str("clean scores —\n  telemanom: ");
        out.push_str(&sparkline(&first.telemanom.score, 100));
        out.push_str("\n  discord:   ");
        out.push_str(&sparkline(&first.discord.score, 100));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_both_correct_noisy_discord_survives() {
        // STOMP is quadratic: tests use a 5000-sample recording (the
        // `repro` binary runs the full-size figure). σ = 0.8 is the first
        // level of the sweep where the AR forecaster's peak leaves the PVC
        // at this seed; the discord's peak survives through σ = 1.0.
        let f = run_sized(42, &[0.0, 0.8], 5000, 22, 1500).unwrap();
        let clean = &f.rows[0];
        assert!(
            clean.telemanom.correct,
            "clean Telemanom peak {}",
            clean.telemanom.peak
        );
        assert!(
            clean.discord.correct,
            "clean Discord peak {}",
            clean.discord.peak
        );
        let noisy = &f.rows[1];
        assert!(
            noisy.discord.correct,
            "noisy Discord peak {}",
            noisy.discord.peak
        );
        assert!(
            !noisy.telemanom.correct,
            "noise must break the forecaster's peak (got peak {})",
            noisy.telemanom.peak
        );
        // both methods lose discrimination under noise; the discord's peak
        // nevertheless stays in the right place (the paper's reading)
        assert!(noisy.discord.discrimination < clean.discord.discrimination);
        assert!(noisy.telemanom.discrimination < clean.telemanom.discrimination);
        let text = render(&f);
        assert!(text.contains("discrimination"));
    }
}
