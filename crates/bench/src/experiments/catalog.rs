//! **catalog** — the full detector registry run through the paper's
//! Table-1 setting: every [`DetectorRegistry`] entry, at its default
//! parameters, over the simulated Yahoo benchmark, scored by the UCR
//! convention (argmax inside the labeled region, ±100 slop).
//!
//! The point is the paper's triviality argument at catalog scale: the
//! one-liner row is the *bar*, and the table shows which of the other
//! twenty-odd detectors clear it. On a benchmark where `abs(diff) >
//! c·movstd + b` wins, sophistication buys little — exactly §2.2's
//! "illusion of progress".
//!
//! Hit counts are exact integers, deterministic in the seed, so
//! `BENCH_catalog.json` is gated like `BENCH_faults.json`: a vanished
//! (detector, family) row or a changed hit count fails the `catalog-smoke`
//! CI job outright; per-detector wall time is gated at the usual
//! [`gate::MAX_WALL_RATIO`] above the [`WALL_NOISE_FLOOR_NS`] noise
//! floor. The scoring loop is deliberately sequential
//! so wall numbers do not depend on `TSAD_THREADS` — the smoke job runs
//! the same gate at 1 and 4 threads.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use tsad_core::{Labels, Result};
use tsad_detectors::registry::{DetectorRegistry, Params};
use tsad_eval::report::TextTable;
use tsad_synth::yahoo::{self, Family};

use crate::gate::{self, CompareReport, CompareRow};
use crate::minijson::JsonValue;

/// UCR-style slop appended to each labeled region (the archive convention
/// the paper scores by).
pub const SLOP: usize = 100;

/// Train prefix handed to every detector (the simulated series are 1400
/// points; the real benchmark's splits hover around this fraction).
pub const TRAIN_LEN: usize = 350;

/// Per-detector walls below this (summed over families) are too small to
/// ratio-gate honestly — a cheap baseline finishes the whole grid in a
/// couple of milliseconds, where a page fault or scheduler tick reads as
/// a 2x "regression". [`compare`] notes such rows instead of gating them;
/// the expensive detectors (matrix profile, MERLIN, HOT SAX, 1-NN,
/// isolation forest) are all far above the floor and stay gated.
pub const WALL_NOISE_FLOOR_NS: u64 = 20_000_000;

/// Experiment size knobs.
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Series per Yahoo family (the full benchmark is 67/100/100/100).
    pub per_family: usize,
}

impl CatalogConfig {
    /// CI scale: small enough that the committed baseline regenerates in
    /// seconds on any machine, large enough that hit counts separate the
    /// detectors.
    pub fn ci() -> Self {
        Self { per_family: 4 }
    }
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self { per_family: 8 }
    }
}

/// One (detector, family) cell. `hits`/`series` are exact-gated; `wall_ns`
/// is ratio-gated per detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogRow {
    /// Registry id (`DetectorEntry::id`).
    pub detector: String,
    /// Yahoo family (`A1`..`A4`).
    pub family: String,
    /// Series whose score argmax landed inside a labeled region ± slop.
    pub hits: usize,
    /// Series scored in this cell.
    pub series: usize,
    /// Wall time for the whole cell, sequential, in ns.
    pub wall_ns: u64,
}

/// Everything the experiment produces.
#[derive(Debug, Clone)]
pub struct CatalogExperiment {
    /// Seed the benchmark was generated from.
    pub seed: u64,
    /// Series per family.
    pub per_family: usize,
    /// Registry size when the experiment ran (docs-drift cross-check).
    pub detector_count: usize,
    /// One row per registry entry × family, registry order.
    pub rows: Vec<CatalogRow>,
}

fn is_hit(pred: usize, labels: &Labels) -> bool {
    labels
        .regions()
        .iter()
        .any(|r| pred + SLOP >= r.start && pred < r.end + SLOP)
}

/// Runs the full catalog × family grid. Deterministic in `seed` (wall
/// times aside), independent of `TSAD_THREADS` by construction.
pub fn run(seed: u64, cfg: &CatalogConfig) -> Result<CatalogExperiment> {
    let reg = DetectorRegistry::standard();
    let mut rows = Vec::new();
    for entry in reg.entries() {
        for family in Family::all() {
            let count = cfg.per_family.min(family.size());
            let started = Instant::now();
            let mut hits = 0;
            for index in 1..=count {
                let series = yahoo::generate(seed, family, index);
                let det = entry.build(&Params::new())?;
                // a detector refusing a series (e.g. the seasonal methods
                // on an aperiodic signal) is a deterministic miss, not an
                // experiment failure
                let Ok(scores) = det.score(series.dataset.series(), TRAIN_LEN) else {
                    continue;
                };
                let pred = scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if is_hit(pred, series.dataset.labels()) {
                    hits += 1;
                }
            }
            rows.push(CatalogRow {
                detector: entry.id.to_string(),
                family: family.to_string(),
                hits,
                series: count,
                wall_ns: started.elapsed().as_nanos() as u64,
            });
        }
    }
    Ok(CatalogExperiment {
        seed,
        per_family: cfg.per_family,
        detector_count: reg.len(),
        rows,
    })
}

/// Total hits/series for one detector across families.
fn totals(exp: &CatalogExperiment, detector: &str) -> (usize, usize) {
    exp.rows
        .iter()
        .filter(|r| r.detector == detector)
        .fold((0, 0), |(h, s), r| (h + r.hits, s + r.series))
}

/// Renders the human-readable table: detectors as rows, families as
/// columns, the one-liner triviality bar called out at the bottom.
pub fn render(exp: &CatalogExperiment) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Catalog × Yahoo triviality grid — {} detectors, {} series/family (seed {})",
        exp.detector_count, exp.per_family, exp.seed
    );
    let _ = writeln!(
        out,
        "(UCR hits: argmax inside the labeled region ± {SLOP}; `oneliner` is the triviality bar)"
    );
    let (bar_hits, bar_series) = totals(exp, "oneliner");
    let mut t = TextTable::new(vec!["detector", "A1", "A2", "A3", "A4", "total", "vs bar"]);
    let mut detectors: Vec<&str> = exp.rows.iter().map(|r| r.detector.as_str()).collect();
    detectors.dedup();
    for det in detectors {
        let cell = |fam: &str| {
            exp.rows
                .iter()
                .find(|r| r.detector == det && r.family == fam)
                .map_or("-".to_string(), |r| format!("{}/{}", r.hits, r.series))
        };
        let (h, s) = totals(exp, det);
        let vs = if det == "oneliner" {
            "= bar".to_string()
        } else if h >= bar_hits {
            "clears".to_string()
        } else {
            "below".to_string()
        };
        t.row(vec![
            det.to_string(),
            cell("A1"),
            cell("A2"),
            cell("A3"),
            cell("A4"),
            format!("{h}/{s}"),
            vs,
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "triviality bar (one-liner): {bar_hits}/{bar_series} — detectors at or above it add \
         nothing this benchmark can measure"
    );
    out
}

/// Renders the machine-readable `BENCH_catalog.json` document.
pub fn render_json(exp: &CatalogExperiment) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"tsad-bench-catalog/v1\",");
    let _ = writeln!(out, "  \"seed\": {},", exp.seed);
    let _ = writeln!(out, "  \"per_family\": {},", exp.per_family);
    let _ = writeln!(out, "  \"detectors\": {},", exp.detector_count);
    out.push_str("  \"rows\": [\n");
    for (i, r) in exp.rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"detector\": \"{}\", \"family\": \"{}\", \"hits\": {}, \
             \"series\": {}, \"wall_ns\": {}}}",
            r.detector, r.family, r.hits, r.series, r.wall_ns
        );
        out.push_str(if i + 1 == exp.rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn extract_rows(doc_name: &str, doc: &JsonValue) -> std::result::Result<Vec<CatalogRow>, String> {
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{doc_name}: missing \"rows\" array"))?;
    rows.iter()
        .map(|r| {
            let field_str = |k: &str| {
                r.get(k)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("{doc_name}: row missing string {k:?}"))
            };
            let field_u64 = |k: &str| {
                r.get(k)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("{doc_name}: row missing integer {k:?}"))
            };
            Ok(CatalogRow {
                detector: field_str("detector")?,
                family: field_str("family")?,
                hits: field_u64("hits")? as usize,
                series: field_u64("series")? as usize,
                wall_ns: field_u64("wall_ns")?,
            })
        })
        .collect()
}

/// Compares a committed baseline against a fresh run:
///
/// * every baseline (detector, family) row must exist in the fresh run
///   with **identical** `hits` and `series` (scores are deterministic, so
///   there is no noise margin) — fresh-only rows are fine, that is what a
///   catalog addition looks like;
/// * per-detector wall time (summed over families) must stay within
///   [`gate::MAX_WALL_RATIO`] — unless both sides sit under
///   [`WALL_NOISE_FLOOR_NS`], where the ratio measures scheduler jitter
///   rather than the detector and is only noted.
pub fn compare(baseline: &str, fresh: &str) -> std::result::Result<CompareReport, String> {
    let (base_doc, fresh_doc) = gate::parse_same_schema(
        baseline,
        fresh,
        "tsad-bench-catalog/",
        "cargo run --release -p tsad-bench --bin repro -- catalog-json",
    )?;
    let base = extract_rows("baseline", &base_doc)?;
    let new = extract_rows("fresh", &fresh_doc)?;
    let mut report = CompareReport::default();

    for b in &base {
        match new
            .iter()
            .find(|f| f.detector == b.detector && f.family == b.family)
        {
            None => report.failures.push(format!(
                "row vanished from fresh run: detector={} family={}",
                b.detector, b.family
            )),
            Some(f) if (f.hits, f.series) != (b.hits, b.series) => report.failures.push(format!(
                "hit count changed: detector={} family={}: baseline {}/{} vs fresh {}/{}",
                b.detector, b.family, b.hits, b.series, f.hits, f.series
            )),
            Some(_) => {}
        }
    }
    for f in &new {
        if !base
            .iter()
            .any(|b| b.detector == f.detector && b.family == f.family)
        {
            report.notes.push(format!(
                "new row (not in baseline): detector={} family={}",
                f.detector, f.family
            ));
        }
    }

    // wall ratio per detector, families summed: single cells are too small
    // to gate without noise
    let mut base_wall: BTreeMap<&str, u64> = BTreeMap::new();
    for b in &base {
        *base_wall.entry(b.detector.as_str()).or_default() += b.wall_ns;
    }
    let mut fresh_wall: BTreeMap<&str, u64> = BTreeMap::new();
    for f in &new {
        *fresh_wall.entry(f.detector.as_str()).or_default() += f.wall_ns;
    }
    for (det, &base_ns) in &base_wall {
        let fresh_ns = fresh_wall.get(det).copied();
        // below the noise floor the ratio is dominated by scheduler and
        // page-fault jitter, not the detector: note it, never gate it
        if base_ns < WALL_NOISE_FLOOR_NS && fresh_ns.is_some_and(|f| f < WALL_NOISE_FLOOR_NS) {
            report.notes.push(format!(
                "{det}: wall under the {} ms noise floor on both sides; ratio not gated",
                WALL_NOISE_FLOOR_NS / 1_000_000
            ));
            report.rows.push(CompareRow {
                name: (*det).to_string(),
                base_ns: Some(base_ns),
                fresh_ns,
                ratio: fresh_ns.map(|f| f as f64 / base_ns as f64),
                base_allocs: None,
                fresh_allocs: None,
            });
            continue;
        }
        let ratio = gate::gate_wall_ratio(
            &mut report,
            det,
            Some(base_ns),
            fresh_ns,
            gate::MAX_WALL_RATIO,
        );
        report.rows.push(CompareRow {
            name: (*det).to_string(),
            base_ns: Some(base_ns),
            fresh_ns,
            ratio,
            base_allocs: None,
            fresh_allocs: None,
        });
    }
    Ok(report)
}

/// File-based gate for the CLI: reads both documents, returns the rendered
/// report (as `Err` when the gate fails).
pub fn run_files(baseline_path: &str, fresh_path: &str) -> std::result::Result<String, String> {
    let baseline =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let fresh =
        std::fs::read_to_string(fresh_path).map_err(|e| format!("read {fresh_path}: {e}"))?;
    let report = compare(&baseline, &fresh)?;
    let rendered = gate::render(&report);
    if report.passed() {
        Ok(rendered)
    } else {
        Err(rendered)
    }
}

/// Generates `DETECTORS.md` from the live registry — the committed copy is
/// CI-diffed against this output, so the docs cannot drift from the code.
pub fn detectors_md() -> String {
    let reg = DetectorRegistry::standard();
    let mut out = String::new();
    out.push_str("# Detector catalog\n\n");
    out.push_str(
        "<!-- GENERATED FILE — do not edit. Regenerate with:\n     \
         cargo run --release -p tsad-bench --bin repro -- detectors-md\n     \
         CI (docs-drift) fails if this file does not match the registry. -->\n\n",
    );
    let _ = writeln!(
        out,
        "The registry (`tsad_detectors::DetectorRegistry::standard()`) exposes \
         **{} detectors**. Every entry builds from the same table that drives \
         the batch experiments, the streaming engine (`tsad-stream`'s \
         `StreamRegistry` — native port or batch-adapter per the *streaming* \
         column), checkpoint name-fingerprints, and `tsad-fleet` spawning.\n",
        reg.len()
    );
    out.push_str("| id | name | category | cost | streaming | summary |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for e in reg.entries() {
        let _ = writeln!(
            out,
            "| `{}` | {} | {} | {} | {} | {} |",
            e.id,
            e.display,
            e.category.as_str(),
            e.cost.as_str(),
            e.streaming.label(),
            e.summary
        );
    }
    out.push_str("\n## Parameters\n");
    for e in reg.entries() {
        let _ = writeln!(out, "\n### `{}` — {}\n", e.id, e.display);
        if e.params.is_empty() {
            out.push_str("No parameters.\n");
            continue;
        }
        out.push_str("| parameter | type | default | description |\n");
        out.push_str("|---|---|---|---|\n");
        for p in e.params {
            let _ = writeln!(
                out,
                "| `{}` | {} | {} | {} |",
                p.name,
                p.default.type_name(),
                p.default.render(),
                p.doc
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CatalogExperiment {
        run(7, &CatalogConfig { per_family: 1 }).unwrap()
    }

    #[test]
    fn grid_covers_every_entry_and_family() {
        let exp = tiny();
        assert_eq!(exp.rows.len(), exp.detector_count * 4);
        assert!(exp.rows.iter().all(|r| r.hits <= r.series && r.series == 1));
    }

    #[test]
    fn hit_counts_are_deterministic_and_json_roundtrips_exactly() {
        let a = tiny();
        let b = tiny();
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!((x.hits, x.series), (y.hits, y.series), "{}", x.detector);
        }
        let json = render_json(&a);
        let report = compare(&json, &json).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn compare_fails_on_changed_hits_and_vanished_rows() {
        let exp = tiny();
        let json = render_json(&exp);
        let mut tampered = exp.clone();
        tampered.rows[0].hits += 1;
        let report = compare(&json, &render_json(&tampered)).unwrap();
        assert!(!report.passed());

        let mut shrunk = exp.clone();
        shrunk.rows.remove(0);
        let report = compare(&json, &render_json(&shrunk)).unwrap();
        assert!(
            report.failures.iter().any(|f| f.contains("vanished")),
            "{:?}",
            report.failures
        );
    }

    fn one_row(wall_ns: u64) -> CatalogExperiment {
        CatalogExperiment {
            seed: 7,
            per_family: 1,
            detector_count: 1,
            rows: vec![CatalogRow {
                detector: "x".to_string(),
                family: "A1".to_string(),
                hits: 1,
                series: 1,
                wall_ns,
            }],
        }
    }

    #[test]
    fn wall_ratio_gates_above_the_noise_floor_and_notes_below_it() {
        // below the floor on both sides: an arbitrarily bad ratio is a
        // note, not a failure
        let report = compare(
            &render_json(&one_row(1_000_000)),
            &render_json(&one_row(10_000_000)),
        )
        .unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        assert!(
            report.notes.iter().any(|n| n.contains("noise floor")),
            "{:?}",
            report.notes
        );

        // above the floor: the same 10x ratio fails the gate
        let report = compare(
            &render_json(&one_row(WALL_NOISE_FLOOR_NS)),
            &render_json(&one_row(WALL_NOISE_FLOOR_NS * 10)),
        )
        .unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("wall-time regression")),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn detectors_md_reflects_the_registry() {
        let md = detectors_md();
        let reg = DetectorRegistry::standard();
        assert!(md.contains(&format!("**{} detectors**", reg.len())));
        for e in reg.entries() {
            assert!(md.contains(&format!("| `{}` |", e.id)), "{}", e.id);
        }
        assert!(md.contains("GENERATED FILE"));
    }
}
