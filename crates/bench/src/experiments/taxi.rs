//! **Figure 8** — the NYC-taxi discord profile versus the five official
//! labels.
//!
//! The paper's finding: the discord score peaks at the five official
//! anomalies *and* at ≥ 7 further events that are "equally worthy of being
//! labeled anomalies" — so an algorithm reported as producing false
//! positives may actually have performed very well.

use tsad_core::Result;
use tsad_detectors::matrix_profile::stomp;
use tsad_detectors::threshold::top_k_peaks;
use tsad_eval::report::{sparkline, TextTable};
use tsad_synth::numenta::{nyc_taxi, TaxiData, TAXI_SAMPLES_PER_DAY};

/// One annotated discord peak.
#[derive(Debug, Clone)]
pub struct AnnotatedPeak {
    /// Day index of the peak.
    pub day: usize,
    /// Peak discord value.
    pub value: f64,
    /// The injected event at that day, if any.
    pub event: Option<String>,
    /// Whether the event is officially labeled.
    pub official: bool,
}

/// Fig. 8 result.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// The underlying data.
    pub taxi: TaxiData,
    /// Discord score per point.
    pub discord_score: Vec<f64>,
    /// Top-12 peaks, annotated against the injected events.
    pub peaks: Vec<AnnotatedPeak>,
    /// How many officially labeled events appear among the peaks.
    pub official_hits: usize,
    /// How many *unlabeled but real* events appear among the peaks — the
    /// paper's headline (≥ 7).
    pub unlabeled_hits: usize,
    /// Peaks matching no injected event at all (true false positives).
    pub spurious: usize,
}

/// Runs Fig. 8. `window_days` is the discord subsequence length in days
/// (1 in the figure; 2 for the sensitivity ablation).
pub fn fig8(seed: u64, window_days: usize) -> Result<Fig8> {
    let taxi = nyc_taxi(seed);
    let m = window_days.max(1) * TAXI_SAMPLES_PER_DAY;
    let mp = stomp(taxi.dataset.values(), m)?;
    let discord_score = mp.point_scores(taxi.dataset.len());
    let peaks = top_k_peaks(&discord_score, 12, 2 * m);

    let mut annotated = Vec::with_capacity(peaks.len());
    let mut official_days = std::collections::HashSet::new();
    let mut unlabeled_days = std::collections::HashSet::new();
    let mut spurious = 0;
    for p in &peaks {
        let day = p.index / TAXI_SAMPLES_PER_DAY;
        // a window-length peak may start up to a window before the event day
        let event = taxi
            .events
            .iter()
            .find(|e| day.abs_diff(e.day) <= window_days)
            .cloned();
        match &event {
            Some(e) if e.official => {
                official_days.insert(e.day);
            }
            Some(e) => {
                unlabeled_days.insert(e.day);
            }
            None => spurious += 1,
        }
        annotated.push(AnnotatedPeak {
            day,
            value: p.value,
            event: event.as_ref().map(|e| e.name.to_string()),
            official: event.as_ref().is_some_and(|e| e.official),
        });
    }
    Ok(Fig8 {
        taxi,
        discord_score,
        peaks: annotated,
        official_hits: official_days.len(),
        unlabeled_hits: unlabeled_days.len(),
        spurious,
    })
}

/// Renders the Fig. 8 peak table and score sparkline.
pub fn render(fig: &Fig8) -> String {
    let mut out = String::from("Fig. 8 — NYC taxi discord score vs official labels:\n");
    out.push_str("  demand:  ");
    out.push_str(&sparkline(fig.taxi.dataset.values(), 107));
    out.push('\n');
    out.push_str("  discord: ");
    out.push_str(&sparkline(&fig.discord_score, 107));
    out.push('\n');
    let mut t = TextTable::new(vec!["rank", "day", "event", "officially labeled?"]);
    for (rank, p) in fig.peaks.iter().enumerate() {
        t.row(vec![
            (rank + 1).to_string(),
            p.day.to_string(),
            p.event
                .clone()
                .unwrap_or_else(|| "(no injected event)".to_string()),
            if p.event.is_none() {
                "-".to_string()
            } else if p.official {
                "yes".to_string()
            } else {
                "NO — unlabeled true event".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "official events found: {} / 5; unlabeled true events found: {}; spurious: {}\n",
        fig.official_hits, fig.unlabeled_hits, fig.spurious
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discord_surfaces_unlabeled_events() {
        let f = fig8(42, 1).unwrap();
        assert!(
            f.official_hits >= 4,
            "official events found: {}",
            f.official_hits
        );
        assert!(
            f.unlabeled_hits >= 5,
            "the paper's point: many unlabeled true events rank as top discords, got {}",
            f.unlabeled_hits
        );
        assert!(f.spurious <= 2, "few spurious peaks: {}", f.spurious);
        let text = render(&f);
        assert!(text.contains("unlabeled true event"), "{text}");
    }

    #[test]
    fn two_day_window_still_works() {
        let f = fig8(42, 2).unwrap();
        assert!(f.official_hits + f.unlabeled_hits >= 8);
    }
}
