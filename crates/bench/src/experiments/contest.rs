//! **§3** — the UCR-style archive contest: build the archive, run a panel
//! of detectors, and report the plain location accuracy the paper argues
//! for.

use tsad_archive::builder::{build_archive, Difficulty};
use tsad_archive::contest::{run_contest, ContestResult};
use tsad_core::Dataset;
use tsad_detectors::baselines::{GlobalZScore, NaiveLastPoint, RandomDetector, SubsequenceKnn};
use tsad_detectors::matrix_profile::{DiscordDetector, OnlineDiscordDetector};
use tsad_detectors::seasonal::SeasonalDetector;
use tsad_detectors::telemanom::Telemanom;
use tsad_eval::report::{fmt, TextTable};

/// The contest results across the detector panel.
#[derive(Debug, Clone)]
pub struct Contest {
    /// Per-detector results.
    pub results: Vec<ContestResult>,
    /// Archive size actually evaluated.
    pub datasets: usize,
    /// How many archive entries are Easy/Medium/Hard.
    pub difficulty_counts: (usize, usize, usize),
}

/// Builds a `count`-entry archive and runs the detector panel.
pub fn run(seed: u64, count: usize) -> tsad_archive::Result<Contest> {
    let archive = build_archive(seed, count)?;
    let datasets: Vec<Dataset> = archive.iter().map(|e| e.dataset.clone()).collect();
    let difficulty_counts = (
        archive
            .iter()
            .filter(|e| e.provenance.difficulty == Difficulty::Easy)
            .count(),
        archive
            .iter()
            .filter(|e| e.provenance.difficulty == Difficulty::Medium)
            .count(),
        archive
            .iter()
            .filter(|e| e.provenance.difficulty == Difficulty::Hard)
            .count(),
    );
    // The panel members are independent of each other; `par_invoke` keeps
    // the leaderboard rows in this declaration order regardless of which
    // detector finishes first.
    let datasets_ref = &datasets;
    type Task<'a> = Box<dyn FnOnce() -> tsad_archive::Result<ContestResult> + Send + 'a>;
    let tasks: Vec<Task<'_>> = vec![
        Box::new(move || run_contest(&DiscordDetector::new(128), datasets_ref)),
        Box::new(move || run_contest(&OnlineDiscordDetector::new(128), datasets_ref)),
        Box::new(move || run_contest(&Telemanom::default(), datasets_ref)),
        Box::new(move || run_contest(&SubsequenceKnn::new(128), datasets_ref)),
        Box::new(move || run_contest(&SeasonalDetector::auto(20, 300), datasets_ref)),
        Box::new(move || run_contest(&GlobalZScore, datasets_ref)),
        Box::new(move || run_contest(&NaiveLastPoint, datasets_ref)),
        Box::new(move || run_contest(&RandomDetector::new(seed), datasets_ref)),
    ];
    let results = tsad_parallel::par_invoke(tasks)
        .into_iter()
        .collect::<tsad_archive::Result<Vec<_>>>()?;
    Ok(Contest {
        results,
        datasets: datasets.len(),
        difficulty_counts,
    })
}

/// Renders the leaderboard.
pub fn render(contest: &Contest) -> String {
    let mut t = TextTable::new(vec!["detector", "UCR accuracy"]);
    let mut sorted = contest.results.clone();
    sorted.sort_by(|a, b| b.accuracy().partial_cmp(&a.accuracy()).expect("finite"));
    for r in &sorted {
        t.row(vec![r.detector.to_string(), fmt(r.accuracy())]);
    }
    let (e, m, h) = contest.difficulty_counts;
    format!(
        "§3 — archive contest over {} datasets (easy {e} / medium {m} / hard {h}):\n{}",
        contest.datasets,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discord_beats_naive_baselines_on_the_archive() {
        // a small archive keeps the test tractable in debug mode
        let c = run(42, 6).unwrap();
        assert_eq!(c.datasets, 6);
        let acc = |needle: &str| {
            c.results
                .iter()
                .find(|r| r.detector.contains(needle))
                .map(|r| r.accuracy())
                .expect("present")
        };
        let discord = acc("discord");
        let random = acc("random");
        let last = acc("last-point");
        assert!(discord >= 0.5, "discord accuracy {discord}");
        assert!(discord > random, "{discord} vs random {random}");
        // unlike the flawed benchmarks, the archive gives the naive
        // last-point detector no foothold
        assert!(
            last <= random + 0.34,
            "naive-last {last} vs random {random}"
        );
        let text = render(&c);
        assert!(text.contains("UCR accuracy"));
    }
}
