//! **Figures 11 and 12** — the two archive-construction walkthroughs
//! (§3.1 natural + out-of-band, §3.2 synthetic-but-plausible).

use tsad_core::{Result, TimeSeries};
use tsad_detectors::matrix_profile::DiscordDetector;
use tsad_detectors::most_anomalous_point;
use tsad_eval::ucr::ucr_correct;
use tsad_synth::{gait, physio};

/// Fig. 11 result: the BIDMC-style pleth dataset with parallel ECG.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// The archived pleth dataset (name encodes train/anomaly).
    pub dataset: tsad_core::Dataset,
    /// The parallel ECG channel.
    pub ecg: TimeSeries,
    /// Index of the ECG R-peak maximum (the PVC — out-of-band evidence).
    pub ecg_peak: usize,
    /// A discord detector's predicted location on the *pleth* channel.
    pub pleth_prediction: usize,
    /// Whether that prediction is UCR-correct.
    pub prediction_correct: bool,
    /// The electro-mechanical lag between the ECG evidence and the pleth
    /// label (positive = pleth lags, as physiology dictates).
    pub lag: isize,
}

/// Runs Fig. 11.
pub fn fig11(seed: u64) -> Result<Fig11> {
    let b = physio::bidmc_like(seed);
    let ecg_peak = tsad_core::stats::argmax(b.ecg.values())?;
    let detector = DiscordDetector::new(160);
    let pleth_prediction = most_anomalous_point(&detector, b.pleth.series(), b.pleth.train_len())?;
    let prediction_correct = ucr_correct(pleth_prediction, b.pleth.labels())?;
    // electro-mechanical delay: the pleth label onset trails the *onset* of
    // the electrical PVC
    let label_start = b.pleth.labels().regions()[0].start as isize;
    Ok(Fig11 {
        ecg_peak,
        pleth_prediction,
        prediction_correct,
        lag: label_start - b.ecg_anomaly.start as isize,
        dataset: b.pleth,
        ecg: b.ecg,
    })
}

/// Fig. 12 result: the gait cycle-swap dataset.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// The gait dataset.
    pub dataset: tsad_core::Dataset,
    /// Turnaround (slow-gait) segment starts — confounders that must not
    /// be flagged.
    pub turnarounds: Vec<usize>,
    /// Discord prediction.
    pub prediction: usize,
    /// Whether the prediction is UCR-correct.
    pub prediction_correct: bool,
    /// Whether the prediction landed on a turnaround instead (the failure
    /// mode the construction guards against).
    pub flagged_turnaround: bool,
}

/// Runs Fig. 12.
pub fn fig12(seed: u64) -> Result<Fig12> {
    let g = gait::park_gait(seed, 140, 60);
    let detector = DiscordDetector::new(gait::CYCLE_LEN);
    let prediction = most_anomalous_point(&detector, g.dataset.series(), g.dataset.train_len())?;
    let prediction_correct = ucr_correct(prediction, g.dataset.labels())?;
    let flagged_turnaround = !prediction_correct
        && g.turnarounds
            .iter()
            .any(|&t| prediction.abs_diff(t) < 2 * gait::CYCLE_LEN);
    Ok(Fig12 {
        dataset: g.dataset,
        turnarounds: g.turnarounds,
        prediction,
        prediction_correct,
        flagged_turnaround,
    })
}

/// Renders both figures.
pub fn render(f11: &Fig11, f12: &Fig12) -> String {
    format!(
        "Fig. 11 — {}:\n  ECG PVC (out-of-band evidence) at {}, pleth label starts {} (lag {} samples)\n  discord prediction on pleth: {} → {}\n\
         Fig. 12 — {}:\n  swapped-cycle label {:?}; discord prediction {} → {}; turnarounds not flagged: {}\n",
        f11.dataset.name(),
        f11.ecg_peak,
        f11.dataset.labels().regions()[0].start,
        f11.lag,
        f11.pleth_prediction,
        if f11.prediction_correct { "correct" } else { "WRONG" },
        f12.dataset.name(),
        f12.dataset.labels().regions()[0],
        f12.prediction,
        if f12.prediction_correct { "correct" } else { "WRONG" },
        !f12.flagged_turnaround,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_out_of_band_confirmation_works() {
        let f = fig11(42).unwrap();
        // the pleth label lags the ECG evidence (mechanical vs electrical)
        assert!(f.lag > 0, "pleth must lag the ECG: {}", f.lag);
        assert!(f.lag < 200, "but only by a fraction of a beat: {}", f.lag);
        assert!(
            f.prediction_correct,
            "discord finds the subtle pleth anomaly"
        );
        assert!(f.dataset.name().starts_with("UCR_Anomaly_BIDMC1_2500_"));
    }

    #[test]
    fn fig12_discord_finds_swap_not_turnarounds() {
        let f = fig12(42).unwrap();
        assert!(
            f.prediction_correct,
            "prediction {} vs {:?}",
            f.prediction,
            f.dataset.labels().regions()
        );
        assert!(!f.flagged_turnaround);
        assert!(!f.turnarounds.is_empty());
        let text = render(&fig11(42).unwrap(), &f);
        assert!(text.contains("correct"));
    }
}
