//! **Figure 10** — run-to-failure bias in the Yahoo A1 anomaly positions,
//! plus the naive last-point detector's undeserved success (§2.5).

use tsad_core::Result;
use tsad_eval::flaws::position::{analyze, PositionBiasReport};
use tsad_eval::report::{fmt, sparkline, TextTable};
use tsad_synth::yahoo::{self, Family};

/// Fig. 10 result: positional bias per family.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Per-family reports in A1..A4 order.
    pub families: Vec<(Family, PositionBiasReport)>,
}

/// Runs Fig. 10 over the simulated benchmark. `per_family` caps series per
/// family (`None` = all).
pub fn fig10(seed: u64, per_family: Option<usize>) -> Result<Fig10> {
    let mut families = Vec::with_capacity(4);
    for family in Family::all() {
        let count = per_family.map_or(family.size(), |c| c.min(family.size()));
        let datasets: Vec<tsad_core::Dataset> = (1..=count)
            .map(|i| yahoo::generate(seed, family, i).dataset)
            .collect();
        let report = analyze(datasets.iter(), 0.1)?;
        families.push((family, report));
    }
    Ok(Fig10 { families })
}

/// Renders Fig. 10 as a table plus a histogram sparkline of A1 positions.
pub fn render(fig: &Fig10) -> String {
    let mut out = String::from("Fig. 10 — last-anomaly positions (run-to-failure bias):\n");
    let mut t = TextTable::new(vec![
        "family",
        "mean position",
        "KS vs uniform",
        "p-value",
        "naive-last hit rate",
        "biased?",
    ]);
    for (family, r) in &fig.families {
        t.row(vec![
            family.to_string(),
            fmt(r.mean_position),
            fmt(r.ks_statistic),
            format!("{:.2e}", r.p_value),
            fmt(r.naive_last_hit_rate),
            if r.is_biased(0.01) {
                "YES".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    if let Some((_, a1)) = fig.families.first() {
        // 20-bin histogram of A1 positions
        let mut hist = vec![0.0f64; 20];
        for &p in &a1.positions {
            let bin = ((p * 20.0) as usize).min(19);
            hist[bin] += 1.0;
        }
        out.push_str("A1 position histogram (0 → 1): ");
        out.push_str(&sparkline(&hist, 20));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_is_biased_beyond_the_other_families() {
        let f = fig10(42, None).unwrap();
        let a1 = &f.families[0].1;
        assert!(
            a1.is_biased(0.01),
            "A1 must show run-to-failure bias: {a1:?}"
        );
        assert!(a1.mean_position > 0.72, "{}", a1.mean_position);
        // the naive last-point detector looks good on A1
        assert!(a1.naive_last_hit_rate > 0.3, "{}", a1.naive_last_hit_rate);
        // Note: the *last*-anomaly position of a multi-anomaly series is
        // end-shifted even under uniform placement (it is a max of up to 3
        // uniforms), so the meaningful comparison is A1 vs the uniformly
        // placed families, not A1 vs 0.5.
        let a3 = &f.families[2].1;
        assert!(
            a1.mean_position > a3.mean_position + 0.04,
            "A1 {} vs A3 {}",
            a1.mean_position,
            a3.mean_position
        );
        assert!(
            a1.naive_last_hit_rate > a3.naive_last_hit_rate + 0.1,
            "A1 {} vs A3 {}",
            a1.naive_last_hit_rate,
            a3.naive_last_hit_rate
        );
        let text = render(&f);
        assert!(text.contains("histogram"));
        assert!(text.contains("YES"));
    }
}
