//! `ingest-json` / `loadgen` — the wire-protocol front-end, measured.
//!
//! Three views of the same serving path, reported as `BENCH_ingest.json`
//! (schema `tsad-bench-ingest/v1`) and gated by `repro -- ingest-compare`:
//!
//! * **Per-stage latency** — a warm in-memory [`Conn`] is fed pre-rendered
//!   HTTP requests (no sockets, no scheduler) and the crate's own stage
//!   histograms (`parse`, `route`, `push`, `respond`, `request`,
//!   `overhead`) are read back via [`tsad_ingest::stage_stats`]. The
//!   gate compares each p99 **absolutely** against the crate's budgets
//!   ([`tsad_ingest::BUDGET_PARSE_NS`] and friends): these are contracts,
//!   not baselines, so a regression cannot be grandfathered in by
//!   regenerating the committed document.
//! * **Steady-state allocations** — heap allocations across warm requests
//!   with observability ON, counted by [`crate::alloc_track`] when the
//!   host binary installs it (`repro` does; under `cargo test` the field
//!   is honestly `null`). The contract is **zero** per request: reused
//!   connection buffers mean a warm request path never touches the
//!   allocator.
//! * **Loopback throughput** — a real server on `127.0.0.1:0` driven by
//!   the built-in load generator over both transports; requests/second is
//!   gated relatively with a wide margin (socket numbers are noisy) and
//!   errors exactly to zero.
//!
//! The raw-fleet column (`raw_push_ns_per_batch`) times `push_batch`
//! directly on an equally warmed fleet, so the `overhead` stage — request
//! minus push — can be read against what the fleet alone costs.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tsad_core::error::Result;
use tsad_detectors::cusum::Cusum;
use tsad_fleet::{BatchOutput, Fleet, FleetConfig, SeriesId};
use tsad_ingest::loadgen::{LoadGenConfig, LoadReport, Transport};
use tsad_ingest::{Conn, ConnConfig, Engine, EngineConfig, ServerConfig, StageStats};
use tsad_parallel::with_threads;
use tsad_stream::{FnFactory, NanPolicy, Sanitized, StreamingCusum, StreamingDetector};

use crate::alloc_track::{count_allocs, counting_allocator_active};

/// Sizes for one ingest measurement.
#[derive(Debug, Clone, Copy)]
pub struct IngestBenchConfig {
    /// Series-id space the generated points cycle through.
    pub series: u64,
    /// Points per request.
    pub batch_points: usize,
    /// Warm-up requests (detector calibration + buffer high-water marks)
    /// before anything is counted or timed.
    pub warm_requests: usize,
    /// Measured in-memory requests (the stage histograms cover these).
    pub requests: usize,
    /// Requests per transport for the loopback loadgen phase.
    pub loadgen_requests: u64,
    /// Loadgen client connections.
    pub conns: usize,
    /// Multiplier applied to the latency budgets the document carries.
    /// `1` is the real contract (release builds — the `ingest-smoke` CI
    /// job); [`Self::smoke`] widens it so debug-build tests exercise the
    /// gating machinery without asserting release-grade latency.
    pub budget_scale: u64,
}

impl Default for IngestBenchConfig {
    fn default() -> Self {
        Self {
            series: 4_096,
            // 32 points keeps per-request text parse comfortably inside
            // the 5 μs p99 budget; larger bodies amortize better but sit
            // on the budget's histogram-bucket boundary.
            batch_points: 32,
            warm_requests: 512,
            requests: 2_048,
            loadgen_requests: 2_000,
            conns: 4,
            budget_scale: 1,
        }
    }
}

impl IngestBenchConfig {
    /// The configuration backing the committed `BENCH_ingest.json` and the
    /// `ingest-smoke` CI job (currently the default).
    pub fn ci() -> Self {
        Self::default()
    }

    /// A tiny configuration for debug-mode tests. The budgets are widened
    /// (`budget_scale`): per-stage latency is a release-build contract,
    /// and a debug build misses it by an order of magnitude for reasons
    /// the gate is not meant to catch.
    pub fn smoke() -> Self {
        Self {
            series: 256,
            batch_points: 16,
            warm_requests: 32,
            requests: 128,
            loadgen_requests: 60,
            conns: 2,
            budget_scale: 1_000,
        }
    }
}

/// One complete ingest measurement.
#[derive(Debug, Clone)]
pub struct IngestBench {
    /// Seed the point values were generated from.
    pub seed: u64,
    /// The configuration measured.
    pub cfg: IngestBenchConfig,
    /// Detector fingerprint (every series spawns this configuration).
    pub detector: String,
    /// SIMD backend the run dispatched to.
    pub dispatch: &'static str,
    /// f64 lanes per vector of that backend.
    pub lane_width: usize,
    /// Median ns per `push_batch` of one request's points on a raw fleet
    /// (no protocol, no server) at 1 thread.
    pub raw_push_ns: u64,
    /// Stage quantiles over the measured in-memory requests.
    pub stages: Vec<StageStats>,
    /// Heap allocations across [`Self::alloc_requests`] warm requests, or
    /// `None` when the counting allocator is not installed.
    pub steady_allocs: Option<u64>,
    /// Requests the allocation count covers.
    pub alloc_requests: u64,
    /// Loopback loadgen results per transport.
    pub loadgen: Vec<(Transport, LoadReport)>,
    /// Observability snapshot covering the whole run.
    pub obs: tsad_obs::Snapshot,
}

impl IngestBench {
    /// Steady-state allocations per request, rounded up so any nonzero
    /// count over the window reads as a violation.
    pub fn allocs_per_request(&self) -> Option<u64> {
        self.steady_allocs
            .map(|a| a.div_ceil(self.alloc_requests.max(1)))
    }
}

type IngestDetector = Sanitized<StreamingCusum>;
type IngestFactory = FnFactory<fn(u64) -> IngestDetector>;

fn spawn_detector(_id: u64) -> IngestDetector {
    let cusum = StreamingCusum::new(Cusum::default(), 8).expect("valid CUSUM parameters");
    Sanitized::new(cusum, NanPolicy::Skip)
}

fn new_engine(cfg: &IngestBenchConfig) -> Engine<IngestFactory> {
    let shards = (cfg.series / 1024).clamp(4, 64) as usize;
    let fleet = Fleet::new(
        FnFactory(spawn_detector as fn(u64) -> IngestDetector),
        FleetConfig {
            shards,
            ..FleetConfig::default()
        },
    );
    Engine::new(fleet, EngineConfig::default())
}

/// Deterministic finite value for (series, round) — same construction as
/// the fleet bench, so raw-fleet and through-the-wire runs see identical
/// data shapes.
fn value(seed: u64, id: u64, round: u64) -> f64 {
    let mut x = seed
        .wrapping_add(id.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(round.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 30;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % 4000) as f64 / 100.0 - 20.0
}

/// Fills `batch` with request `round`'s points (ids cycle the series
/// space).
fn fill_batch(cfg: &IngestBenchConfig, seed: u64, round: u64, batch: &mut Vec<(SeriesId, f64)>) {
    batch.clear();
    let base = round * cfg.batch_points as u64;
    for i in 0..cfg.batch_points as u64 {
        let id = (base + i) % cfg.series;
        batch.push((SeriesId(id), value(seed, id, round)));
    }
}

/// Renders request `round` as a complete HTTP/1.1 `POST /ingest` into
/// `out` (cleared first).
fn render_request(
    cfg: &IngestBenchConfig,
    seed: u64,
    round: u64,
    batch: &mut Vec<(SeriesId, f64)>,
    body: &mut String,
    out: &mut Vec<u8>,
) {
    fill_batch(cfg, seed, round, batch);
    body.clear();
    for (id, v) in batch.iter() {
        let _ = writeln!(body, "{} {}", id.0, v);
    }
    out.clear();
    {
        use std::io::Write as _;
        let _ = write!(
            out,
            "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
    }
    out.extend_from_slice(body.as_bytes());
}

/// Feeds one pre-rendered request and asserts a 200; the response bytes
/// are consumed in place so the connection buffers stay warm.
fn feed_request(conn: &mut Conn, engine: &Engine<IngestFactory>, request: &[u8]) {
    conn.feed(request, engine);
    debug_assert!(
        conn.output().starts_with(b"HTTP/1.1 200"),
        "unexpected response: {}",
        String::from_utf8_lossy(conn.output())
    );
    let n = conn.output().len();
    conn.consume_output(n);
}

/// Parsed `repro -- loadgen` options.
#[derive(Debug, Clone, Default)]
pub struct LoadGenCli {
    /// Drive an already-running server at this address instead of
    /// self-hosting one on a loopback port.
    pub addr: Option<String>,
    /// The load shape (the CLI seed overrides `cfg.seed`).
    pub cfg: LoadGenConfig,
}

/// Renders one loadgen report for the CLI.
pub fn render_loadgen(transport: Transport, r: &LoadReport) -> String {
    format!(
        "loadgen {}: {:.0} req/s, {:.0} points/s\n  \
         latency p50 {} ns, p95 {} ns, p99 {} ns, max {} ns\n  \
         {} ok, {} retried, {} backoff resends, {} errors in {:.2}s\n",
        transport.name(),
        r.rps(),
        r.points_per_sec(),
        r.p50_ns,
        r.p95_ns,
        r.p99_ns,
        r.max_ns,
        r.requests,
        r.retried,
        r.retries,
        r.errors,
        r.elapsed_ns as f64 / 1e9
    )
}

/// Runs the load generator for `repro -- loadgen`, self-hosting a loopback
/// server (default engine, default detector) when no `--addr` was given.
pub fn run_loadgen(cli: &LoadGenCli, seed: u64) -> std::result::Result<String, String> {
    use std::net::ToSocketAddrs;
    let cfg = LoadGenConfig { seed, ..cli.cfg };
    let (addr, server) = match &cli.addr {
        Some(a) => {
            let addr = a
                .to_socket_addrs()
                .map_err(|e| format!("bad --addr {a}: {e}"))?
                .next()
                .ok_or_else(|| format!("--addr {a} resolved to no address"))?;
            (addr, None)
        }
        None => {
            let engine = Arc::new(new_engine(&IngestBenchConfig::default()));
            let handle = tsad_ingest::start(engine, ServerConfig::default(), "127.0.0.1:0")
                .map_err(|e| format!("cannot self-host a loopback server: {e}"))?;
            (handle.addr(), Some(handle))
        }
    };
    let report = tsad_ingest::loadgen::run(addr, &cfg);
    if let Some(handle) = server {
        handle
            .stop()
            .map_err(|e| format!("server shutdown failed: {e}"))?;
    }
    Ok(render_loadgen(cfg.transport, &report))
}

/// Serializes [`run`] calls within one process (the observability registry
/// is global; same pattern as the kernel and fleet benches).
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// Runs the ingest measurement.
pub fn run(seed: u64, cfg: &IngestBenchConfig) -> Result<IngestBench> {
    let _serialize = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tsad_obs::reset_all();

    let engine = new_engine(cfg);
    let mut conn = Conn::new(ConnConfig::default());
    let mut batch = Vec::with_capacity(cfg.batch_points);
    let mut body = String::with_capacity(cfg.batch_points * 32);
    let mut request = Vec::with_capacity(cfg.batch_points * 32 + 128);
    let mut round = 0u64;

    // warm-up: spawn every series, calibrate detectors, grow every
    // reusable buffer (connection and fleet) to its high-water mark
    for _ in 0..cfg.warm_requests.max(1) {
        render_request(cfg, seed, round, &mut batch, &mut body, &mut request);
        feed_request(&mut conn, &engine, &request);
        round += 1;
    }

    // steady-state allocation count with obs ON: requests are rendered
    // *before* counting so only the server-side path is measured
    let alloc_requests = 64u64.min(cfg.requests as u64).max(1);
    let rendered: Vec<Vec<u8>> = (0..alloc_requests)
        .map(|i| {
            render_request(cfg, seed, round + i, &mut batch, &mut body, &mut request);
            request.clone()
        })
        .collect();
    let steady_allocs = counting_allocator_active().then(|| {
        count_allocs(|| {
            for req in &rendered {
                feed_request(&mut conn, &engine, req);
            }
        })
    });
    round += alloc_requests;

    // measured window: reset the histograms so the stage quantiles cover
    // exactly these requests, none of the warm-up
    tsad_obs::reset_all();
    for _ in 0..cfg.requests.max(1) {
        render_request(cfg, seed, round, &mut batch, &mut body, &mut request);
        feed_request(&mut conn, &engine, &request);
        round += 1;
    }
    let stages = tsad_ingest::stage_stats();

    // raw-fleet baseline: the same batches pushed straight into an equally
    // warmed fleet, no protocol in the way
    let raw_push_ns = with_threads(1, || {
        let mut fleet = Fleet::new(
            FnFactory(spawn_detector as fn(u64) -> IngestDetector),
            FleetConfig {
                shards: (cfg.series / 1024).clamp(4, 64) as usize,
                ..FleetConfig::default()
            },
        );
        let mut out = BatchOutput::new();
        for r in 0..(cfg.warm_requests.max(1) as u64) {
            fill_batch(cfg, seed, r, &mut batch);
            fleet.push_batch(&batch, &mut out);
        }
        let mut samples: Vec<u64> = (0..cfg.requests.max(1) as u64)
            .map(|r| {
                fill_batch(cfg, seed, r + cfg.warm_requests as u64, &mut batch);
                let t0 = Instant::now();
                fleet.push_batch(&batch, &mut out);
                t0.elapsed().as_nanos() as u64
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    });

    // loopback throughput: a real server, both transports, fresh engine so
    // loadgen traffic does not sit on the in-memory engine's series
    let server_engine = Arc::new(new_engine(cfg));
    // a failed loopback bind is a broken environment, not a measurement
    let handle = tsad_ingest::start(
        Arc::clone(&server_engine),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let mut loadgen = Vec::new();
    for transport in [Transport::Http, Transport::Tcp] {
        let report = tsad_ingest::loadgen::run(
            handle.addr(),
            &LoadGenConfig {
                series: cfg.series,
                conns: cfg.conns,
                batch_points: cfg.batch_points,
                requests: cfg.loadgen_requests,
                transport,
                seed,
                ..LoadGenConfig::default()
            },
        );
        loadgen.push((transport, report));
    }
    handle.stop().expect("clean shutdown");

    let backend = tsad_core::simd::current();
    Ok(IngestBench {
        seed,
        cfg: *cfg,
        detector: spawn_detector(0).name(),
        dispatch: backend.name(),
        lane_width: backend.lane_width(),
        raw_push_ns,
        stages,
        steady_allocs,
        alloc_requests,
        loadgen,
        obs: tsad_obs::snapshot(),
    })
}

/// Renders the human-readable report for `repro -- ingest-json` (and the
/// tail of `repro -- loadgen`).
pub fn render(b: &IngestBench) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ingest: {} pts/request over {} series, {} detector, dispatch {} ({} lanes)",
        b.cfg.batch_points, b.cfg.series, b.detector, b.dispatch, b.lane_width
    );
    let _ = writeln!(
        out,
        "  raw fleet push_batch: {} ns/batch (median, 1 thread)",
        b.raw_push_ns
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50 ns", "p95 ns", "p99 ns", "max ns"
    );
    for s in &b.stages {
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            s.stage, s.count, s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns
        );
    }
    let _ = writeln!(
        out,
        "  allocations/request (warm, obs on): {}",
        b.allocs_per_request()
            .map_or_else(|| "not measured".to_string(), |a| a.to_string())
    );
    for (transport, r) in &b.loadgen {
        let _ = writeln!(
            out,
            "  loadgen {:<5} {:>8.0} req/s  {:>12.0} pts/s  p99 {} ns  \
             ({} ok, {} retried, {} resends, {} errors)",
            transport.name(),
            r.rps(),
            r.points_per_sec(),
            r.p99_ns,
            r.requests,
            r.retried,
            r.retries,
            r.errors
        );
    }
    out
}

/// Renders the machine-readable document (`BENCH_ingest.json`).
pub fn render_json(b: &IngestBench) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"tsad-bench-ingest/v1\",");
    let _ = writeln!(out, "  \"seed\": {},", b.seed);
    let _ = writeln!(out, "  \"series\": {},", b.cfg.series);
    let _ = writeln!(out, "  \"batch_points\": {},", b.cfg.batch_points);
    let _ = writeln!(out, "  \"requests\": {},", b.cfg.requests);
    // The *effective* worker count (TSAD_THREADS-aware): loopback rps
    // is only gateable against a baseline with the same worker count.
    let _ = writeln!(
        out,
        "  \"host_threads\": {},",
        tsad_parallel::current_threads()
    );
    let _ = writeln!(out, "  \"detector\": \"{}\",", b.detector);
    let _ = writeln!(out, "  \"dispatch\": \"{}\",", b.dispatch);
    let _ = writeln!(out, "  \"lane_width\": {},", b.lane_width);
    let _ = writeln!(
        out,
        "  \"budget_parse_ns\": {},",
        tsad_ingest::BUDGET_PARSE_NS * b.cfg.budget_scale
    );
    let _ = writeln!(
        out,
        "  \"budget_route_ns\": {},",
        tsad_ingest::BUDGET_ROUTE_NS * b.cfg.budget_scale
    );
    let _ = writeln!(
        out,
        "  \"budget_overhead_ns\": {},",
        tsad_ingest::BUDGET_OVERHEAD_NS * b.cfg.budget_scale
    );
    let _ = writeln!(out, "  \"raw_push_ns_per_batch\": {},", b.raw_push_ns);
    out.push_str("  \"stages\": [\n");
    for (i, s) in b.stages.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"stage\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"max_ns\": {}}}{}",
            s.stage,
            s.count,
            s.p50_ns,
            s.p95_ns,
            s.p99_ns,
            s.max_ns,
            if i + 1 < b.stages.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    match b.steady_allocs {
        Some(n) => {
            let _ = writeln!(out, "  \"steady_state_allocs\": {n},");
        }
        None => out.push_str("  \"steady_state_allocs\": null,\n"),
    }
    let _ = writeln!(out, "  \"alloc_requests\": {},", b.alloc_requests);
    match b.allocs_per_request() {
        Some(n) => {
            let _ = writeln!(out, "  \"allocs_per_request\": {n},");
        }
        None => out.push_str("  \"allocs_per_request\": null,\n"),
    }
    out.push_str("  \"loadgen\": [\n");
    for (i, (transport, r)) in b.loadgen.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"transport\": \"{}\", \"requests\": {}, \"retried\": {}, \"retries\": {}, \
             \"errors\": {}, \"points\": {}, \"rps\": {}, \"points_per_sec\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"max_ns\": {}}}{}",
            transport.name(),
            r.requests,
            r.retried,
            r.retries,
            r.errors,
            r.points,
            r.rps().round() as u64,
            r.points_per_sec().round() as u64,
            r.p50_ns,
            r.p99_ns,
            r.max_ns,
            if i + 1 < b.loadgen.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"obs\": {}", tsad_obs::render_json(&b.obs, 2));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_measures_every_stage_and_both_transports() {
        let b = run(42, &IngestBenchConfig::smoke()).unwrap();
        assert_eq!(b.stages.len(), 6);
        for s in &b.stages {
            assert_eq!(s.count, 128, "{}", s.stage);
            assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns, "{}", s.stage);
        }
        assert!(b.raw_push_ns > 0);
        assert_eq!(b.loadgen.len(), 2);
        for (t, r) in &b.loadgen {
            assert_eq!(r.errors, 0, "{t:?}: {r:?}");
            assert_eq!(r.requests, 60, "{t:?}: {r:?}");
        }
        // library tests run under the system allocator: honestly unmeasured
        assert_eq!(b.steady_allocs, None);
        assert_eq!(b.allocs_per_request(), None);
    }

    #[test]
    fn smoke_json_is_wellformed_and_parses() {
        let b = run(42, &IngestBenchConfig::smoke()).unwrap();
        let json = render_json(&b);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let doc = crate::minijson::parse(&json).expect("ingest json parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("tsad-bench-ingest/v1")
        );
        let stages = doc.get("stages").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(stages.len(), 6);
        let loadgen = doc.get("loadgen").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(loadgen.len(), 2);
        assert!(json.contains("\"allocs_per_request\": null"));
        assert!(!json.contains(",\n}"));
        let human = render(&b);
        assert!(human.contains("loadgen http"));
        assert!(human.contains("parse"));
    }

    #[test]
    fn allocs_per_request_rounds_up_violations() {
        let b = run(7, &IngestBenchConfig::smoke()).unwrap();
        let mut forged = b.clone();
        forged.steady_allocs = Some(0);
        assert_eq!(forged.allocs_per_request(), Some(0));
        forged.steady_allocs = Some(1); // 1 alloc over the whole window
        assert_eq!(forged.allocs_per_request(), Some(1), "must not hide");
    }
}
