//! **§2.3 + §4.4** — scoring-protocol disagreement: the *same* predictions
//! on the *same* dataset, scored under every protocol the literature uses.
//!
//! The paper notes that the choice of scoring function alone "greatly
//! confuses the task of scoring and comparing algorithms"; this experiment
//! quantifies it. Two detectors whose ranking *flips* depending on the
//! protocol are exhibited.

use tsad_core::{Labels, Result};
use tsad_detectors::Detector;
use tsad_eval::auc::roc_auc;
use tsad_eval::nab::{nab_score, NabProfile};
use tsad_eval::range::{range_f1, RangeParams};
use tsad_eval::report::{fmt, TextTable};
use tsad_eval::scoring::{best_f1_over_thresholds, F1Protocol};
use tsad_synth::nasa;

/// Scores the dataset and thresholds at the 98th percentile (the simple
/// deployment rule a practitioner would use), returning the raw score, the
/// binary mask, and the fired indices.
fn score_and_threshold(
    detector: &dyn Detector,
    dataset: &tsad_core::Dataset,
) -> Result<(Vec<f64>, Vec<bool>, Vec<usize>)> {
    let score = detector.score(dataset.series(), dataset.train_len())?;
    let mask = tsad_detectors::threshold::quantile_mask(&score, 0.98)?;
    let detections: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(i, _)| i)
        .collect();
    Ok((score, mask, detections))
}

/// One detector's scores under every protocol.
#[derive(Debug, Clone)]
pub struct ProtocolRow {
    /// Detector name.
    pub detector: &'static str,
    /// Best point-wise F1.
    pub pointwise: f64,
    /// Best point-adjust F1.
    pub point_adjust: f64,
    /// Best tolerance(5) F1.
    pub tolerance: f64,
    /// Range-based F1 at the point-wise-optimal threshold.
    pub range_based: f64,
    /// NAB standard score of the thresholded detections.
    pub nab: f64,
    /// ROC-AUC of the raw score.
    pub roc_auc: f64,
}

/// The §4.4 study.
#[derive(Debug, Clone)]
pub struct ProtocolStudy {
    /// One row per detector.
    pub rows: Vec<ProtocolRow>,
    /// Name of the dataset used.
    pub dataset: String,
}

fn evaluate(
    detector: &dyn Detector,
    name: &'static str,
    dataset: &tsad_core::Dataset,
) -> Result<ProtocolRow> {
    let (score, mask, detections) = score_and_threshold(detector, dataset)?;
    let labels = dataset.labels();
    let (pointwise, _) = best_f1_over_thresholds(&score, labels, F1Protocol::Pointwise)?;
    let (point_adjust, _) = best_f1_over_thresholds(&score, labels, F1Protocol::PointAdjust)?;
    let (tolerance, _) = best_f1_over_thresholds(&score, labels, F1Protocol::Tolerance(5))?;
    let predicted = Labels::from_mask(&mask);
    let range_based = range_f1(&predicted, labels, RangeParams::default())?;
    let nab = nab_score(&detections, labels, NabProfile::standard())?;
    let roc = roc_auc(&score, labels)?;
    Ok(ProtocolRow {
        detector: name,
        pointwise,
        point_adjust,
        tolerance,
        range_based,
        nab,
        roc_auc: roc,
    })
}

/// Runs the protocol study on a NASA-style dense-anomaly exemplar — the
/// label shape (§2.3) that maximally confuses the protocols.
pub fn run(seed: u64) -> Result<ProtocolStudy> {
    let dataset = nasa::dense_anomaly(seed, 0.5);
    let rows = vec![
        evaluate(
            &tsad_detectors::baselines::MovingAvgResidual::new(25),
            "moving-average residual",
            &dataset,
        )?,
        evaluate(
            &tsad_detectors::baselines::GlobalZScore,
            "global z-score",
            &dataset,
        )?,
        evaluate(
            &tsad_detectors::matrix_profile::DiscordDetector::new(64),
            "discord (matrix profile)",
            &dataset,
        )?,
        evaluate(
            &tsad_detectors::baselines::NaiveLastPoint,
            "naive last-point",
            &dataset,
        )?,
    ];
    Ok(ProtocolStudy {
        rows,
        dataset: dataset.name().to_string(),
    })
}

/// Renders the table plus the headline: does any pair of detectors flip
/// rank between two protocols?
pub fn render(study: &ProtocolStudy) -> String {
    let mut t = TextTable::new(vec![
        "detector", "pw-F1", "PA-F1", "tol-F1", "range-F1", "NAB", "ROC-AUC",
    ]);
    for r in &study.rows {
        t.row(vec![
            r.detector.to_string(),
            fmt(r.pointwise),
            fmt(r.point_adjust),
            fmt(r.tolerance),
            fmt(r.range_based),
            fmt(r.nab),
            fmt(r.roc_auc),
        ]);
    }
    let flip = rank_flips(study);
    format!(
        "§4.4 — the same predictions under every protocol ({}):\n{}rank flips between protocols: {flip}\n",
        study.dataset,
        t.render()
    )
}

/// Counts detector pairs whose ordering differs between at least two
/// protocols.
pub fn rank_flips(study: &ProtocolStudy) -> usize {
    let metrics: Vec<Vec<f64>> = study
        .rows
        .iter()
        .map(|r| {
            vec![
                r.pointwise,
                r.point_adjust,
                r.tolerance,
                r.range_based,
                r.nab,
                r.roc_auc,
            ]
        })
        .collect();
    let mut flips = 0;
    for a in 0..metrics.len() {
        for b in a + 1..metrics.len() {
            let mut saw_gt = false;
            let mut saw_lt = false;
            for (ma, mb) in metrics[a].iter().zip(&metrics[b]) {
                if ma > &(mb + 1e-9) {
                    saw_gt = true;
                }
                if ma + 1e-9 < *mb {
                    saw_lt = true;
                }
            }
            if saw_gt && saw_lt {
                flips += 1;
            }
        }
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocols_disagree_on_dense_labels() {
        let s = run(42).unwrap();
        assert_eq!(s.rows.len(), 4);
        // every metric is in range
        for r in &s.rows {
            for v in [
                r.pointwise,
                r.point_adjust,
                r.tolerance,
                r.range_based,
                r.roc_auc,
            ] {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", r.detector);
            }
            assert!(r.nab <= 100.0);
        }
        // the paper's point: at least one detector pair flips rank
        // depending on the protocol
        assert!(rank_flips(&s) >= 1, "{s:?}");
        let text = render(&s);
        assert!(text.contains("rank flips"));
    }
}
