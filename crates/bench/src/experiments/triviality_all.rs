//! **§2.2 beyond Yahoo** — one-liner solvability of the other simulated
//! benchmarks, quantifying the paper's prose claims:
//!
//! * OMNI/SMD: "of the twenty-eight example problems … at least half are
//!   this easy"; most of a machine's 38 dimensions are "even easier" than
//!   dimension 19;
//! * NASA: "in about half the cases the anomaly is manifest in many orders
//!   of magnitude difference … perhaps 10 % of the examples are
//!   challenging";
//! * Numenta: "most of the examples … readily yield to a single line of
//!   code".

use tsad_core::{Dataset, Labels, Result};
use tsad_detectors::oneliner::SearchConfig;
use tsad_eval::flaws::triviality::analyze;
use tsad_eval::report::TextTable;
use tsad_synth::{nasa, numenta, omni};

/// Solvability of one simulated benchmark family.
#[derive(Debug, Clone)]
pub struct FamilyTriviality {
    /// Family label.
    pub family: &'static str,
    /// Series solved by a one-liner.
    pub solved: usize,
    /// Series examined.
    pub total: usize,
}

impl FamilyTriviality {
    /// Percent solved.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.solved as f64 / self.total as f64
        }
    }
}

/// The cross-benchmark study.
#[derive(Debug, Clone)]
pub struct TrivialityStudy {
    /// Per-family results.
    pub families: Vec<FamilyTriviality>,
}

fn count_solved(datasets: &[Dataset], config: &SearchConfig) -> Result<usize> {
    // Each dataset's one-liner search is independent; the count is
    // order-insensitive, so fanning out cannot change the result.
    let verdicts = tsad_parallel::par_map_indexed(datasets, |_, d| {
        analyze(d, config).map(|report| report.is_trivial())
    });
    let mut solved = 0;
    for v in verdicts {
        if v? {
            solved += 1;
        }
    }
    Ok(solved)
}

/// Runs the study. `omni_dims` caps how many SMD channels are tested
/// (each channel of the machine is scored as its own univariate problem,
/// exactly as Fig. 1 treats dimension 19).
pub fn run(seed: u64, omni_dims: usize) -> Result<TrivialityStudy> {
    let config = SearchConfig::default();
    let mut families = Vec::new();

    // NASA magnitude jumps: the "well beyond trivial" half
    let nasa_jumps: Vec<Dataset> = (0..4).map(|k| nasa::magnitude_jump(seed + k)).collect();
    families.push(FamilyTriviality {
        family: "NASA magnitude jumps",
        solved: count_solved(&nasa_jumps, &config)?,
        total: nasa_jumps.len(),
    });

    // NASA frozen signals, AS LABELED: the frozen one-liner finds all three
    // freezes, but only one is labeled (Fig. 9) — so the series is
    // "unsolvable" against its own flawed ground truth.
    let nasa_frozen: Vec<Dataset> = (0..4).map(|k| nasa::frozen_signal(seed + k).0).collect();
    families.push(FamilyTriviality {
        family: "NASA frozen (flawed labels)",
        solved: count_solved(&nasa_frozen, &config)?,
        total: nasa_frozen.len(),
    });

    // The same frozen signals with CORRECTED labels (all three freezes
    // marked) become trivially solvable — the triviality and mislabel
    // flaws compound.
    let nasa_frozen_fixed: Vec<Dataset> = (0..4)
        .map(|k| -> Result<Dataset> {
            let (d, freezes) = nasa::frozen_signal(seed + k);
            let corrected = Labels::new(d.len(), freezes)?;
            d.with_labels(corrected)
        })
        .collect::<Result<Vec<_>>>()?;
    families.push(FamilyTriviality {
        family: "NASA frozen (corrected labels)",
        solved: count_solved(&nasa_frozen_fixed, &config)?,
        total: nasa_frozen_fixed.len(),
    });

    // Numenta artificial exemplars
    let numenta_sets: Vec<Dataset> = vec![
        numenta::art_spike_density(seed),
        numenta::art_daily_jumpsup(seed),
        numenta::art_daily_flatmiddle(seed),
        numenta::art_load_balancer_spikes(seed),
        numenta::art_spike_density(seed + 1),
        numenta::art_daily_jumpsup(seed + 1),
    ];
    families.push(FamilyTriviality {
        family: "Numenta artificial",
        solved: count_solved(&numenta_sets, &config)?,
        total: numenta_sets.len(),
    });

    // OMNI: each reacting channel of a machine as a univariate problem
    let machine = omni::smd_machine(seed);
    let mut omni_sets = Vec::new();
    for dim in 0..machine.series.dims().min(omni_dims) {
        let channel = machine.series.dimension(dim)?;
        omni_sets.push(Dataset::unsupervised(channel, machine.labels.clone())?);
    }
    families.push(FamilyTriviality {
        family: "OMNI/SMD channels",
        solved: count_solved(&omni_sets, &config)?,
        total: omni_sets.len(),
    });

    Ok(TrivialityStudy { families })
}

/// Renders the study.
pub fn render(study: &TrivialityStudy) -> String {
    let mut t = TextTable::new(vec!["benchmark", "# solved", "# series", "percent"]);
    for f in &study.families {
        t.row(vec![
            f.family.to_string(),
            f.solved.to_string(),
            f.total.to_string(),
            format!("{:.0}%", f.percent()),
        ]);
    }
    format!(
        "§2.2 — one-liner solvability beyond Yahoo (paper: OMNI ≥ half, NASA ~90%, Numenta most):\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nasa_and_numenta_mostly_trivial_omni_half() {
        let s = run(42, 12).unwrap();
        let by_name = |needle: &str| {
            s.families
                .iter()
                .find(|f| f.family.contains(needle))
                .expect("present")
        };
        // magnitude jumps all yield to one-liners
        assert!(
            by_name("magnitude").percent() >= 75.0,
            "{}",
            by_name("magnitude").percent()
        );
        // frozen signals are UNSOLVABLE against their flawed labels (the
        // one-liner finds the two unlabeled freezes too — Fig. 9)…
        assert_eq!(by_name("flawed labels").solved, 0);
        // …and trivially solvable once the labels are corrected
        assert!(
            by_name("corrected labels").percent() >= 75.0,
            "{}",
            by_name("corrected labels").percent()
        );
        // Numenta artificial mostly yields
        assert!(
            by_name("Numenta").percent() >= 50.0,
            "{}",
            by_name("Numenta").percent()
        );
        // OMNI: a machine has reacting channels (easy) and unreactive ones
        // (unsolvable): somewhere in the middle, like the paper's "at least
        // half"
        let omni = by_name("OMNI");
        assert!(omni.solved > 0, "some channels must be trivial");
        assert!(omni.solved < omni.total, "unreactive channels must resist");
        let text = render(&s);
        assert!(text.contains("percent"));
    }
}
