//! `wal` — durable-ingest cost and recovery fidelity (`BENCH_wal.json`).
//!
//! Measures what the write-ahead log charges the serving path under each
//! [`FsyncPolicy`] (append wall time, fsync count, bytes written,
//! allocations on the warm path) against real files, and proves the
//! recovery contract in the same document: a log with a deliberately torn
//! tail must recover to a **bitwise-identical** fleet state over the
//! surviving prefix. CI regenerates this document and gates it against
//! the committed `BENCH_wal.json` with `repro -- wal-compare`: the
//! wall-time ratio is gated for the fsync-free policy only (fsync latency
//! is hardware, not code), while the allocation count and the recovery
//! booleans are exact contracts on every run.

use std::fmt::Write as _;
use std::sync::Mutex;

use tsad_faults::SplitMix64;
use tsad_fleet::{BatchOutput, Fleet, FleetConfig, SeriesId};
use tsad_stream::{FnFactory, StreamingGlobalZScore};
use tsad_wal::{recover, FsDir, FsyncPolicy, MemDir, Wal, WalConfig, WalDir};

use crate::alloc_track::{count_allocs, counting_allocator_active};

/// Workload shape for the WAL measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalBenchConfig {
    /// Batches appended per policy in the timed loop.
    pub batches: u64,
    /// Points per batch.
    pub batch_points: usize,
    /// Segment size for the timed loop (small enough to exercise
    /// rotation, large enough that appends dominate).
    pub segment_bytes: u64,
}

impl WalBenchConfig {
    /// The committed-baseline shape (what `BENCH_wal.json` holds).
    pub fn ci() -> Self {
        Self {
            batches: 2_000,
            batch_points: 64,
            segment_bytes: 1 << 20,
        }
    }

    /// A fast shape for tests.
    pub fn smoke() -> Self {
        Self {
            batches: 100,
            batch_points: 16,
            segment_bytes: 16 * 1024,
        }
    }
}

/// One fsync policy's measured costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRow {
    /// Policy label (`per-batch`, `group`, `off`).
    pub policy: &'static str,
    /// Mean append wall time per batch, nanoseconds.
    pub wall_ns_per_batch: u64,
    /// Points appended per second at that rate.
    pub points_per_sec: u64,
    /// fsync calls the whole run issued (appends + seals).
    pub fsyncs: u64,
    /// Bytes the log wrote (records + headers + seals).
    pub bytes_written: u64,
    /// Heap allocations per warm append window (contract: 0); `None`
    /// when the counting allocator is not installed in this process.
    pub allocs_per_batch: Option<u64>,
}

/// The recovery-fidelity half of the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryCheck {
    /// Recovered fleet state is bitwise-equal to an uncrashed run over
    /// the surviving prefix.
    pub bitwise: bool,
    /// Batches the torn log still replays.
    pub replayed_batches: u64,
    /// Bytes recovery cut off the torn tail.
    pub truncated_bytes: u64,
    /// The scan reported the torn tail (repair, not refusal).
    pub torn_tail_truncated: bool,
}

/// Everything `BENCH_wal.json` holds.
#[derive(Debug, Clone)]
pub struct WalBench {
    /// Seed the workload values were generated from.
    pub seed: u64,
    /// Workload shape.
    pub cfg: WalBenchConfig,
    /// One row per fsync policy.
    pub rows: Vec<PolicyRow>,
    /// Torn-tail recovery fidelity.
    pub recovery: RecoveryCheck,
    /// `wal.*` observability counters recorded during the run.
    pub obs: tsad_obs::Snapshot,
}

/// Serializes runs within one process: the observability registry is
/// global (same pattern as the kernel, fleet, and ingest benches).
static RUN_LOCK: Mutex<()> = Mutex::new(());

const FP: &str = "wal-bench-zscore-w4";

type ZFactory = FnFactory<fn(u64) -> StreamingGlobalZScore>;

fn spawn_z(_id: u64) -> StreamingGlobalZScore {
    StreamingGlobalZScore::new(4).expect("window >= 2")
}

fn factory() -> ZFactory {
    FnFactory(spawn_z as fn(u64) -> StreamingGlobalZScore)
}

fn new_fleet() -> Fleet<ZFactory> {
    Fleet::new(
        factory(),
        FleetConfig {
            shards: 4,
            ..FleetConfig::default()
        },
    )
}

/// Deterministic workload batch `i` as raw `(id, value)` pairs.
fn batch(rng: &mut SplitMix64, points: usize) -> Vec<(u64, f64)> {
    (0..points as u64)
        .map(|j| (j % 257, rng.next_f64() * 4.0 - 2.0))
        .collect()
}

/// The three policies a row is measured for.
fn policies() -> [(&'static str, FsyncPolicy); 3] {
    [
        ("per-batch", FsyncPolicy::PerBatch),
        (
            "group",
            FsyncPolicy::GroupCommit {
                batches: 8,
                max_pending_micros: 500,
            },
        ),
        ("off", FsyncPolicy::Off),
    ]
}

/// A unique scratch directory under the system temp dir, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> std::io::Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "tsad-wal-bench-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        std::fs::create_dir_all(&path)?;
        Ok(Self(path))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Times one policy against real files and measures the warm append path.
fn measure_policy(
    seed: u64,
    cfg: &WalBenchConfig,
    label: &'static str,
    policy: FsyncPolicy,
) -> std::io::Result<PolicyRow> {
    let tmp = TempDir::new(label)?;
    let dir = FsDir::open(&tmp.0)?;
    let wal_cfg = WalConfig {
        segment_bytes: cfg.segment_bytes,
        policy,
        ..WalConfig::new(FP)
    };
    let mut wal = Wal::create(dir, wal_cfg).map_err(std::io::Error::other)?;
    let mut rng = SplitMix64::new(seed);

    // warm-up: scratch buffers grow to their high-water mark here
    for _ in 0..16 {
        let b = batch(&mut rng, cfg.batch_points);
        wal.append(b.iter().copied())?;
    }

    let t0 = std::time::Instant::now();
    for _ in 0..cfg.batches {
        let b = batch(&mut rng, cfg.batch_points);
        wal.append(b.iter().copied())?;
    }
    let wall_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let wall_ns_per_batch = wall_ns / cfg.batches.max(1);
    let points = cfg.batches * cfg.batch_points as u64;
    let points_per_sec = if wall_ns == 0 {
        0
    } else {
        ((points as f64) * 1e9 / wall_ns as f64).round() as u64
    };

    // the allocation window: warm appends only (the batch itself is
    // built outside the counted closure; rotation is excluded by
    // measuring far fewer bytes than one segment holds)
    let allocs_per_batch = counting_allocator_active().then(|| {
        let b = batch(&mut rng, cfg.batch_points);
        count_allocs(|| {
            for _ in 0..8 {
                wal.append(b.iter().copied()).expect("warm append");
            }
        })
    });

    Ok(PolicyRow {
        policy: label,
        wall_ns_per_batch,
        points_per_sec,
        fsyncs: wal.fsyncs(),
        bytes_written: wal.bytes_written(),
        allocs_per_batch,
    })
}

/// Builds a log in memory, tears its tail mid-record, and checks that
/// recovery lands bitwise on an uncrashed prefix.
fn check_recovery(seed: u64, cfg: &WalBenchConfig) -> RecoveryCheck {
    let dir = MemDir::new();
    let wal_cfg = WalConfig {
        segment_bytes: 2048,
        ..WalConfig::new(FP)
    };
    let mut wal = Wal::create(dir.clone(), wal_cfg.clone()).expect("mem create");
    let mut rng = SplitMix64::new(seed);
    let n = 64u64;
    let points = cfg.batch_points.clamp(4, 64);

    // reference states: fleet checkpoint bytes after each prefix
    let mut refs = Vec::with_capacity(n as usize + 1);
    let mut fleet = new_fleet();
    let mut out = BatchOutput::new();
    refs.push(fleet.checkpoint().to_bytes());
    for _ in 0..n {
        let b = batch(&mut rng, points);
        wal.append(b.iter().copied()).expect("mem append");
        let converted: Vec<(SeriesId, f64)> = b.iter().map(|&(id, v)| (SeriesId(id), v)).collect();
        fleet.push_batch(&converted, &mut out);
        refs.push(fleet.checkpoint().to_bytes());
    }
    drop(wal);

    // tear the tail: cut 7 bytes off the last segment (always lands
    // inside the final record's digest trailer)
    let survivor = dir.survivor();
    let mut segs: Vec<String> = survivor
        .list()
        .expect("list")
        .into_iter()
        .filter(|f| f.starts_with("wal-"))
        .collect();
    segs.sort();
    let tail = segs.last().expect("at least one segment").clone();
    let mut bytes = survivor.file(&tail).expect("tail bytes");
    let cut = 7.min(bytes.len());
    bytes.truncate(bytes.len() - cut);
    survivor.put(&tail, bytes);

    let rec = match recover(&survivor, &wal_cfg) {
        Ok(rec) => rec,
        Err(_) => {
            return RecoveryCheck {
                bitwise: false,
                replayed_batches: 0,
                truncated_bytes: 0,
                torn_tail_truncated: false,
            }
        }
    };
    let mut fleet = new_fleet();
    for b in &rec.batches {
        let converted: Vec<(SeriesId, f64)> =
            b.points.iter().map(|&(id, v)| (SeriesId(id), v)).collect();
        fleet.push_batch(&converted, &mut out);
    }
    let replayed = rec.batches.len() as u64;
    let bitwise = replayed < n && fleet.checkpoint().to_bytes() == refs[replayed as usize];
    RecoveryCheck {
        bitwise,
        replayed_batches: replayed,
        truncated_bytes: rec.report.truncated_bytes,
        torn_tail_truncated: rec.report.torn_tail.is_some(),
    }
}

/// Runs the WAL measurement.
pub fn run(seed: u64, cfg: &WalBenchConfig) -> std::io::Result<WalBench> {
    let _serialize = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tsad_obs::reset_all();

    let mut rows = Vec::new();
    for (label, policy) in policies() {
        rows.push(measure_policy(seed, cfg, label, policy)?);
    }
    let recovery = check_recovery(seed, cfg);
    Ok(WalBench {
        seed,
        cfg: *cfg,
        rows,
        recovery,
        obs: tsad_obs::snapshot(),
    })
}

/// Renders the human-readable table (`repro -- wal`).
pub fn render(b: &WalBench) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "WAL durability: {} batches x {} points, {} B segments (seed {})",
        b.cfg.batches, b.cfg.batch_points, b.cfg.segment_bytes, b.seed
    );
    let _ = writeln!(
        out,
        "{:<10} {:>16} {:>14} {:>8} {:>14} {:>12}",
        "policy", "ns/batch", "points/s", "fsyncs", "bytes", "allocs"
    );
    for r in &b.rows {
        let _ = writeln!(
            out,
            "{:<10} {:>16} {:>14} {:>8} {:>14} {:>12}",
            r.policy,
            r.wall_ns_per_batch,
            r.points_per_sec,
            r.fsyncs,
            r.bytes_written,
            r.allocs_per_batch
                .map_or_else(|| "not measured".to_string(), |a| a.to_string()),
        );
    }
    let _ = writeln!(
        out,
        "recovery: bitwise={} replayed={} truncated_bytes={} torn_tail={}",
        b.recovery.bitwise,
        b.recovery.replayed_batches,
        b.recovery.truncated_bytes,
        b.recovery.torn_tail_truncated
    );
    out
}

/// Renders the machine-readable document (`BENCH_wal.json`).
pub fn render_json(b: &WalBench) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"tsad-bench-wal/v1\",");
    let _ = writeln!(out, "  \"seed\": {},", b.seed);
    let _ = writeln!(out, "  \"batches\": {},", b.cfg.batches);
    let _ = writeln!(out, "  \"batch_points\": {},", b.cfg.batch_points);
    let _ = writeln!(out, "  \"segment_bytes\": {},", b.cfg.segment_bytes);
    out.push_str("  \"policies\": [\n");
    for (i, r) in b.rows.iter().enumerate() {
        let allocs = r
            .allocs_per_batch
            .map_or_else(|| "null".to_string(), |a| a.to_string());
        let _ = writeln!(
            out,
            "    {{\"policy\": \"{}\", \"wall_ns_per_batch\": {}, \"points_per_sec\": {}, \
             \"fsyncs\": {}, \"bytes_written\": {}, \"allocs_per_batch\": {}}}{}",
            r.policy,
            r.wall_ns_per_batch,
            r.points_per_sec,
            r.fsyncs,
            r.bytes_written,
            allocs,
            if i + 1 < b.rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"recovery\": {{\"bitwise\": {}, \"replayed_batches\": {}, \"truncated_bytes\": {}, \
         \"torn_tail_truncated\": {}}},",
        b.recovery.bitwise,
        b.recovery.replayed_batches,
        b.recovery.truncated_bytes,
        b.recovery.torn_tail_truncated
    );
    let _ = writeln!(out, "  \"obs\": {}", tsad_obs::render_json(&b.obs, 2));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minijson::{parse, JsonValue};

    #[test]
    fn the_smoke_run_holds_the_durability_contracts() {
        let b = run(7, &WalBenchConfig::smoke()).expect("wal bench");
        assert_eq!(b.rows.len(), 3);
        // per-batch syncs at least once per append; off only on seals
        let per_batch = &b.rows[0];
        let off = &b.rows[2];
        assert!(per_batch.fsyncs >= b.cfg.batches);
        assert!(off.fsyncs < per_batch.fsyncs);
        assert!(per_batch.bytes_written > 0);
        // recovery fidelity is not optional
        assert!(b.recovery.bitwise);
        assert!(b.recovery.torn_tail_truncated);
        assert!(b.recovery.truncated_bytes > 0);
        assert!(b.recovery.replayed_batches > 0);
    }

    #[test]
    fn the_json_document_parses_with_the_expected_shape() {
        let b = run(7, &WalBenchConfig::smoke()).expect("wal bench");
        let doc = parse(&render_json(&b)).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("tsad-bench-wal/v1")
        );
        let rows = doc
            .get("policies")
            .and_then(JsonValue::as_arr)
            .expect("policies array");
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0].get("policy").and_then(JsonValue::as_str),
            Some("per-batch")
        );
        let rec = doc.get("recovery").expect("recovery object");
        assert_eq!(rec.get("bitwise").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            rec.get("torn_tail_truncated").and_then(JsonValue::as_bool),
            Some(true)
        );
        // without the counting allocator the alloc column is null, and
        // minijson must surface that as an absent u64
        assert_eq!(
            rows[0].get("allocs_per_batch").and_then(JsonValue::as_u64),
            None
        );
    }
}
