//! **Table 1** — brute-force one-liner solvability of the (simulated)
//! Yahoo benchmark.
//!
//! Paper reference values:
//!
//! | family | solved | total | percent |
//! |--------|--------|-------|---------|
//! | A1     | 44     | 67    | 65.7 %  |
//! | A2     | 97     | 100   | 97.0 %  |
//! | A3     | 98     | 100   | 98.0 %  |
//! | A4     | 77     | 100   | 77.0 %  |
//! | total  | 316    | 367   | 86.1 %  |

use tsad_core::Result;
use tsad_detectors::oneliner::SearchConfig;
use tsad_eval::flaws::triviality::{analyze, FamilySolvability};
use tsad_eval::report::TextTable;
use tsad_synth::yahoo::{self, Family};

/// Measured Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Per-family aggregates in A1..A4 order.
    pub families: Vec<(Family, FamilySolvability)>,
}

impl Table1 {
    /// Total series solved.
    pub fn total_solved(&self) -> usize {
        self.families.iter().map(|(_, f)| f.solved).sum()
    }

    /// Total series examined.
    pub fn total(&self) -> usize {
        self.families.iter().map(|(_, f)| f.total).sum()
    }

    /// Overall percentage.
    pub fn total_percent(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.total_solved() as f64 / self.total() as f64
        }
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Dataset",
            "Solvable with",
            "# Solved",
            "# Series",
            "Percent",
        ]);
        for (family, agg) in &self.families {
            for (eq, count) in &agg.by_equation {
                t.row(vec![
                    family.to_string(),
                    (*eq).to_string(),
                    count.to_string(),
                    String::new(),
                    format!("{:.1}%", 100.0 * *count as f64 / agg.total as f64),
                ]);
            }
            t.row(vec![
                family.to_string(),
                "Subtotal".to_string(),
                agg.solved.to_string(),
                agg.total.to_string(),
                format!("{:.1}%", agg.percent()),
            ]);
        }
        t.row(vec![
            String::new(),
            "Total".to_string(),
            self.total_solved().to_string(),
            self.total().to_string(),
            format!("{:.1}%", self.total_percent()),
        ]);
        t.render()
    }
}

/// Runs the brute-force search over the simulated benchmark.
///
/// `per_family` caps how many series per family are searched (`None` = the
/// full benchmark, 367 series — about a minute in release mode; tests use
/// a small cap).
pub fn run(seed: u64, per_family: Option<usize>) -> Result<Table1> {
    let config = SearchConfig::default();
    let mut families = Vec::with_capacity(4);
    for family in Family::all() {
        let count = per_family.map_or(family.size(), |c| c.min(family.size()));
        // Series are independent one-liner searches; fan them out and fold
        // the reports back in series order so the aggregate (including the
        // first-seen ordering of its per-equation rows) matches a
        // sequential run exactly.
        let indices: Vec<usize> = (1..=count).collect();
        let reports = tsad_parallel::par_map_indexed(&indices, |_, &index| {
            let series = yahoo::generate(seed, family, index);
            analyze(&series.dataset, &config)
        });
        let mut agg = FamilySolvability::default();
        for report in reports {
            agg.add(&report?);
        }
        families.push((family, agg));
    }
    Ok(Table1 { families })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsampled_table1_has_structure() {
        // 12 series per family keeps the test fast; the archetype quota
        // puts eq-(3) series first in A1/A2 and eq-(5) first in A3/A4, so
        // the subsample should be highly solvable.
        let t = run(42, Some(12)).unwrap();
        assert_eq!(t.total(), 48);
        assert!(t.total_percent() > 80.0, "{}", t.total_percent());
        let rendered = t.render();
        assert!(rendered.contains("Subtotal"));
        assert!(rendered.contains("Total"));
        assert!(rendered.contains("A4"));
    }

    #[test]
    fn render_contains_equation_rows() {
        let t = run(42, Some(6)).unwrap();
        let rendered = t.render();
        assert!(
            rendered.contains("(3)") || rendered.contains("(5)"),
            "{rendered}"
        );
    }
}
