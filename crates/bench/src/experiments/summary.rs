//! **§2.6 + §4.4** — "there is simply no level of performance that would
//! suggest the utility of a proposed algorithm": baseline detectors score
//! *well* on the flawed benchmarks under the community's favourite
//! protocols, and the protocols themselves disagree wildly on identical
//! predictions.

use tsad_core::{Dataset, Result};
use tsad_detectors::baselines::{GlobalZScore, MovingAvgResidual, NaiveLastPoint, RandomDetector};
use tsad_detectors::oneliner::{equation, Equation};
use tsad_detectors::Detector;
use tsad_eval::report::{fmt, TextTable};
use tsad_eval::scoring::{best_f1_over_thresholds, F1Protocol};
use tsad_synth::yahoo::{self, Family};

/// One detector's aggregate scores under three protocols.
#[derive(Debug, Clone)]
pub struct DetectorScores {
    /// Detector name.
    pub detector: &'static str,
    /// Mean best point-wise F1.
    pub pointwise: f64,
    /// Mean best point-adjust F1.
    pub point_adjust: f64,
    /// Mean best tolerance(5) F1.
    pub tolerance: f64,
}

/// The §2.6 summary study.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Scores per detector.
    pub detectors: Vec<DetectorScores>,
    /// Number of datasets evaluated.
    pub datasets: usize,
}

fn mean_scores(
    detector: &dyn Detector,
    name: &'static str,
    datasets: &[Dataset],
) -> Result<DetectorScores> {
    let mut sums = [0.0f64; 3];
    for d in datasets {
        let score = detector.score(d.series(), d.train_len())?;
        let (pw, _) = best_f1_over_thresholds(&score, d.labels(), F1Protocol::Pointwise)?;
        let (pa, _) = best_f1_over_thresholds(&score, d.labels(), F1Protocol::PointAdjust)?;
        let (tol, _) = best_f1_over_thresholds(&score, d.labels(), F1Protocol::Tolerance(5))?;
        sums[0] += pw;
        sums[1] += pa;
        sums[2] += tol;
    }
    let n = datasets.len().max(1) as f64;
    Ok(DetectorScores {
        detector: name,
        pointwise: sums[0] / n,
        point_adjust: sums[1] / n,
        tolerance: sums[2] / n,
    })
}

/// Runs the summary over `per_family` series of each Yahoo family.
pub fn run(seed: u64, per_family: usize) -> Result<Summary> {
    let mut datasets = Vec::new();
    for family in Family::all() {
        for index in 1..=per_family.min(family.size()) {
            datasets.push(yahoo::generate(seed, family, index).dataset);
        }
    }
    let one_liner = equation(Equation::Eq3, 1, 0.0, 0.0);
    let detectors: Vec<DetectorScores> = vec![
        mean_scores(&one_liner, "one-liner |diff(TS)| score", &datasets)?,
        mean_scores(
            &MovingAvgResidual::new(21),
            "moving-average residual",
            &datasets,
        )?,
        mean_scores(&GlobalZScore, "global z-score", &datasets)?,
        mean_scores(&NaiveLastPoint, "naive last-point", &datasets)?,
        mean_scores(&RandomDetector::new(seed), "random", &datasets)?,
    ];
    Ok(Summary {
        detectors,
        datasets: datasets.len(),
    })
}

/// Renders the summary table.
pub fn render(summary: &Summary) -> String {
    let mut t = TextTable::new(vec![
        "detector",
        "best F1 (point-wise)",
        "best F1 (point-adjust)",
        "best F1 (tolerance 5)",
    ]);
    for d in &summary.detectors {
        t.row(vec![
            d.detector.to_string(),
            fmt(d.pointwise),
            fmt(d.point_adjust),
            fmt(d.tolerance),
        ]);
    }
    format!(
        "§2.6 — baseline detectors on {} simulated Yahoo series (oracle thresholds):\n{}",
        summary.datasets,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_baseline_scores_embarrassingly_well() {
        let s = run(42, 6).unwrap();
        let by_name = |needle: &str| {
            s.detectors
                .iter()
                .find(|d| d.detector.contains(needle))
                .expect("present")
        };
        let residual = by_name("residual");
        // the one-liner-equivalent baseline looks like a SOTA paper result
        assert!(
            residual.point_adjust > 0.5,
            "moving-average residual point-adjust F1: {}",
            residual.point_adjust
        );
        // random is far below it
        let random = by_name("random");
        assert!(random.tolerance < residual.tolerance * 0.7);
        // and point-adjust inflates *everything* relative to point-wise
        for d in &s.detectors {
            assert!(
                d.point_adjust >= d.pointwise - 1e-9,
                "{}: {} vs {}",
                d.detector,
                d.point_adjust,
                d.pointwise
            );
        }
        let text = render(&s);
        assert!(text.contains("point-adjust"));
    }
}
