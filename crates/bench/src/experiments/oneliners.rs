//! **Figures 1–3** — one-liner demonstrations on OMNI, Numenta and Yahoo.
//!
//! * Fig. 1: dimension 19 of an SMD machine yields to three *different*
//!   one-liners (`TS > c`, `movstd(TS, k) > c`, `abs(diff(TS)) > c`).
//! * Fig. 2: Numenta's `art_increase_spike_density` yields to
//!   `movstd(TS, k) > c`.
//! * Fig. 3: a Yahoo-A1-Real1-like series yields to an equation-(1)
//!   instance whose positives match the ground truth closely.

use tsad_core::{ops, Dataset, Labels, Result};
use tsad_detectors::oneliner::{equation_general, solves, Expr, OneLiner};
use tsad_eval::report::{ascii_plot, sparkline};
use tsad_synth::{numenta, omni, yahoo};

/// One demonstrated one-liner and whether it solves the problem.
#[derive(Debug, Clone)]
pub struct Demo {
    /// Rendered MATLAB-like predicate.
    pub rendered: String,
    /// Whether the predicate solves the labels (slop = 8).
    pub solved: bool,
}

/// Fig. 1 result: the series (dimension 19) and three one-liner demos.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Dimension-19 values.
    pub series: Vec<f64>,
    /// Ground-truth labels.
    pub labels: Labels,
    /// The three one-liners.
    pub demos: Vec<Demo>,
}

/// Tolerance used when checking the demos against the labels.
pub const DEMO_SLOP: usize = 8;

fn demo(one_liner: &OneLiner, x: &[f64], labels: &Labels, slop: usize) -> Result<Demo> {
    let mask = one_liner.mask(x)?;
    Ok(Demo {
        rendered: one_liner.to_string(),
        solved: solves(&mask, labels, slop),
    })
}

/// Runs the Fig. 1 demonstration.
pub fn fig1(seed: u64) -> Result<Fig1> {
    let machine = omni::smd_machine(seed);
    let dim19 = machine.series.dimension(omni::FIG1_DIM)?;
    let x = dim19.values().to_vec();
    let labels = machine.labels.clone();

    // pick thresholds from the data like the figure does (a constant that
    // separates the anomaly window); the three predicates are built and
    // checked independently, so they fan out as one task each (results stay
    // in declaration order — that is `par_invoke`'s contract)
    let region = labels.regions()[0];
    type DemoTask<'a> = Box<dyn FnOnce() -> Result<Demo> + Send + 'a>;
    let x_ref = &x;
    let labels_ref = &labels;
    let tasks: Vec<DemoTask<'_>> = vec![
        Box::new(move || {
            let outside_max = x_ref
                .iter()
                .enumerate()
                .filter(|(i, _)| !region.contains(*i))
                .map(|(_, &v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            let ol1 = OneLiner::new(Expr::Ts, Expr::Const(outside_max + 0.01));
            demo(&ol1, x_ref, labels_ref, DEMO_SLOP)
        }),
        Box::new(move || {
            let sd = ops::movstd(x_ref, 25)?;
            let sd_out = sd
                .iter()
                .enumerate()
                .filter(|(i, _)| !region.dilate(25, x_ref.len()).contains(*i))
                .map(|(_, &v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            let ol2 = OneLiner::new(Expr::Ts.movstd(25), Expr::Const(sd_out * 1.05));
            // the movstd response necessarily extends half a window beyond
            // the labeled region, so its demo gets window-sized slop
            demo(&ol2, x_ref, labels_ref, 25)
        }),
        Box::new(move || {
            let ad = ops::abs(&ops::diff(x_ref));
            let ad_out = ad
                .iter()
                .enumerate()
                .filter(|(i, _)| !region.dilate(2, x_ref.len()).contains(i + 1))
                .map(|(_, &v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            let ol3 = OneLiner::new(Expr::Ts.diff().abs(), Expr::Const(ad_out * 1.05));
            demo(&ol3, x_ref, labels_ref, DEMO_SLOP)
        }),
    ];
    let demos = tsad_parallel::par_invoke(tasks)
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
    Ok(Fig1 {
        series: x,
        labels,
        demos,
    })
}

/// Fig. 2 result.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// The dataset.
    pub dataset: Dataset,
    /// The one-liner demo.
    pub demo: Demo,
}

/// Runs the Fig. 2 demonstration on `art_increase_spike_density`.
pub fn fig2(seed: u64) -> Result<Fig2> {
    let dataset = numenta::art_spike_density(seed);
    let x = dataset.values();
    // movstd over a generous window responds to the spike-density change;
    // pick the threshold just above the max outside the (dilated) label
    let k = 75;
    let sd = ops::movstd(x, k)?;
    let region = dataset.labels().regions()[0].dilate(k, x.len());
    let sd_out = sd
        .iter()
        .enumerate()
        .filter(|(i, _)| !region.contains(*i))
        .map(|(_, &v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    let ol = OneLiner::new(Expr::Ts.movstd(k), Expr::Const(sd_out * 1.02));
    // Demo correctness uses a slop of k: the movstd response necessarily
    // extends half a window outside the labeled region.
    let mask = ol.mask(x)?;
    let demo = Demo {
        rendered: ol.to_string(),
        solved: solves(&mask, dataset.labels(), k),
    };
    Ok(Fig2 { dataset, demo })
}

/// Fig. 3 result.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// The dataset.
    pub dataset: Dataset,
    /// The equation-(1)-family demo.
    pub demo: Demo,
    /// Point-wise agreement between the one-liner positives and the labels
    /// under slop 3 ("a zoom-in shows how precisely the simple one-liner
    /// can match the ground truth").
    pub matches_exactly: bool,
}

/// Runs the Fig. 3 demonstration on the A1-Real1-like series.
pub fn fig3(seed: u64) -> Result<Fig3> {
    let dataset = yahoo::a1_real1(seed);
    let x = dataset.values();
    // an equation-(1) instance: abs(diff) > movmean + c*movstd + b; find b
    // by separating the labeled extremes
    let signal = ops::abs(&ops::diff(x));
    let mm = ops::movmean(&signal, 21)?;
    let sd = ops::movstd(&signal, 21)?;
    // c = 1: larger coefficients let the anomaly's own contribution to the
    // centered movstd cancel it out
    let residual: Vec<f64> = signal
        .iter()
        .zip(mm.iter().zip(&sd))
        .map(|(s, (m, v))| s - m - v)
        .collect();
    // threshold: midpoint of the largest gap at the top
    let mut sorted = residual.clone();
    // total_cmp keeps this panic-free if a residual ever goes NaN
    sorted.sort_by(f64::total_cmp);
    let b = {
        let hi = sorted[sorted.len() - 1];
        let candidates: Vec<f64> = sorted.iter().rev().take(8).copied().collect();
        let mut best_gap = 0.0;
        let mut best_mid = hi - 1e-3;
        for w in candidates.windows(2) {
            let gap = w[0] - w[1];
            if gap > best_gap {
                best_gap = gap;
                best_mid = 0.5 * (w[0] + w[1]);
            }
        }
        best_mid
    };
    let ol = equation_general(true, 1.0, 21, 1.0, b);
    let mask = ol.mask(x)?;
    let solved = solves(&mask, dataset.labels(), 3);
    let demo = Demo {
        rendered: ol.to_string(),
        solved,
    };
    // "precisely": every labeled region has a positive within 1 point
    let matches_exactly = dataset.labels().regions().iter().all(|r| {
        let d = r.dilate(1, dataset.len());
        (d.start..d.end).any(|i| mask[i])
    });
    Ok(Fig3 {
        dataset,
        demo,
        matches_exactly,
    })
}

/// Text rendering shared by the three figures.
pub fn render_fig1(fig: &Fig1) -> String {
    let mut out = String::from("Fig. 1 — OMNI/SMD dimension 19, three one-liners:\n");
    out.push_str(&ascii_plot(
        &fig.series,
        Some(&fig.labels.to_mask()),
        100,
        10,
    ));
    for d in &fig.demos {
        out.push_str(&format!(
            "  [{}] {}\n",
            if d.solved { "solves" } else { "FAILS " },
            d.rendered
        ));
    }
    out
}

/// Renders Fig. 2.
pub fn render_fig2(fig: &Fig2) -> String {
    let mut out = String::from("Fig. 2 — Numenta art_increase_spike_density:\n");
    out.push_str(&ascii_plot(
        fig.dataset.values(),
        Some(&fig.dataset.labels().to_mask()),
        100,
        8,
    ));
    out.push_str(&format!(
        "  [{}] {}\n",
        if fig.demo.solved { "solves" } else { "FAILS " },
        fig.demo.rendered
    ));
    out
}

/// Renders Fig. 3.
pub fn render_fig3(fig: &Fig3) -> String {
    let mut out = String::from("Fig. 3 — Yahoo A1-Real1-like series:\n");
    out.push_str("  series:  ");
    out.push_str(&sparkline(fig.dataset.values(), 100));
    out.push('\n');
    out.push_str(&format!(
        "  [{}] {}\n  matches ground truth within ±1 point: {}\n",
        if fig.demo.solved { "solves" } else { "FAILS " },
        fig.demo.rendered,
        fig.matches_exactly
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_three_oneliners_solve() {
        let f = fig1(42).unwrap();
        assert_eq!(f.demos.len(), 3);
        for d in &f.demos {
            assert!(d.solved, "{} should solve dim 19", d.rendered);
        }
        // the three predicates are genuinely different
        assert!(f.demos[0].rendered.contains("TS >"));
        assert!(f.demos[1].rendered.contains("movstd"));
        assert!(f.demos[2].rendered.contains("abs(diff"));
        let text = render_fig1(&f);
        assert!(text.contains("solves"));
    }

    #[test]
    fn fig2_movstd_solves_spike_density() {
        let f = fig2(42).unwrap();
        assert!(f.demo.solved, "{}", f.demo.rendered);
        assert!(f.demo.rendered.contains("movstd"));
        assert!(render_fig2(&f).contains("solves"));
    }

    #[test]
    fn fig3_equation1_solves_and_matches() {
        let f = fig3(42).unwrap();
        assert!(f.demo.solved, "{}", f.demo.rendered);
        assert!(f.matches_exactly);
        assert!(f.demo.rendered.contains("movmean"), "{}", f.demo.rendered);
        assert!(render_fig3(&f).contains("matches ground truth"));
    }
}
