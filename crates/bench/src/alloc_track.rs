//! Counting global allocator for allocation-tracking benchmarks.
//!
//! [`CountingAlloc`] wraps the system allocator and bumps a thread-local
//! counter on every `alloc`/`realloc`/`alloc_zeroed`. It is installed only
//! in harness binaries — the `repro` bench driver and the `alloc_free`
//! integration test put it in *their* binaries via `#[global_allocator]` —
//! so no library consumer ever pays for it; library code merely reads the
//! counter through [`thread_allocs`], which reports monotonically-zero
//! deltas when the plain system allocator is in charge.
//!
//! The counter is thread-local on purpose: the kernels under test measure
//! their zero-allocation claim at one effective thread (per-call scoped
//! workers would each need their own ledger, and their spawns themselves
//! allocate), and a process-global atomic would let an unrelated thread
//! pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // const-initialized Cell: no lazy-init allocation and no destructor
    // registration, both of which would recurse into the allocator
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A `#[global_allocator]` that counts allocation events per thread.
///
/// Deallocations are intentionally not counted: the benchmarks gate on
/// "the warm path requests no new memory", and frees of warm-up-era
/// buffers would only blur that signal.
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn bump() {
        ALLOCS.with(|c| c.set(c.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocation events recorded on the calling thread since it started (0
/// forever when [`CountingAlloc`] is not the process allocator).
pub fn thread_allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Allocation events `f` performs on the calling thread.
pub fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = thread_allocs();
    f();
    thread_allocs() - before
}

/// Whether [`CountingAlloc`] is actually installed in this process, probed
/// by performing one heap allocation and checking that the counter moved.
/// Lets shared code (the `bench-json` experiment runs both under `repro`,
/// where the allocator is installed, and under `cargo test`, where it is
/// not) report `None` instead of a bogus zero.
pub fn counting_allocator_active() -> bool {
    count_allocs(|| {
        std::hint::black_box(Box::new(0u64));
    }) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_allocs_is_zero_for_allocation_free_work() {
        // whether or not the counting allocator is installed, code that
        // never touches the heap must count zero
        let mut acc = 0.0f64;
        let n = count_allocs(|| {
            for i in 0..1000 {
                acc += (i as f64).sqrt();
            }
        });
        std::hint::black_box(acc);
        assert_eq!(n, 0);
    }

    #[test]
    fn active_probe_is_consistent() {
        // in the library test binary the system allocator is in charge, so
        // the probe and a direct count must agree with each other
        let active = counting_allocator_active();
        let counted = count_allocs(|| {
            std::hint::black_box(vec![1u8; 128]);
        }) > 0;
        assert_eq!(active, counted);
    }
}
