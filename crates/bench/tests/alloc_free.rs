//! End-to-end proof of the allocation-free kernel contracts.
//!
//! This test binary installs [`tsad_bench::alloc_track::CountingAlloc`] as
//! its global allocator and asserts that, after one warm-up call at a
//! single effective thread, the hot kernels perform **zero** heap
//! allocations: the FFT plan lookup, the sliding dot product into a
//! caller-owned buffer, STOMP through its workspace entry point, and the
//! MERLIN length sweep through `merlin_into`.
//!
//! Everything runs under `with_threads(1)`: the zero-allocation contract
//! is single-threaded by design (scoped worker spawns at higher thread
//! counts allocate), and the override also keeps the thread-count probe
//! from touching the environment inside the counted region.
//!
//! Observability is ON by default (`TSAD_OBS` is unset here), so every
//! kernel assertion in this file also proves that `tsad-obs` recording —
//! plan-cache counters, band-timing spans, worker spans — adds **zero**
//! allocations to the instrumented hot paths. The explicit obs tests at
//! the bottom pin the switch both ways; the disabled side is proven
//! end-to-end (environment variable and all) in `obs_noop.rs`.

#[global_allocator]
static ALLOC: tsad_bench::alloc_track::CountingAlloc = tsad_bench::alloc_track::CountingAlloc;

use tsad_bench::alloc_track::{count_allocs, counting_allocator_active};
use tsad_core::fft::{fft_plan, rfft_plan, sliding_dot_product_into};
use tsad_detectors::matrix_profile::{
    stomp_metric_with, MatrixProfile, ProfileMetric, StompWorkspace,
};
use tsad_parallel::with_threads;

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (i as f64 * 0.12).sin() + 0.2 * noise
        })
        .collect()
}

#[test]
fn counting_allocator_is_installed() {
    assert!(counting_allocator_active());
    assert!(
        count_allocs(|| {
            std::hint::black_box(vec![0u8; 64]);
        }) > 0
    );
}

#[test]
fn warm_plan_lookup_is_allocation_free() {
    let _ = fft_plan(1024).unwrap();
    let _ = rfft_plan(1024).unwrap();
    let allocs = count_allocs(|| {
        for _ in 0..8 {
            std::hint::black_box(fft_plan(1024).unwrap());
            std::hint::black_box(rfft_plan(1024).unwrap());
        }
    });
    assert_eq!(allocs, 0, "plan cache lookup allocated");
}

#[test]
fn warm_sliding_dot_product_is_allocation_free() {
    let x = series(8192, 2);
    let q = series(512, 3);
    with_threads(1, || {
        let mut dots = Vec::new();
        sliding_dot_product_into(&q, &x, &mut dots).unwrap();
        let allocs = count_allocs(|| {
            sliding_dot_product_into(&q, &x, &mut dots).unwrap();
        });
        assert_eq!(allocs, 0, "warm sliding_dot_product allocated");
        assert_eq!(dots.len(), x.len() - q.len() + 1);
    });
}

#[test]
fn warm_stomp_is_allocation_free() {
    let x = series(1024, 4);
    let m = 64;
    with_threads(1, || {
        let mut ws = StompWorkspace::default();
        let mut mp = MatrixProfile {
            profile: Vec::new(),
            index: Vec::new(),
            window: m,
        };
        stomp_metric_with(&x, m, ProfileMetric::ZNormalized, &mut ws, &mut mp).unwrap();
        let allocs = count_allocs(|| {
            stomp_metric_with(&x, m, ProfileMetric::ZNormalized, &mut ws, &mut mp).unwrap();
        });
        assert_eq!(allocs, 0, "warm stomp allocated");
        assert_eq!(mp.profile.len(), x.len() - m + 1);
    });
}

#[test]
fn warm_merlin_is_allocation_free() {
    // MERLIN's contract: with the output list persistent, the per-chunk
    // partials pooled, and the DRAG buffers thread-local, a warm
    // single-threaded length sweep performs zero heap allocations — with
    // observability ON, like every other contract in this file.
    use tsad_detectors::merlin::merlin_into;
    let x = series(400, 7);
    with_threads(1, || {
        let mut discords = Vec::new();
        merlin_into(&x, 16, 24, &mut discords).unwrap();
        let allocs = count_allocs(|| {
            discords.clear();
            merlin_into(&x, 16, 24, &mut discords).unwrap();
        });
        assert_eq!(allocs, 0, "warm merlin allocated");
        assert_eq!(discords.len(), 9);
    });
}

#[test]
fn obs_recording_is_allocation_free_when_enabled() {
    static C: tsad_obs::Counter = tsad_obs::Counter::new("bench.alloc_test.counter");
    static H: tsad_obs::Histogram = tsad_obs::Histogram::new("bench.alloc_test.hist", "ns");
    static S: tsad_obs::Span = tsad_obs::Span::new("bench.alloc_test.span_ns");
    tsad_obs::with_enabled(true, || {
        // first records register the metrics (a lock-free CAS, not an
        // allocation — counted below anyway, after this warm-up)
        C.inc();
        H.record(1);
        drop(S.start());
        let allocs = count_allocs(|| {
            for i in 0..64u64 {
                C.add(2);
                H.record(i * 1000);
                let _g = S.start();
            }
        });
        assert_eq!(allocs, 0, "enabled obs recording allocated");
    });
    assert_eq!(C.get(), 1 + 64 * 2);
    assert_eq!(H.count(), 65);
    assert_eq!(S.histogram().count(), 65);
}

#[test]
fn obs_disabled_recording_is_allocation_free_noop() {
    static C: tsad_obs::Counter = tsad_obs::Counter::new("bench.alloc_test.disabled_counter");
    static S: tsad_obs::Span = tsad_obs::Span::new("bench.alloc_test.disabled_span_ns");
    tsad_obs::with_enabled(false, || {
        let allocs = count_allocs(|| {
            for _ in 0..64 {
                C.inc();
                let _g = S.start();
            }
        });
        assert_eq!(allocs, 0, "disabled obs recording allocated");
    });
    assert_eq!(C.get(), 0, "disabled recording moved a counter");
    assert_eq!(S.histogram().count(), 0, "disabled span recorded");
}

#[test]
fn warm_stomp_stays_allocation_free_with_obs_pinned_off() {
    // the kill-switch path must not regress the kernel contract either
    let x = series(1024, 6);
    let m = 64;
    tsad_obs::with_enabled(false, || {
        with_threads(1, || {
            let mut ws = StompWorkspace::default();
            let mut mp = MatrixProfile {
                profile: Vec::new(),
                index: Vec::new(),
                window: m,
            };
            stomp_metric_with(&x, m, ProfileMetric::ZNormalized, &mut ws, &mut mp).unwrap();
            let allocs = count_allocs(|| {
                stomp_metric_with(&x, m, ProfileMetric::ZNormalized, &mut ws, &mut mp).unwrap();
            });
            assert_eq!(allocs, 0, "warm stomp allocated with obs disabled");
        });
    });
}

#[test]
fn fleet_steady_state_ingest_is_allocation_free() {
    // The fleet contract (DESIGN.md §10): once every series is resident
    // and every reusable buffer has hit its high-water mark, batched
    // ingestion performs zero heap allocations at one effective thread —
    // with observability ON (TSAD_OBS is unset here), so the fleet's
    // counters, gauges, and spans are proven free along with the slab,
    // LRU, and per-batch buffers. `repro -- fleet-json` records the same
    // number in BENCH_fleet.json as `allocs_per_point`, gated by
    // `fleet-compare` in CI.
    use tsad_fleet::{BatchOutput, Fleet, FleetConfig, SeriesId};
    use tsad_stream::{FnFactory, NanPolicy, Sanitized, StreamingCusum};

    let spawn = |_id: u64| {
        Sanitized::new(
            StreamingCusum::new(Default::default(), 8).unwrap(),
            NanPolicy::Skip,
        )
    };
    let mut fleet = Fleet::new(
        FnFactory(spawn),
        FleetConfig {
            shards: 8,
            ..FleetConfig::default()
        },
    );
    let mut out = BatchOutput::new();
    let mut batch: Vec<(SeriesId, f64)> = Vec::with_capacity(512);
    let mut drive = |fleet: &mut Fleet<_>, out: &mut BatchOutput, round: u64| {
        for chunk in 0..4u64 {
            batch.clear();
            for id in (chunk * 512)..((chunk + 1) * 512) {
                batch.push((SeriesId(id), ((id * 31 + round * 7) % 100) as f64 / 10.0));
            }
            fleet.push_batch(&batch, out);
        }
    };
    with_threads(1, || {
        // warm-up: spawn all 2048 series, calibrate (train=8), and let
        // every reusable buffer reach its high-water mark
        for round in 0..12 {
            drive(&mut fleet, &mut out, round);
        }
        let allocs = count_allocs(|| {
            drive(&mut fleet, &mut out, 12);
        });
        assert_eq!(allocs, 0, "steady-state fleet ingest allocated");
    });
    assert_eq!(fleet.series_active(), 2048);
}

#[test]
fn warm_euclidean_stomp_is_allocation_free() {
    // the other scorer path has the same contract
    let x = series(700, 5);
    let m = 32;
    with_threads(1, || {
        let mut ws = StompWorkspace::default();
        let mut mp = MatrixProfile {
            profile: Vec::new(),
            index: Vec::new(),
            window: m,
        };
        stomp_metric_with(&x, m, ProfileMetric::Euclidean, &mut ws, &mut mp).unwrap();
        let allocs = count_allocs(|| {
            stomp_metric_with(&x, m, ProfileMetric::Euclidean, &mut ws, &mut mp).unwrap();
        });
        assert_eq!(allocs, 0, "warm euclidean stomp allocated");
    });
}
