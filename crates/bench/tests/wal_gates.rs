//! Durability-path gates for `tsad-wal`, run with a counting allocator
//! installed in *this* binary (like `repro` does):
//!
//! * a warm WAL append against real files allocates **zero** heap memory
//!   per batch, with observability ON;
//! * disabling observability (the thread-scoped [`tsad_obs::with_enabled`])
//!   keeps the append path allocation-free and leaves the log bytes
//!   **bitwise identical** — the kill switch changes cost, never what
//!   reaches the disk;
//! * after appends, the global metric registry carries the `wal.*`
//!   family, so `repro --obs-summary` includes the durability path.

#[global_allocator]
static ALLOC: tsad_bench::alloc_track::CountingAlloc = tsad_bench::alloc_track::CountingAlloc;

use tsad_bench::alloc_track::{count_allocs, counting_allocator_active};
use tsad_wal::{FsDir, FsyncPolicy, MemDir, Wal, WalConfig, WalDir};

/// A unique scratch directory under the system temp dir, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "tsad-wal-gates-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        std::fs::create_dir_all(&path).expect("scratch dir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic finite value for (id, round).
fn value(id: u64, round: u64) -> f64 {
    let mut x = id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(round.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 31;
    (x % 4000) as f64 / 100.0 - 20.0
}

const POINTS: u64 = 32;

fn batch(round: u64) -> Vec<(u64, f64)> {
    (0..POINTS)
        .map(|i| {
            let id = (round * POINTS + i) % 256;
            (id, value(id, round))
        })
        .collect()
}

/// A WAL on real files with a segment big enough that the counted window
/// never rotates (rotation opens a file, which allocates by design).
fn warm_wal(tag: &str, policy: FsyncPolicy) -> (TempDir, Wal<FsDir>) {
    let tmp = TempDir::new(tag);
    let dir = FsDir::open(&tmp.0).expect("open scratch dir");
    let cfg = WalConfig {
        segment_bytes: 64 << 20,
        policy,
        ..WalConfig::new("wal-gates-zscore-w4")
    };
    let mut wal = Wal::create(dir, cfg).expect("create wal");
    // warm: scratch buffers grow to their high-water mark
    for round in 0..16 {
        let b = batch(round);
        wal.append(b.iter().copied()).expect("warm append");
    }
    (tmp, wal)
}

fn assert_zero_alloc_warm(tag: &str, policy: FsyncPolicy) {
    assert!(
        counting_allocator_active(),
        "this test binary must install CountingAlloc"
    );
    let (_tmp, mut wal) = warm_wal(tag, policy.clone());
    let batches: Vec<Vec<(u64, f64)>> = (16..64).map(batch).collect();
    let allocs = count_allocs(|| {
        for b in &batches {
            wal.append(b.iter().copied()).expect("counted append");
        }
    });
    assert_eq!(
        allocs,
        0,
        "warm append path allocated ({} batches, {policy:?})",
        batches.len()
    );
}

#[test]
fn warm_append_is_allocation_free_with_obs_on() {
    assert_zero_alloc_warm("on-per-batch", FsyncPolicy::PerBatch);
    assert_zero_alloc_warm("on-off", FsyncPolicy::Off);
}

#[test]
fn warm_append_is_allocation_free_with_obs_off() {
    tsad_obs::with_enabled(false, || {
        assert_zero_alloc_warm("off-per-batch", FsyncPolicy::PerBatch);
        assert_zero_alloc_warm("off-off", FsyncPolicy::Off);
    });
}

#[test]
fn obs_kill_switch_never_changes_the_log_bytes() {
    // identical appends into two in-memory logs, one with recording off:
    // every segment byte must match.
    let write_all = || {
        let dir = MemDir::new();
        let cfg = WalConfig {
            segment_bytes: 2048,
            ..WalConfig::new("wal-gates-zscore-w4")
        };
        let mut wal = Wal::create(dir.clone(), cfg).expect("create");
        for round in 0..32 {
            let b = batch(round);
            wal.append(b.iter().copied()).expect("append");
        }
        wal.flush().expect("flush");
        drop(wal);
        dir
    };
    let dir_on = write_all();
    let dir_off = tsad_obs::with_enabled(false, write_all);

    let mut names = dir_on.survivor().list().expect("list");
    names.sort();
    let mut names_off = dir_off.survivor().list().expect("list");
    names_off.sort();
    assert_eq!(names, names_off, "segment sets differ");
    assert!(!names.is_empty());
    for name in &names {
        assert_eq!(
            dir_on.survivor().file(name),
            dir_off.survivor().file(name),
            "{name} differs with observability disabled"
        );
    }
}

#[test]
fn obs_registry_carries_the_wal_family_after_appends() {
    let (_tmp, mut wal) = warm_wal("obs-family", FsyncPolicy::PerBatch);
    for round in 16..24 {
        let b = batch(round);
        wal.append(b.iter().copied()).expect("append");
    }
    let summary = tsad_obs::render_summary(&tsad_obs::snapshot());
    for metric in ["wal.append_ns", "wal.fsync_ns"] {
        assert!(
            summary.contains(metric),
            "summary missing {metric}:\n{summary}"
        );
    }
}
