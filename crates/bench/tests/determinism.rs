//! Experiment-level thread-count invariance.
//!
//! The `repro` drivers fan dataset × detector cells onto the
//! `tsad-parallel` pool; these tests pin that the *reported numbers* —
//! solvability counts, per-equation row ordering, contest accuracies —
//! are identical under `TSAD_THREADS` overrides of 1, 2, and 8.

use tsad_bench::experiments::{contest, table1, triviality_all};
use tsad_parallel::with_threads;

#[test]
fn table1_is_thread_count_invariant() {
    let base = with_threads(1, || table1::run(42, Some(6)).unwrap());
    for t in [2usize, 8] {
        let got = with_threads(t, || table1::run(42, Some(6)).unwrap());
        assert_eq!(got.total(), base.total(), "at {t} threads");
        assert_eq!(got.total_solved(), base.total_solved(), "at {t} threads");
        // the rendered table pins per-equation row ordering too (the
        // aggregate's by-equation rows are in first-seen series order)
        assert_eq!(got.render(), base.render(), "at {t} threads");
    }
}

#[test]
fn triviality_study_is_thread_count_invariant() {
    let base = with_threads(1, || triviality_all::run(42, 8).unwrap());
    for t in [2usize, 8] {
        let got = with_threads(t, || triviality_all::run(42, 8).unwrap());
        assert_eq!(
            triviality_all::render(&got),
            triviality_all::render(&base),
            "at {t} threads"
        );
    }
}

#[test]
fn contest_is_thread_count_invariant() {
    let base = with_threads(1, || contest::run(42, 4).unwrap());
    for t in [2usize, 8] {
        let got = with_threads(t, || contest::run(42, 4).unwrap());
        assert_eq!(got.datasets, base.datasets, "at {t} threads");
        let accs = |c: &contest::Contest| {
            c.results
                .iter()
                .map(|r| (r.detector, r.accuracy().to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(accs(&got), accs(&base), "at {t} threads");
    }
}
