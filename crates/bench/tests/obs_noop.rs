//! End-to-end proof that `TSAD_OBS=0` makes observability a true no-op.
//!
//! This binary holds exactly ONE test: the crate caches the environment
//! verdict on first use, so the variable must be set before any obs call
//! and must stay authoritative for the whole process — a second test could
//! race the cache fill. (The in-process equivalents using `with_enabled`
//! live in `alloc_free.rs`; this file proves the real environment path,
//! including spawned worker threads, which thread-local overrides do not
//! reach.)
//!
//! Claims proven here, per the kernel contracts in `DESIGN.md` §8:
//! 1. with `TSAD_OBS=0`, the gated kernels (`sliding_dot_product`,
//!    `stomp`) still run **zero** allocations per warm iteration;
//! 2. kernel outputs are **bitwise identical** at 1, 2, and 8 threads with
//!    observability disabled — and bitwise identical to an
//!    observability-enabled run (instrumentation never touches numerics);
//! 3. nothing registers: the global snapshot stays empty.

#[global_allocator]
static ALLOC: tsad_bench::alloc_track::CountingAlloc = tsad_bench::alloc_track::CountingAlloc;

use tsad_bench::alloc_track::count_allocs;
use tsad_core::fft::sliding_dot_product_into;
use tsad_detectors::matrix_profile::{
    stomp_metric_with, MatrixProfile, ProfileMetric, StompWorkspace,
};
use tsad_parallel::with_threads;

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (i as f64 * 0.12).sin() + 0.2 * noise
        })
        .collect()
}

fn stomp_profile(x: &[f64], m: usize, threads: usize) -> (Vec<f64>, Vec<usize>) {
    with_threads(threads, || {
        let mut ws = StompWorkspace::default();
        let mut mp = MatrixProfile {
            profile: Vec::new(),
            index: Vec::new(),
            window: m,
        };
        stomp_metric_with(x, m, ProfileMetric::ZNormalized, &mut ws, &mut mp).unwrap();
        (mp.profile, mp.index)
    })
}

#[test]
fn tsad_obs_0_disables_recording_without_touching_the_kernels() {
    // Must precede every obs call in this process (see the module docs).
    std::env::set_var("TSAD_OBS", "0");
    assert!(!tsad_obs::enabled(), "TSAD_OBS=0 not honored");

    let x = series(2048, 11);
    let m = 64;
    let q = series(256, 12);

    // 1. allocation contracts hold with the kill switch thrown
    with_threads(1, || {
        let mut dots = Vec::new();
        sliding_dot_product_into(&q, &x, &mut dots).unwrap();
        let allocs = count_allocs(|| {
            sliding_dot_product_into(&q, &x, &mut dots).unwrap();
        });
        assert_eq!(
            allocs, 0,
            "warm sliding_dot_product allocated under TSAD_OBS=0"
        );

        let mut ws = StompWorkspace::default();
        let mut mp = MatrixProfile {
            profile: Vec::new(),
            index: Vec::new(),
            window: m,
        };
        stomp_metric_with(&x, m, ProfileMetric::ZNormalized, &mut ws, &mut mp).unwrap();
        let allocs = count_allocs(|| {
            stomp_metric_with(&x, m, ProfileMetric::ZNormalized, &mut ws, &mut mp).unwrap();
        });
        assert_eq!(allocs, 0, "warm stomp allocated under TSAD_OBS=0");
    });

    // 2. thread-count invariance is bitwise, with workers reading the
    //    disabled environment verdict themselves
    let reference = stomp_profile(&x, m, 1);
    for threads in [2usize, 8] {
        let got = stomp_profile(&x, m, threads);
        assert!(
            got.0
                .iter()
                .zip(&reference.0)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "profile differs at {threads} threads under TSAD_OBS=0"
        );
        assert_eq!(got.1, reference.1, "index differs at {threads} threads");
    }

    // 3. nothing registered: the snapshot is empty (checked before any
    //    enabled-mode recording below re-populates the registry)
    assert!(
        tsad_obs::snapshot().is_empty(),
        "metrics registered despite TSAD_OBS=0"
    );

    // instrumentation on vs off never changes numerics: re-enable on this
    // thread only and compare bitwise (single-threaded, so every record
    // site the kernel reaches is live)
    let instrumented = tsad_obs::with_enabled(true, || stomp_profile(&x, m, 1));
    assert!(
        instrumented
            .0
            .iter()
            .zip(&reference.0)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "instrumentation changed the profile"
    );
    assert_eq!(instrumented.1, reference.1);
    assert!(
        !tsad_obs::snapshot().is_empty(),
        "enabled-mode sanity check recorded nothing (is the instrumentation wired?)"
    );
}
