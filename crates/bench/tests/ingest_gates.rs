//! Serving-path gates for `tsad-ingest`, run with a counting allocator
//! installed in *this* binary (like `repro` does):
//!
//! * a warm request path allocates **zero** heap memory per request, on
//!   both transports, with observability ON;
//! * disabling observability (`TSAD_OBS=0`, here via the thread-scoped
//!   [`tsad_obs::with_enabled`]) keeps the path allocation-free and leaves
//!   the response bytes **bitwise identical** — the kill switch changes
//!   cost, never behavior;
//! * after traffic, the global metric registry carries the `ingest.*`
//!   family, so `repro --obs-summary` includes the serving path.

#[global_allocator]
static ALLOC: tsad_bench::alloc_track::CountingAlloc = tsad_bench::alloc_track::CountingAlloc;

use std::fmt::Write as _;

use tsad_bench::alloc_track::{count_allocs, counting_allocator_active};
use tsad_fleet::{Fleet, FleetConfig};
use tsad_ingest::{frame, Conn, ConnConfig, Engine, EngineConfig};
use tsad_stream::{FnFactory, StreamingGlobalZScore};

type TestFactory = FnFactory<fn(u64) -> StreamingGlobalZScore>;

fn spawn_detector(_id: u64) -> StreamingGlobalZScore {
    StreamingGlobalZScore::new(4).expect("window >= 2")
}

fn new_engine() -> Engine<TestFactory> {
    let fleet = Fleet::new(
        FnFactory(spawn_detector as fn(u64) -> StreamingGlobalZScore),
        FleetConfig {
            shards: 4,
            ..FleetConfig::default()
        },
    );
    Engine::new(fleet, EngineConfig::default())
}

/// Deterministic finite value for (id, round).
fn value(id: u64, round: u64) -> f64 {
    let mut x = id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(round.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 31;
    (x % 4000) as f64 / 100.0 - 20.0
}

const POINTS: u64 = 32;
const SERIES: u64 = 256;

/// One round's `POST /ingest` request.
fn http_request(round: u64) -> Vec<u8> {
    let mut body = String::new();
    for i in 0..POINTS {
        let id = (round * POINTS + i) % SERIES;
        let _ = writeln!(body, "{} {}", id, value(id, round));
    }
    format!(
        "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// One round's binary `INGEST` frame.
fn binary_request(round: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    for i in 0..POINTS {
        let id = (round * POINTS + i) % SERIES;
        frame::write_point(&mut payload, id, value(id, round));
    }
    let mut req = Vec::new();
    frame::write_frame(&mut req, frame::T_INGEST, &payload);
    req
}

/// Feeds one request and returns a copy of the response (consuming it from
/// the connection so buffers stay warm).
fn roundtrip(conn: &mut Conn, engine: &Engine<TestFactory>, request: &[u8]) -> Vec<u8> {
    conn.feed(request, engine);
    let resp = conn.output().to_vec();
    assert!(!resp.is_empty(), "request got no response");
    let n = conn.output().len();
    conn.consume_output(n);
    resp
}

/// Feeds one request and drops the response without copying it (the
/// counted path — `to_vec` would itself allocate).
fn roundtrip_counted(conn: &mut Conn, engine: &Engine<TestFactory>, request: &[u8]) {
    conn.feed(request, engine);
    let n = conn.output().len();
    conn.consume_output(n);
}

fn assert_zero_alloc_warm(requests: &[Vec<u8>]) {
    assert!(
        counting_allocator_active(),
        "this test binary must install CountingAlloc"
    );
    let engine = new_engine();
    let mut conn = Conn::new(ConnConfig::default());
    // warm: spawn all series, grow every reusable buffer
    for req in requests {
        roundtrip(&mut conn, &engine, req);
    }
    let allocs = count_allocs(|| {
        for req in requests {
            roundtrip_counted(&mut conn, &engine, req);
        }
    });
    assert_eq!(
        allocs,
        0,
        "warm request path allocated ({} requests)",
        requests.len()
    );
}

#[test]
fn warm_http_request_path_is_allocation_free_with_obs_on() {
    let requests: Vec<Vec<u8>> = (0..48).map(http_request).collect();
    assert_zero_alloc_warm(&requests);
}

#[test]
fn warm_binary_request_path_is_allocation_free_with_obs_on() {
    let requests: Vec<Vec<u8>> = (0..48).map(binary_request).collect();
    assert_zero_alloc_warm(&requests);
}

#[test]
fn obs_kill_switch_is_zero_alloc_and_bitwise_invisible() {
    // two identical engines fed identical traffic, one with recording off:
    // every response byte must match. One connection speaks one protocol
    // (the transport is sniffed from the first byte), so each transport
    // gets its own on/off connection pair.
    let mut http_reqs: Vec<Vec<u8>> = (0..24).map(http_request).collect();
    http_reqs.push(b"GET /stats HTTP/1.1\r\n\r\n".to_vec());
    http_reqs.push(b"GET /query?id=3 HTTP/1.1\r\n\r\n".to_vec());
    http_reqs.push(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec());
    let bin_reqs: Vec<Vec<u8>> = (0..24).map(binary_request).collect();

    for reqs in [&http_reqs, &bin_reqs] {
        let engine_on = new_engine();
        let mut conn_on = Conn::new(ConnConfig::default());
        let responses_on: Vec<Vec<u8>> = reqs
            .iter()
            .map(|r| roundtrip(&mut conn_on, &engine_on, r))
            .collect();

        tsad_obs::with_enabled(false, || {
            let engine_off = new_engine();
            let mut conn_off = Conn::new(ConnConfig::default());
            for (i, req) in reqs.iter().enumerate() {
                let resp = roundtrip(&mut conn_off, &engine_off, req);
                assert_eq!(
                    resp, responses_on[i],
                    "response {i} differs with observability disabled"
                );
            }
            // and the warm path stays allocation-free with recording off
            let warm: Vec<Vec<u8>> = (100..132).map(http_request).collect();
            if reqs[0].starts_with(b"POST") {
                for req in &warm {
                    roundtrip(&mut conn_off, &engine_off, req);
                }
                let allocs = count_allocs(|| {
                    for req in &warm {
                        roundtrip_counted(&mut conn_off, &engine_off, req);
                    }
                });
                assert_eq!(allocs, 0, "obs-off warm path allocated");
            }
        });
    }
}

#[test]
fn obs_registry_carries_the_ingest_family_after_traffic() {
    let engine = new_engine();
    let mut conn = Conn::new(ConnConfig::default());
    for round in 0..8 {
        roundtrip(&mut conn, &engine, &http_request(round));
    }
    let summary = tsad_obs::render_summary(&tsad_obs::snapshot());
    for metric in [
        "ingest.requests",
        "ingest.points",
        "ingest.parse_ns",
        "ingest.route_ns",
        "ingest.push_ns",
        "ingest.respond_ns",
        "ingest.request_ns",
        "ingest.overhead_ns",
    ] {
        assert!(
            summary.contains(metric),
            "summary missing {metric}:\n{summary}"
        );
    }
    // the same stats surface through the typed stage view
    let stages = tsad_ingest::stage_stats();
    assert_eq!(stages.len(), 6);
    assert!(stages.iter().all(|s| s.count > 0));
}
