//! No-panic hardening proof for the streaming engine: every public
//! `StreamingDetector` must survive **arbitrary bit patterns** as input —
//! NaN with every payload, ±∞, subnormals, negative zero — without
//! panicking, and must keep its output-length contract
//! (`n − score_offset()` scores) regardless of values.
//!
//! Note the shim's `any::<f64>()` draws from the unit interval, so hostile
//! floats are generated from raw `u64` bits instead: every NaN payload and
//! both infinities are reachable.

use proptest::prelude::*;
use tsad_detectors::baselines::MovingAvgResidual;
use tsad_detectors::cusum::Cusum;
use tsad_detectors::oneliner::{equation, Equation};
use tsad_stream::{
    checkpoint, restore, BatchAdapter, NanPolicy, Sanitized, StreamingCusum, StreamingDetector,
    StreamingGlobalZScore, StreamingLeftDiscord, StreamingMovingAvgResidual, StreamingOneLiner,
};

/// Arbitrary bit patterns: ~every 2048th draw of `u64` is a NaN or ∞, so
/// mix raw bits with explicitly hostile values to keep density high. (The
/// shim has no `prop_oneof`, so a selector byte picks the flavour.)
fn hostile_point((sel, bits): (u8, u64)) -> f64 {
    match sel % 8 {
        0 | 1 => f64::from_bits(bits),
        2 => f64::NAN,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => -0.0,
        6 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => (bits % 20_000) as f64 / 100.0 - 100.0,
    }
}

fn hostile_stream(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((any::<u8>(), any::<u64>()), min_len..=max_len)
        .prop_map(|pairs| pairs.into_iter().map(hostile_point).collect())
}

fn panel(n: usize) -> Vec<Box<dyn StreamingDetector>> {
    let train = (n / 3).max(2);
    vec![
        Box::new(StreamingGlobalZScore::new(train).unwrap()),
        Box::new(StreamingCusum::new(Cusum::default(), train).unwrap()),
        Box::new(StreamingMovingAvgResidual::new(9).unwrap()),
        Box::new(StreamingOneLiner::compile(&equation(Equation::Eq5, 7, 3.0, 0.1)).unwrap()),
        // horizon must cover the exclusion zone even for tiny streams
        Box::new(StreamingLeftDiscord::new(8, Default::default(), n.max(8)).unwrap()),
        Box::new(BatchAdapter::new(MovingAvgResidual::new(5), 32, 8, 0).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_detector_survives_arbitrary_bits(xs in hostile_stream(1, 160)) {
        for mut det in panel(xs.len()) {
            let name = det.name();
            let mut out: Vec<f64> = xs.iter().filter_map(|&x| det.push(x)).collect();
            out.extend(det.finish());
            let expect = xs.len().saturating_sub(det.score_offset());
            prop_assert_eq!(out.len(), expect, "{} length contract", name);
        }
    }

    #[test]
    fn sanitized_wrappers_survive_and_keep_the_contract(xs in hostile_stream(1, 160)) {
        for policy in [NanPolicy::Propagate, NanPolicy::Skip, NanPolicy::ImputeLast] {
            for inner in panel(xs.len()) {
                let mut det = Sanitized::new(inner, policy);
                let name = det.name();
                let mut out: Vec<f64> = xs.iter().filter_map(|&x| det.push(x)).collect();
                out.extend(det.finish());
                // Sanitized counts score_offset in *kept* samples, so the
                // offset actually withheld is min(offset, kept)
                let kept = match policy {
                    NanPolicy::Skip => xs.iter().filter(|v| v.is_finite()).count(),
                    _ => xs.len(),
                };
                let withheld = det.score_offset().min(kept);
                prop_assert_eq!(out.len(), xs.len() - withheld, "{} length contract", name);
            }
        }
    }

    #[test]
    fn checkpoint_restore_survives_hostile_state(xs in hostile_stream(4, 120)) {
        // a checkpoint taken mid-hostile-stream restores bitwise into a twin
        let split = xs.len() / 2;
        for (mut warm, mut fresh) in panel(xs.len()).into_iter().zip(panel(xs.len())) {
            let mut want: Vec<f64> = xs[..split].iter().filter_map(|&x| warm.push(x)).collect();
            let blob = checkpoint(warm.as_ref());
            restore(fresh.as_mut(), &blob).expect("own checkpoint must restore");
            want.extend(xs[split..].iter().filter_map(|&x| fresh.push(x)));
            want.extend(fresh.finish());

            let mut reference = panel(xs.len())
                .into_iter()
                .find(|d| d.name() == fresh.name())
                .unwrap();
            let mut full: Vec<f64> = xs.iter().filter_map(|&x| reference.push(x)).collect();
            full.extend(reference.finish());
            prop_assert_eq!(want.len(), full.len());
            for (a, b) in want.iter().zip(&full) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{}", fresh.name());
            }
        }
    }

    #[test]
    fn restore_rejects_arbitrary_garbage_without_panicking(
        blob in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        for mut det in panel(64) {
            // garbage must error (or in a vanishing fraction of cases pass
            // the checksum), never panic; afterwards the detector still works
            let _ = restore(det.as_mut(), &blob);
            for i in 0..64 {
                det.push(i as f64);
            }
            det.finish();
        }
    }
}
