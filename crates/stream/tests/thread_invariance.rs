//! The PR-1 equivalence guarantees must hold at every thread count.
//!
//! The batch side of each comparison now runs on the `tsad-parallel` pool
//! (left-STOMP over diagonal bands); these tests re-run the equivalence
//! harness under explicit thread-count overrides to pin that the banding
//! never leaks into the scores.

use tsad_core::TimeSeries;
use tsad_detectors::baselines::GlobalZScore;
use tsad_detectors::matrix_profile::OnlineDiscordDetector;
use tsad_detectors::Detector;
use tsad_parallel::with_threads;
use tsad_stream::{
    check_equivalence, EquivalenceMode, StreamingGlobalZScore, StreamingLeftDiscord,
};

fn bumpy(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let base = (i as f64 * 0.21).sin() + 0.3 * (i as f64 * 0.047).cos();
            if (n / 2..n / 2 + 9).contains(&i) {
                base + 3.5
            } else {
                base
            }
        })
        .collect()
}

#[test]
fn left_discord_equivalence_holds_at_every_thread_count() {
    let xs = bumpy(700);
    let m = 32;
    for t in [1usize, 2, 8] {
        let report = with_threads(t, || {
            let ts = TimeSeries::from_values(xs.clone()).unwrap();
            let batch = OnlineDiscordDetector::new(m).score(&ts, 0).unwrap();
            let mut det = StreamingLeftDiscord::new(m, Default::default(), xs.len()).unwrap();
            check_equivalence(
                "bumpy",
                &batch,
                &mut det,
                &xs,
                EquivalenceMode::Tolerance(1e-6),
            )
            .unwrap()
        });
        assert!(report.passed, "at {t} threads: {report}");
    }
}

#[test]
fn batch_scores_themselves_are_thread_count_invariant() {
    let xs = bumpy(600);
    let ts = TimeSeries::from_values(xs).unwrap();
    let base = with_threads(1, || OnlineDiscordDetector::new(24).score(&ts, 0).unwrap());
    for t in [2usize, 8] {
        let got = with_threads(t, || OnlineDiscordDetector::new(24).score(&ts, 0).unwrap());
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            base.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "batch scores diverged at {t} threads"
        );
    }
}

#[test]
fn bitwise_ports_stay_bitwise_under_overrides() {
    let xs = bumpy(400);
    for t in [1usize, 2, 8] {
        let report = with_threads(t, || {
            let ts = TimeSeries::from_values(xs.clone()).unwrap();
            let batch = GlobalZScore.score(&ts, 80).unwrap();
            let mut det = StreamingGlobalZScore::new(80).unwrap();
            check_equivalence("bumpy", &batch, &mut det, &xs, EquivalenceMode::Bitwise).unwrap()
        });
        assert!(report.passed, "at {t} threads: {report}");
    }
}
