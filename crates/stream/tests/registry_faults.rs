//! Hostile-telemetry sweep over the whole detector catalog: every
//! registry entry's streaming form is fed every standard fault profile
//! (dropouts, NaN bursts, ±∞ spikes, stuck-at plateaus, clock skew
//! artifacts — whatever `tsad-faults` ships) and must neither panic nor
//! break the length contract. Catalog membership implies fault-suite
//! membership: the loop is over `StreamRegistry`, so new detectors are
//! conscripted automatically.

use tsad_detectors::registry::Params;
use tsad_faults::standard_profiles;
use tsad_stream::{checkpoint, restore, StreamHints, StreamRegistry, StreamingDetector};

fn base_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let noise = (((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64
                / (1u64 << 24) as f64)
                - 0.5;
            (i as f64 * 0.04).sin() * 2.0 + 0.4 * noise
        })
        .collect()
}

fn hints() -> StreamHints {
    StreamHints {
        train_len: 48,
        horizon: 80,
    }
}

#[test]
fn every_entry_survives_every_standard_fault_profile() {
    let reg = StreamRegistry::standard();
    let base = base_series(400);
    for (p_idx, profile) in standard_profiles().iter().enumerate() {
        let (xs, _report) = profile.inject(&base, 0xC0FF_EE00 + p_idx as u64);
        for entry in reg.catalog().entries() {
            let mut det = reg.build(entry.id, &Params::new(), &hints()).unwrap();
            let out = det.score_stream(&xs);
            assert_eq!(
                out.len(),
                xs.len() - det.score_offset().min(xs.len()),
                "{} × {}: length contract",
                entry.id,
                profile.name
            );
        }
    }
}

#[test]
fn faulted_checkpoints_resume_bitwise_for_every_entry() {
    // resume equivalence must hold even when the checkpointed state was
    // built from corrupted telemetry
    let reg = StreamRegistry::standard();
    let base = base_series(300);
    for profile in standard_profiles() {
        let (xs, _report) = profile.inject(&base, 0xBAD_5EED);
        let cut = xs.len() / 2;
        for entry in reg.catalog().entries() {
            let mut full = reg.build(entry.id, &Params::new(), &hints()).unwrap();
            let want = full.score_stream(&xs);

            let mut warm = reg.build(entry.id, &Params::new(), &hints()).unwrap();
            let mut got: Vec<f64> = xs[..cut].iter().filter_map(|&v| warm.push(v)).collect();
            let blob = checkpoint(&warm);
            let mut resumed = reg.build(entry.id, &Params::new(), &hints()).unwrap();
            restore(&mut resumed, &blob)
                .unwrap_or_else(|e| panic!("{} × {}: {e}", entry.id, profile.name));
            got.extend(xs[cut..].iter().filter_map(|&v| resumed.push(v)));
            got.extend(resumed.finish());

            assert_eq!(want.len(), got.len(), "{} × {}", entry.id, profile.name);
            for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} × {}: diverges at {i}",
                    entry.id,
                    profile.name
                );
            }
        }
    }
}
