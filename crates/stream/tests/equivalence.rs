//! Acceptance check: batch ↔ stream equivalence across three synthetic
//! benchmark families (Yahoo A1, NASA frozen-signal, NYC taxi).
//!
//! Bitwise for the z-score / CUSUM / moving-average-residual / one-liner
//! ports; tolerance (1e-6) for the streaming left discord, whose dot
//! products are summed in a different (equally valid) order than the batch
//! FFT path.

use tsad_core::TimeSeries;
use tsad_detectors::baselines::{GlobalZScore, MovingAvgResidual};
use tsad_detectors::cusum::Cusum;
use tsad_detectors::matrix_profile::OnlineDiscordDetector;
use tsad_detectors::oneliner::{equation, Equation};
use tsad_detectors::Detector;
use tsad_stream::{
    check_equivalence, EquivalenceMode, StreamingCusum, StreamingGlobalZScore,
    StreamingLeftDiscord, StreamingMovingAvgResidual, StreamingOneLiner,
};

/// One series per synthetic family, deterministic seeds.
fn families() -> Vec<(&'static str, Vec<f64>)> {
    let yahoo = tsad_synth::yahoo::generate(42, tsad_synth::yahoo::Family::A1, 3);
    let (nasa, _regions) = tsad_synth::nasa::frozen_signal(7);
    let taxi = tsad_synth::numenta::nyc_taxi(1);
    vec![
        ("yahoo-a1", yahoo.dataset.values().to_vec()),
        ("nasa-frozen", nasa.values().to_vec()),
        ("nyc-taxi", taxi.dataset.values().to_vec()),
    ]
}

#[test]
fn zscore_bitwise_on_all_families() {
    for (name, xs) in families() {
        let train = (xs.len() / 4).max(2);
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        let batch = GlobalZScore.score(&ts, train).unwrap();
        let mut det = StreamingGlobalZScore::new(train).unwrap();
        let r = check_equivalence(name, &batch, &mut det, &xs, EquivalenceMode::Bitwise).unwrap();
        assert!(r.passed, "{r}");
        assert_eq!(r.compared, xs.len());
    }
}

#[test]
fn cusum_bitwise_on_all_families() {
    for (name, xs) in families() {
        let train = (xs.len() / 4).max(2);
        let params = Cusum::default();
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        let batch = params.score(&ts, train).unwrap();
        let mut det = StreamingCusum::new(params, train).unwrap();
        let r = check_equivalence(name, &batch, &mut det, &xs, EquivalenceMode::Bitwise).unwrap();
        assert!(r.passed, "{r}");
    }
}

#[test]
fn moving_avg_residual_bitwise_on_all_families() {
    for (name, xs) in families() {
        for k in [5usize, 21] {
            let ts = TimeSeries::from_values(xs.clone()).unwrap();
            let batch = MovingAvgResidual::new(k).score(&ts, 0).unwrap();
            let mut det = StreamingMovingAvgResidual::new(k).unwrap();
            let r =
                check_equivalence(name, &batch, &mut det, &xs, EquivalenceMode::Bitwise).unwrap();
            assert!(r.passed, "k={k}: {r}");
        }
    }
}

#[test]
fn oneliner_panel_bitwise_on_all_families() {
    let panel = [
        equation(Equation::Eq3, 0, 0.0, 2.0),
        equation(Equation::Eq4, 0, 0.0, 1.5),
        equation(Equation::Eq5, 21, 3.0, 0.1),
        equation(Equation::Eq6, 11, 2.5, 0.05),
        equation(Equation::Eq1, 15, 2.0, 0.1),
    ];
    for (name, xs) in families() {
        for ol in &panel {
            let batch = ol.score_values(&xs).unwrap();
            let mut det = StreamingOneLiner::compile(ol).unwrap();
            let r =
                check_equivalence(name, &batch, &mut det, &xs, EquivalenceMode::Bitwise).unwrap();
            assert!(r.passed, "{r}");
            assert_eq!(r.offset, det.depth());
        }
    }
}

#[test]
fn left_discord_tolerance_on_all_families() {
    let m = 32;
    for (name, xs) in families() {
        // cap the series so the O(n · horizon) stream stays test-sized
        let xs: Vec<f64> = xs.into_iter().take(3000).collect();
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        let batch = OnlineDiscordDetector::new(m).score(&ts, 0).unwrap();
        let mut det = StreamingLeftDiscord::new(m, Default::default(), xs.len()).unwrap();
        let r = check_equivalence(
            name,
            &batch,
            &mut det,
            &xs,
            EquivalenceMode::Tolerance(1e-6),
        )
        .unwrap();
        assert!(r.passed, "{r}");
    }
}
