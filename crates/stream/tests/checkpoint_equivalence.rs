//! Acceptance check: suspend/resume is bitwise-equivalent to an
//! uninterrupted run for **every** `StreamingDetector` in the crate.
//!
//! For each detector, each synthetic family, and several split points, the
//! harness runs the full stream once, then re-runs it as
//! `push(..split) → checkpoint → construct a fresh instance → restore →
//! push(split..) → finish`, and compares the concatenated score streams
//! bit-for-bit. The whole matrix repeats under thread-pool sizes 1, 2 and
//! 8, pinning the guarantee that checkpoint bytes and resumed scores are
//! independent of parallelism.

use tsad_detectors::baselines::MovingAvgResidual;
use tsad_detectors::cusum::Cusum;
use tsad_detectors::oneliner::{equation, Equation};
use tsad_stream::{
    checkpoint, restore, BatchAdapter, NanPolicy, Sanitized, StreamingCusum, StreamingDetector,
    StreamingGlobalZScore, StreamingLeftDiscord, StreamingMovingAvgResidual, StreamingOneLiner,
};

fn families() -> Vec<(&'static str, Vec<f64>)> {
    let yahoo = tsad_synth::yahoo::generate(42, tsad_synth::yahoo::Family::A1, 2);
    let (nasa, _regions) = tsad_synth::nasa::frozen_signal(7);
    vec![
        ("yahoo-a1", yahoo.dataset.values().to_vec()),
        ("nasa-frozen", nasa.values().to_vec()),
    ]
}

/// Adds some non-finite samples so the `Sanitized` wrappers checkpoint a
/// non-trivial quarantine state.
fn dirty(mut xs: Vec<f64>) -> Vec<f64> {
    for i in (13..xs.len()).step_by(97) {
        xs[i] = f64::NAN;
    }
    for i in (41..xs.len()).step_by(211) {
        xs[i] = f64::INFINITY;
    }
    xs
}

/// The full detector panel. Each entry builds two identical instances: one
/// runs uninterrupted, one is checkpointed and restored into a fresh twin.
fn panel(n: usize) -> Vec<(Box<dyn StreamingDetector>, Box<dyn StreamingDetector>)> {
    let train = (n / 4).max(2);
    let pair = |f: &dyn Fn() -> Box<dyn StreamingDetector>| (f(), f());
    vec![
        pair(&|| Box::new(StreamingGlobalZScore::new(train).unwrap())),
        pair(&|| Box::new(StreamingCusum::new(Cusum::default(), train).unwrap())),
        pair(&|| Box::new(StreamingMovingAvgResidual::new(21).unwrap())),
        pair(&|| {
            Box::new(StreamingOneLiner::compile(&equation(Equation::Eq5, 21, 3.0, 0.1)).unwrap())
        }),
        pair(&|| {
            Box::new(StreamingOneLiner::compile(&equation(Equation::Eq3, 0, 0.0, 2.0)).unwrap())
        }),
        pair(&|| Box::new(StreamingLeftDiscord::new(24, Default::default(), n).unwrap())),
        pair(&|| Box::new(BatchAdapter::new(MovingAvgResidual::new(11), 64, 16, 0).unwrap())),
        pair(&|| {
            Box::new(Sanitized::new(
                StreamingGlobalZScore::new(train).unwrap(),
                NanPolicy::Skip,
            ))
        }),
        pair(&|| {
            Box::new(Sanitized::new(
                StreamingCusum::new(Cusum::default(), train).unwrap(),
                NanPolicy::ImputeLast,
            ))
        }),
    ]
}

/// Runs `det` over `xs` uninterrupted: concatenated push outputs + finish.
fn run_full(det: &mut dyn StreamingDetector, xs: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = xs.iter().filter_map(|&x| det.push(x)).collect();
    out.extend(det.finish());
    out
}

/// Runs `warm` to `split`, checkpoints it, restores the blob into `fresh`,
/// resumes on `fresh`, and returns the stitched score stream.
fn run_resumed(
    warm: &mut dyn StreamingDetector,
    fresh: &mut dyn StreamingDetector,
    xs: &[f64],
    split: usize,
) -> Vec<f64> {
    let mut out: Vec<f64> = xs[..split].iter().filter_map(|&x| warm.push(x)).collect();
    let blob = checkpoint(warm);
    restore(fresh, &blob).expect("restore must accept its own checkpoint");
    out.extend(xs[split..].iter().filter_map(|&x| fresh.push(x)));
    out.extend(fresh.finish());
    out
}

fn assert_bitwise(name: &str, family: &str, split: usize, want: &[f64], got: &[f64]) {
    assert_eq!(
        want.len(),
        got.len(),
        "{name} on {family} split {split}: length mismatch"
    );
    for (i, (a, b)) in want.iter().zip(got).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name} on {family} split {split}: score {i} diverged ({a} vs {b})"
        );
    }
}

fn full_matrix() {
    for (family, xs) in families() {
        let xs = dirty(xs);
        let n = xs.len();
        // early (mid warm-up), mid-stream, and late splits
        for split in [3, n / 7, n / 2, n - 2] {
            for (warm, fresh) in &mut panel(n) {
                let name = warm.name();
                let mut reference = panel(n)
                    .into_iter()
                    .find(|(d, _)| d.name() == name)
                    .unwrap()
                    .0;
                let want = run_full(reference.as_mut(), &xs);
                let got = run_resumed(warm.as_mut(), fresh.as_mut(), &xs, split);
                assert_bitwise(&name, family, split, &want, &got);
            }
        }
    }
}

#[test]
fn resume_is_bitwise_identical_at_one_thread() {
    tsad_parallel::with_threads(1, full_matrix);
}

#[test]
fn resume_is_bitwise_identical_at_two_threads() {
    tsad_parallel::with_threads(2, full_matrix);
}

#[test]
fn resume_is_bitwise_identical_at_eight_threads() {
    tsad_parallel::with_threads(8, full_matrix);
}

#[test]
fn checkpoint_bytes_are_thread_count_invariant() {
    let (_, xs) = families().remove(0);
    let xs = dirty(xs);
    let n = xs.len();
    let blobs: Vec<Vec<Vec<u8>>> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            tsad_parallel::with_threads(t, || {
                panel(n)
                    .into_iter()
                    .map(|(mut d, _)| {
                        for &x in &xs[..n / 2] {
                            d.push(x);
                        }
                        checkpoint(d.as_ref())
                    })
                    .collect()
            })
        })
        .collect();
    assert_eq!(blobs[0], blobs[1], "1 vs 2 threads");
    assert_eq!(blobs[0], blobs[2], "1 vs 8 threads");
}
