//! Property tests for the streaming primitives and detector ports: on
//! arbitrary finite signals, incremental state agrees with the batch
//! computation (within 1e-9 — in fact bitwise for the window ops) and
//! never emits a non-finite score after warm-up.

use proptest::prelude::*;
use tsad_core::ops::{self, incremental};
use tsad_core::{stats, TimeSeries};
use tsad_detectors::baselines::GlobalZScore;
use tsad_detectors::cusum::Cusum;
use tsad_detectors::oneliner::{Expr, OneLiner};
use tsad_detectors::Detector;
use tsad_stream::{StreamingCusum, StreamingDetector, StreamingGlobalZScore, StreamingOneLiner};

fn signal(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, min_len..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_movmean_matches_batch(x in signal(1, 300), k in 1usize..64) {
        let mut node = incremental::MovMean::new(k).unwrap();
        let mut got: Vec<f64> = x.iter().filter_map(|&v| node.push(v)).collect();
        got.extend(node.finish());
        let batch = ops::movmean(&x, k).unwrap();
        prop_assert_eq!(got.len(), batch.len());
        for (i, (a, b)) in got.iter().zip(&batch).enumerate() {
            prop_assert!(a.is_finite(), "NaN/inf at {} (k={})", i, k);
            prop_assert!((a - b).abs() <= 1e-9, "i={} k={}: {} vs {}", i, k, a, b);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "not bitwise at {} (k={})", i, k);
        }
    }

    #[test]
    fn incremental_movstd_matches_batch(x in signal(1, 300), k in 1usize..64) {
        let mut node = incremental::MovStd::new(k).unwrap();
        let mut got: Vec<f64> = x.iter().filter_map(|&v| node.push(v)).collect();
        got.extend(node.finish());
        let batch = ops::movstd(&x, k).unwrap();
        prop_assert_eq!(got.len(), batch.len());
        for (i, (a, b)) in got.iter().zip(&batch).enumerate() {
            prop_assert!(a.is_finite(), "NaN/inf at {} (k={})", i, k);
            prop_assert!((a - b).abs() <= 1e-9, "i={} k={}: {} vs {}", i, k, a, b);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "not bitwise at {} (k={})", i, k);
        }
    }

    #[test]
    fn welford_matches_batch_stats(x in signal(2, 400)) {
        let mut w = incremental::Welford::new();
        for &v in &x {
            w.push(v);
        }
        let mean = stats::mean(&x).unwrap();
        let sd = stats::std_dev(&x).unwrap();
        prop_assert!((w.mean() - mean).abs() <= 1e-9, "{} vs {}", w.mean(), mean);
        prop_assert!((w.std_dev() - sd).abs() <= 1e-9, "{} vs {}", w.std_dev(), sd);
        prop_assert!(w.mean().is_finite() && w.std_dev().is_finite());
    }

    #[test]
    fn zscore_port_is_bitwise_on_random_signals(
        x in signal(10, 400),
        frac in 0.1f64..0.9,
    ) {
        let train_len = ((x.len() as f64 * frac) as usize).max(2);
        let ts = TimeSeries::from_values(x.clone()).unwrap();
        let batch = GlobalZScore.score(&ts, train_len).unwrap();
        let mut det = StreamingGlobalZScore::new(train_len).unwrap();
        let got = det.score_stream(&x);
        prop_assert_eq!(got.len(), batch.len());
        for (i, (a, b)) in batch.iter().zip(&got).enumerate() {
            prop_assert!(b.is_finite(), "NaN/inf at {}", i);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "i={}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn cusum_port_is_bitwise_on_random_signals(
        x in signal(10, 400),
        frac in 0.1f64..0.9,
        allowance in 0.0f64..2.0,
        decay in 0.5f64..1.0,
    ) {
        let train_len = ((x.len() as f64 * frac) as usize).max(2);
        let params = Cusum { allowance, decay };
        let ts = TimeSeries::from_values(x.clone()).unwrap();
        let batch = params.score(&ts, train_len).unwrap();
        let mut det = StreamingCusum::new(params, train_len).unwrap();
        let got = det.score_stream(&x);
        prop_assert_eq!(got.len(), batch.len());
        for (i, (a, b)) in batch.iter().zip(&got).enumerate() {
            prop_assert!(b.is_finite(), "NaN/inf at {}", i);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "i={}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn compiled_oneliner_is_bitwise_on_random_signals(
        x in signal(12, 300),
        k in 1usize..40,
        c in 0.5f64..4.0,
    ) {
        // Eq. 5 shape: TS − movmean(TS, k) > c · movstd(TS, k)
        let ol = OneLiner::new(
            Expr::Ts.minus(Expr::Ts.movmean(k)),
            Expr::Ts.movstd(k).scale(c),
        );
        let batch = ol.score_values(&x).unwrap();
        let mut s = StreamingOneLiner::compile(&ol).unwrap();
        let got = s.score_stream(&x);
        let d = s.score_offset();
        prop_assert_eq!(got.len(), x.len() - d);
        for (i, (a, b)) in batch[d..].iter().zip(&got).enumerate() {
            prop_assert!(b.is_finite(), "NaN/inf at {}", i + d);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "i={}: {} vs {}", i + d, a, b);
        }
    }

    #[test]
    fn streaming_scores_are_nan_free_after_warmup(x in signal(20, 300)) {
        // a catch-all over the native ports with default-ish parameters
        let train = (x.len() / 3).max(2);
        let mut dets: Vec<Box<dyn StreamingDetector>> = vec![
            Box::new(StreamingGlobalZScore::new(train).unwrap()),
            Box::new(StreamingCusum::new(Cusum::default(), train).unwrap()),
            Box::new(tsad_stream::StreamingMovingAvgResidual::new(9).unwrap()),
        ];
        for det in dets.iter_mut() {
            let scores = det.score_stream(&x);
            prop_assert_eq!(scores.len(), x.len() - det.score_offset());
            for (i, s) in scores.iter().enumerate() {
                prop_assert!(s.is_finite(), "{}: NaN/inf at {}", det.name(), i);
            }
        }
    }
}
