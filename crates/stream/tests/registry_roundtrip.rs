//! Registry-wide checkpoint contract: every catalog entry's streaming
//! form must (a) carry its configuration in `name()` — the TSCK
//! fingerprint — so blobs refuse to cross entries, and (b) checkpoint
//! mid-stream and resume **bitwise** against the uninterrupted run. This
//! is the suite a new catalog entry joins automatically: it iterates the
//! registry, so adding a detector extends the proof with zero new test
//! code.

use tsad_detectors::registry::Params;
use tsad_stream::{
    checkpoint, restore, DetectorFactory, RegistryFactory, StreamHints, StreamRegistry,
    StreamingDetector,
};

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let noise = (((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64
                / (1u64 << 24) as f64)
                - 0.5;
            (i as f64 * 0.05).sin() + 0.3 * noise + if i % 157 == 0 { 4.0 } else { 0.0 }
        })
        .collect()
}

fn hints() -> StreamHints {
    StreamHints {
        train_len: 64,
        horizon: 96,
    }
}

#[test]
fn every_entry_roundtrips_a_mid_stream_checkpoint_bitwise() {
    let reg = StreamRegistry::standard();
    let xs = series(400);
    for entry in reg.catalog().entries() {
        let mut full = reg.build(entry.id, &Params::new(), &hints()).unwrap();
        let want = full.score_stream(&xs);
        for cut in [33usize, 200] {
            let mut warm = reg.build(entry.id, &Params::new(), &hints()).unwrap();
            let mut got: Vec<f64> = xs[..cut].iter().filter_map(|&v| warm.push(v)).collect();
            let blob = checkpoint(&warm);
            let mut resumed = reg.build(entry.id, &Params::new(), &hints()).unwrap();
            restore(&mut resumed, &blob)
                .unwrap_or_else(|e| panic!("{} cut={cut}: restore failed: {e}", entry.id));
            got.extend(xs[cut..].iter().filter_map(|&v| resumed.push(v)));
            got.extend(resumed.finish());
            assert_eq!(want.len(), got.len(), "{} cut={cut}: length", entry.id);
            for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} cut={cut}: diverges at {i} ({a} vs {b})",
                    entry.id
                );
            }
        }
    }
}

#[test]
fn checkpoints_refuse_to_cross_entries() {
    let reg = StreamRegistry::standard();
    let xs = series(120);
    // one warmed-up blob per entry, then try every (blob, other entry) pair:
    // distinct entries have distinct name fingerprints, so every cross
    // restore must be rejected
    let blobs: Vec<(&str, Vec<u8>)> = reg
        .catalog()
        .entries()
        .iter()
        .map(|entry| {
            let mut det = reg.build(entry.id, &Params::new(), &hints()).unwrap();
            for &v in &xs {
                det.push(v);
            }
            (entry.id, checkpoint(&det))
        })
        .collect();
    for (source_id, blob) in &blobs {
        for entry in reg.catalog().entries() {
            if entry.id == *source_id {
                continue;
            }
            let mut target = reg.build(entry.id, &Params::new(), &hints()).unwrap();
            assert!(
                restore(&mut target, blob).is_err(),
                "blob from `{source_id}` restored into `{}`",
                entry.id
            );
        }
    }
}

#[test]
fn name_fingerprints_derive_from_the_registry_display_names() {
    let reg = StreamRegistry::standard();
    for entry in reg.catalog().entries() {
        let det = reg.build(entry.id, &Params::new(), &hints()).unwrap();
        assert!(
            det.name().contains(entry.display),
            "{}: streaming name {:?} does not embed the catalog display \
             name {:?} — a rename would silently break TSCK restore",
            entry.id,
            det.name(),
            entry.display
        );
    }
}

#[test]
fn factory_fingerprint_matches_spawned_names_for_every_entry() {
    let reg = StreamRegistry::standard();
    for entry in reg.catalog().entries() {
        let factory = RegistryFactory::new(entry.id, Params::new(), hints()).unwrap();
        assert_eq!(
            factory.fingerprint(),
            factory.spawn(7).name(),
            "{}",
            entry.id
        );
    }
}
