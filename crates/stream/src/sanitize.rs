//! Non-finite input handling for streaming detectors.
//!
//! Real sensor streams carry NaN markers (dropouts), ±∞ (overflow, bad
//! scaling), and the detectors downstream must neither panic nor silently
//! corrupt state. [`Sanitized`] wraps any [`StreamingDetector`] with an
//! explicit [`NanPolicy`] decided by the caller:
//!
//! * [`Propagate`](NanPolicy::Propagate) — feed samples through untouched.
//!   Non-finite values flow into the detector arithmetic (every detector in
//!   this crate is panic-free on arbitrary `f64`, proven by the no-panic
//!   proptest suite), so scores in the contaminated span are typically NaN.
//!   The honest choice for offline analysis: contamination stays visible.
//! * [`Skip`](NanPolicy::Skip) — quarantine non-finite samples: the inner
//!   detector never sees them (its state evolves exactly as if it had been
//!   run on the finite subsequence), and the skipped position scores `0.0`
//!   ("no evidence"), keeping the output aligned one-score-per-point.
//! * [`ImputeLast`](NanPolicy::ImputeLast) — replace a non-finite sample
//!   with the most recent finite one (`0.0` before any finite sample) and
//!   feed that. The deployment-style choice: detector statistics stay
//!   finite and scores remain comparable across the gap.
//!
//! Every quarantined/imputed point increments the
//! `stream.sanitize.quarantined` obs counter, which the fault-injection
//! experiment (`repro -- faults`) reports per profile.
//!
//! ## Emission alignment under `Skip`
//!
//! The inner detector only counts *kept* samples, so its warm-up and
//! `score_offset` are measured in kept pushes. `Sanitized` re-aligns inner
//! scores to original stream positions: the first `score_offset` kept
//! positions emit nothing (exactly like the unwrapped detector), skipped
//! positions emit `0.0`, and every other position carries the next inner
//! score in order. The total output length is therefore
//! `n − score_offset()` — the [`StreamingDetector`] contract — with
//! `score_offset` counted in kept samples.
//!
//! ## Memory under `Skip`
//!
//! Quarantined positions queue behind any score the inner detector has not
//! emitted yet (emission is strictly in stream order, one score per push).
//! Both queues are run-length encoded, so arbitrarily long quarantine runs
//! — including an endless non-finite tail — cost `O(1)` state per run. The
//! one input shape that exceeds [`memory_bound`](StreamingDetector::memory_bound)
//! transiently is a quarantine burst landing *inside* the inner detector's
//! warm-up/lag window followed by finite data: the scores computed while
//! the placeholder backlog drains (one per push) are retained until
//! emitted, `O(burst)` at worst. This is inherent to in-order
//! one-score-per-push emission, not to the implementation.

use std::collections::VecDeque;
use std::fmt;

use tsad_core::ckpt::{corrupt, CkptReader, CkptWriter};
use tsad_core::error::Result;
use tsad_obs::Counter;

use crate::StreamingDetector;

/// Samples replaced or withheld because they were non-finite.
static SANITIZE_QUARANTINED: Counter = Counter::new("stream.sanitize.quarantined");

/// Reads the process-wide quarantine counter (for tests and experiments;
/// obs snapshots expose the same value).
pub fn quarantined_total() -> u64 {
    SANITIZE_QUARANTINED.get()
}

/// What to do when a pushed sample is NaN or ±∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NanPolicy {
    /// Feed the sample through untouched; scores may go NaN.
    Propagate,
    /// Withhold the sample from the inner detector; the position scores 0.
    Skip,
    /// Substitute the last finite sample (0.0 before the first one).
    ImputeLast,
}

impl NanPolicy {
    fn tag(self) -> u8 {
        match self {
            NanPolicy::Propagate => 0,
            NanPolicy::Skip => 1,
            NanPolicy::ImputeLast => 2,
        }
    }
}

impl fmt::Display for NanPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NanPolicy::Propagate => "propagate",
            NanPolicy::Skip => "skip",
            NanPolicy::ImputeLast => "impute-last",
        };
        f.write_str(s)
    }
}

/// Per-original-position bookkeeping for the `Skip` re-alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Non-finite, withheld: emits the placeholder score 0.0.
    Placeholder,
    /// Kept, but within the inner `score_offset`: emits nothing.
    Unscored,
    /// Kept and scoreable: emits the next inner score, in order.
    Await,
}

impl Slot {
    fn tag(self) -> u8 {
        match self {
            Slot::Placeholder => 0,
            Slot::Unscored => 1,
            Slot::Await => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Self> {
        match t {
            0 => Ok(Slot::Placeholder),
            1 => Ok(Slot::Unscored),
            2 => Ok(Slot::Await),
            other => Err(corrupt(format!("slot tag {other} out of range"))),
        }
    }
}

/// A resolved-but-unemitted output: either a run of placeholder zeros or
/// one real score. Runs keep hostile all-NaN tails at `O(1)` state.
#[derive(Debug, Clone, Copy)]
enum Out {
    Zeros(usize),
    Score(f64),
}

/// A [`StreamingDetector`] hardened against non-finite input by an explicit
/// [`NanPolicy`]. See the module docs for the policy semantics.
#[derive(Debug, Clone)]
pub struct Sanitized<D> {
    inner: D,
    policy: NanPolicy,
    /// Last finite sample seen (for [`NanPolicy::ImputeLast`]).
    last_finite: Option<f64>,
    /// Kept pushes forwarded to the inner detector.
    kept: usize,
    /// Pending original positions awaiting emission, oldest first,
    /// run-length encoded.
    slots: VecDeque<(Slot, usize)>,
    /// Inner scores not yet matched to an `Await` slot.
    inner_ready: VecDeque<f64>,
    /// Fully resolved output not yet returned from `push`.
    out_ready: VecDeque<Out>,
    /// Local count of quarantined points (also mirrored to the obs
    /// counter), so a checkpoint can restore it.
    quarantined: u64,
}

impl<D: StreamingDetector> Sanitized<D> {
    /// Wraps `inner` with the given policy.
    pub fn new(inner: D, policy: NanPolicy) -> Self {
        Self {
            inner,
            policy,
            last_finite: None,
            kept: 0,
            slots: VecDeque::new(),
            inner_ready: VecDeque::new(),
            out_ready: VecDeque::new(),
            quarantined: 0,
        }
    }

    /// The wrapping policy.
    pub fn policy(&self) -> NanPolicy {
        self.policy
    }

    /// Points this instance quarantined (replaced or withheld) so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Shared reference to the wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps into the inner detector.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn push_slot(&mut self, s: Slot) {
        match self.slots.back_mut() {
            Some((kind, count)) if *kind == s => *count += 1,
            _ => self.slots.push_back((s, 1)),
        }
    }

    fn push_zeros(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        match self.out_ready.back_mut() {
            Some(Out::Zeros(count)) => *count += n,
            _ => self.out_ready.push_back(Out::Zeros(n)),
        }
    }

    fn feed(&mut self, v: f64) {
        self.kept += 1;
        let slot = if self.kept <= self.inner.score_offset() {
            Slot::Unscored
        } else {
            Slot::Await
        };
        self.push_slot(slot);
        if let Some(s) = self.inner.push(v) {
            self.inner_ready.push_back(s);
        }
    }

    /// Resolves leading slot runs into `out_ready` until one blocks on a
    /// not-yet-emitted inner score.
    fn drain_slots(&mut self) {
        while let Some(&(slot, count)) = self.slots.front() {
            match slot {
                Slot::Placeholder => {
                    self.slots.pop_front();
                    self.push_zeros(count);
                }
                Slot::Unscored => {
                    self.slots.pop_front();
                }
                Slot::Await => {
                    let mut left = count;
                    while left > 0 {
                        match self.inner_ready.pop_front() {
                            Some(s) => {
                                self.out_ready.push_back(Out::Score(s));
                                left -= 1;
                            }
                            None => break,
                        }
                    }
                    self.slots.pop_front();
                    if left > 0 {
                        // put the unresolved remainder back and stop
                        self.slots.push_front((Slot::Await, left));
                        break;
                    }
                }
            }
        }
    }

    fn pop_out(&mut self) -> Option<f64> {
        match self.out_ready.front_mut() {
            None => None,
            Some(Out::Zeros(count)) => {
                *count -= 1;
                if *count == 0 {
                    self.out_ready.pop_front();
                }
                Some(0.0)
            }
            Some(Out::Score(s)) => {
                let s = *s;
                self.out_ready.pop_front();
                Some(s)
            }
        }
    }
}

impl<D: StreamingDetector> StreamingDetector for Sanitized<D> {
    fn name(&self) -> String {
        format!("{} [nan: {}]", self.inner.name(), self.policy)
    }

    fn push(&mut self, x: f64) -> Option<f64> {
        if x.is_finite() {
            self.last_finite = Some(x);
            self.feed(x);
        } else {
            self.quarantined += 1;
            SANITIZE_QUARANTINED.add(1);
            match self.policy {
                NanPolicy::Propagate => self.feed(x),
                NanPolicy::Skip => self.push_slot(Slot::Placeholder),
                NanPolicy::ImputeLast => {
                    let v = self.last_finite.unwrap_or(0.0);
                    self.feed(v);
                }
            }
        }
        self.drain_slots();
        self.pop_out()
    }

    fn finish(&mut self) -> Vec<f64> {
        self.inner_ready.extend(self.inner.finish());
        self.drain_slots();
        // invariant: the inner contract (kept − offset scores) resolves
        // every Await slot; only Placeholder/Unscored runs could remain,
        // and drain_slots never blocks on those
        debug_assert!(self.slots.is_empty(), "unresolved slots at finish");
        self.slots.clear();
        self.inner_ready.clear();
        let mut out = Vec::new();
        while let Some(v) = self.pop_out() {
            out.push(v);
        }
        out
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.last_finite = None;
        self.kept = 0;
        self.slots.clear();
        self.inner_ready.clear();
        self.out_ready.clear();
        self.quarantined = 0;
    }

    fn score_offset(&self) -> usize {
        self.inner.score_offset()
    }

    fn lag(&self) -> usize {
        // skipped positions resolve immediately, so the worst-case lag is
        // the inner detector's (measured in kept pushes)
        self.inner.lag()
    }

    fn memory_bound(&self) -> usize {
        // slot runs: Await units ≤ inner emission backlog; Placeholder and
        // Unscored runs are O(1) each and alternate with Await runs. The
        // module docs describe the one burst shape that can transiently
        // exceed this via retained resolved scores.
        self.inner.memory_bound() + 6 * (self.inner.lag() + self.inner.score_offset() + 2) + 2
    }

    fn save_state(&self, w: &mut CkptWriter) {
        w.u8(self.policy.tag()); // config echo, verified on load
        self.inner.save_state(w);
        w.opt_f64(self.last_finite);
        w.usize(self.kept);
        w.usize(self.slots.len());
        for &(s, count) in &self.slots {
            w.u8(s.tag());
            w.usize(count);
        }
        w.f64_seq(self.inner_ready.len(), self.inner_ready.iter().copied());
        w.usize(self.out_ready.len());
        for &o in &self.out_ready {
            match o {
                Out::Zeros(n) => {
                    w.u8(0);
                    w.usize(n);
                }
                Out::Score(s) => {
                    w.u8(1);
                    w.f64(s);
                }
            }
        }
        w.u64(self.quarantined);
    }

    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        let tag = r.u8()?;
        if tag != self.policy.tag() {
            return Err(corrupt(format!(
                "NanPolicy mismatch: blob tag {tag}, instance {}",
                self.policy
            )));
        }
        self.inner.load_state(r)?;
        self.last_finite = r.opt_f64()?;
        self.kept = r.usize()?;
        let n_slots = r.usize()?;
        if n_slots > r.remaining() {
            return Err(corrupt(format!(
                "slot queue declares {n_slots} runs but only {} bytes remain",
                r.remaining()
            )));
        }
        self.slots.clear();
        for _ in 0..n_slots {
            let slot = Slot::from_tag(r.u8()?)?;
            let count = r.usize()?;
            if count == 0 {
                return Err(corrupt("empty slot run".to_string()));
            }
            self.slots.push_back((slot, count));
        }
        self.inner_ready = r.f64_vec()?.into();
        let n_out = r.usize()?;
        if n_out > r.remaining() {
            return Err(corrupt(format!(
                "output queue declares {n_out} entries but only {} bytes remain",
                r.remaining()
            )));
        }
        self.out_ready.clear();
        for _ in 0..n_out {
            let o = match r.u8()? {
                0 => {
                    let n = r.usize()?;
                    if n == 0 {
                        return Err(corrupt("empty zero run".to_string()));
                    }
                    Out::Zeros(n)
                }
                1 => Out::Score(r.f64()?),
                other => return Err(corrupt(format!("output tag {other} out of range"))),
            };
            self.out_ready.push_back(o);
        }
        self.quarantined = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::StreamingGlobalZScore;
    use crate::oneliner::StreamingOneLiner;
    use tsad_detectors::oneliner::{Expr, OneLiner};

    fn dirty(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i % 17 == 5 {
                    f64::NAN
                } else if i % 29 == 11 {
                    f64::INFINITY
                } else {
                    (i as f64 * 0.13).sin() * 2.0
                }
            })
            .collect()
    }

    #[test]
    fn clean_input_is_transparent_for_every_policy() {
        let xs: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut plain = StreamingGlobalZScore::new(40).unwrap();
        let want = plain.score_stream(&xs);
        for policy in [NanPolicy::Propagate, NanPolicy::Skip, NanPolicy::ImputeLast] {
            let mut s = Sanitized::new(StreamingGlobalZScore::new(40).unwrap(), policy);
            let got = s.score_stream(&xs);
            assert_eq!(got.len(), want.len(), "{policy}");
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "{policy}");
            }
            assert_eq!(s.quarantined(), 0, "{policy}");
        }
    }

    #[test]
    fn skip_emits_zero_at_quarantined_positions() {
        let xs = dirty(400);
        let n_bad = xs.iter().filter(|v| !v.is_finite()).count();
        assert!(n_bad > 0);
        let mut s = Sanitized::new(StreamingGlobalZScore::new(30).unwrap(), NanPolicy::Skip);
        let got = s.score_stream(&xs);
        assert_eq!(got.len(), xs.len());
        assert_eq!(s.quarantined(), n_bad as u64);
        assert!(got.iter().all(|v| v.is_finite()), "Skip never emits NaN");
        // every non-finite position scores exactly 0; score t refers to
        // original position t here (offset 0)
        for (i, &x) in xs.iter().enumerate() {
            if !x.is_finite() {
                assert_eq!(got[i], 0.0, "position {i}");
            }
        }
    }

    #[test]
    fn skip_matches_running_the_inner_detector_on_the_finite_subsequence() {
        let xs = dirty(500);
        let finite: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
        let mut plain = StreamingGlobalZScore::new(25).unwrap();
        let want = plain.score_stream(&finite);
        let mut s = Sanitized::new(StreamingGlobalZScore::new(25).unwrap(), NanPolicy::Skip);
        let got = s.score_stream(&xs);
        let kept_scores: Vec<f64> = xs
            .iter()
            .zip(&got)
            .filter(|(x, _)| x.is_finite())
            .map(|(_, &s)| s)
            .collect();
        assert_eq!(kept_scores.len(), want.len());
        for (a, b) in want.iter().zip(&kept_scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn impute_last_keeps_scores_finite() {
        let xs = dirty(400);
        let mut s = Sanitized::new(
            StreamingGlobalZScore::new(30).unwrap(),
            NanPolicy::ImputeLast,
        );
        let got = s.score_stream(&xs);
        assert_eq!(got.len(), xs.len());
        assert!(got.iter().all(|v| v.is_finite()));
        assert!(s.quarantined() > 0);
    }

    #[test]
    fn propagate_never_panics_and_counts_quarantine() {
        let xs = dirty(400);
        let n_bad = xs.iter().filter(|v| !v.is_finite()).count() as u64;
        let mut s = Sanitized::new(
            StreamingGlobalZScore::new(30).unwrap(),
            NanPolicy::Propagate,
        );
        let got = s.score_stream(&xs);
        assert_eq!(got.len(), xs.len());
        assert_eq!(s.quarantined(), n_bad);
    }

    #[test]
    fn skip_respects_score_offset_of_the_inner_detector() {
        // a one-liner with diff depth 1: offset counted in *kept* samples
        let ol = OneLiner::new(Expr::Ts.diff().abs(), Expr::Const(0.5));
        let inner = StreamingOneLiner::compile(&ol).unwrap();
        assert_eq!(inner.score_offset(), 1);
        let mut s = Sanitized::new(inner, NanPolicy::Skip);
        let xs = vec![f64::NAN, 1.0, 2.0, f64::NAN, 3.0];
        let got = s.score_stream(&xs);
        // n − offset = 4 scores: NaN@0 → 0.0 placeholder, kept 1.0 is the
        // unscored offset position, then diffs for 2.0 and 3.0, NaN@3 → 0.0
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], 0.0);
        assert_eq!(got[2], 0.0);
    }

    #[test]
    fn memory_stays_bounded_on_hostile_streams() {
        // steady 1/3 quarantine rate: RLE keeps the queues at O(runs)
        let mut s = Sanitized::new(StreamingGlobalZScore::new(20).unwrap(), NanPolicy::Skip);
        let bound = s.memory_bound();
        for i in 0..30_000 {
            let v = if i % 3 == 0 {
                f64::NAN
            } else {
                (i as f64 * 0.01).sin()
            };
            s.push(v);
        }
        assert_eq!(s.memory_bound(), bound);
        let lag = s.inner.lag();
        assert!(
            s.slots.len() <= 2 * (lag + 2),
            "slot runs {} exceed 2*(lag+2)",
            s.slots.len()
        );

        // an endless non-finite tail after a partial warm-up is the
        // adversarial shape: the placeholder run must stay O(1)
        let mut s = Sanitized::new(StreamingGlobalZScore::new(20).unwrap(), NanPolicy::Skip);
        for i in 0..10 {
            s.push(i as f64);
        }
        for _ in 0..100_000 {
            s.push(f64::NAN);
        }
        assert!(
            s.slots.len() + s.out_ready.len() <= 8,
            "NaN tail inflated the queues: slots {}, out {}",
            s.slots.len(),
            s.out_ready.len()
        );
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        let xs = dirty(120);
        let mut s = Sanitized::new(
            StreamingGlobalZScore::new(15).unwrap(),
            NanPolicy::ImputeLast,
        );
        let first = s.score_stream(&xs);
        s.reset();
        assert_eq!(s.quarantined(), 0);
        let second = s.score_stream(&xs);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
