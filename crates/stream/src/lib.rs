//! # tsad-stream — bounded-memory streaming detection
//!
//! The batch detectors in `tsad-detectors` score a complete series at once.
//! Deployed anomaly detection is a *stream*: one sample arrives, the
//! detector updates `O(k)` state and (possibly) emits a score. This crate
//! provides that execution model for the repository's detector panel, with
//! two guarantees the batch/streaming split usually loses:
//!
//! 1. **Bounded memory** — every detector reports an upper bound on its
//!    retained state ([`StreamingDetector::memory_bound`]); nothing grows
//!    with stream length.
//! 2. **Batch equivalence** — the native streaming ports reproduce their
//!    batch counterparts *bitwise* (z-score, CUSUM, moving-average
//!    residual, the whole one-liner family; see [`equivalence`]) or within
//!    a documented floating-point tolerance (the left matrix profile, whose
//!    rolling dot products accumulate rounding differently).
//!
//! ## Emission model
//!
//! [`StreamingDetector::push`] consumes one sample and returns at most one
//! score. Centered-window detectors cannot score index `i` until the
//! samples after `i` arrive, so scores trail the input by
//! [`lag`](StreamingDetector::lag) pushes; [`finish`](StreamingDetector::finish)
//! drains the held-back tail once the stream ends. Detectors whose batch
//! counterpart pads a non-causal prefix (the one-liner's `diff` depth)
//! start emitting at [`score_offset`](StreamingDetector::score_offset)
//! instead of index 0.
//!
//! For every native port: `concat(push outputs, finish())` equals the batch
//! detector's score vector from `score_offset` on.
//!
//! ## Replay
//!
//! The [`mod@replay`] module feeds any dataset through a detector in
//! configurable chunk sizes, recording throughput (points/second),
//! per-push latency, and *detection delay* (first alarm − anomaly onset,
//! scored by `tsad-eval::streaming`).

pub mod adapter;
pub mod checkpoint;
pub mod detectors;
pub mod discord;
pub mod equivalence;
pub mod factory;
pub mod oneliner;
pub mod registry;
pub mod replay;
pub mod sanitize;
pub mod spot;

pub use adapter::BatchAdapter;
pub use checkpoint::{checkpoint, restore, CKPT_MAGIC, CKPT_VERSION};
pub use detectors::{StreamingCusum, StreamingGlobalZScore, StreamingMovingAvgResidual};
pub use discord::StreamingLeftDiscord;
pub use equivalence::{check_equivalence, EquivalenceMode, EquivalenceReport};
pub use factory::{DetectorFactory, FnFactory};
pub use oneliner::StreamingOneLiner;
pub use registry::{RegistryFactory, StreamHints, StreamRegistry};
pub use replay::{replay, replay_many, ReplayConfig, ReplayJob, ReplayOutcome};
pub use sanitize::{NanPolicy, Sanitized};
pub use spot::StreamingSpot;

use tsad_core::ckpt::{CkptReader, CkptWriter};
use tsad_core::error::Result;

/// A push-based anomaly detector with bounded memory.
///
/// Contract: for a stream of `n` pushes, the concatenation of all `Some`
/// values returned by [`push`](Self::push) followed by
/// [`finish`](Self::finish) contains exactly `n − score_offset()` scores;
/// score `t` of that sequence refers to series index `score_offset() + t`.
/// Higher scores mean more anomalous, matching
/// `tsad_detectors::Detector::score`.
pub trait StreamingDetector {
    /// Human-readable detector name.
    fn name(&self) -> String;

    /// Consumes one sample; returns the next in-order score once its
    /// window/warm-up allows, `None` while warming up.
    fn push(&mut self, x: f64) -> Option<f64>;

    /// Drains the scores still held back at end of stream (shrunken
    /// windows, buffered warm-up prefixes).
    fn finish(&mut self) -> Vec<f64>;

    /// Restores the freshly-constructed state.
    fn reset(&mut self);

    /// Series index of the first emitted score (0 for most detectors; the
    /// one-liner family starts at its `diff` depth, whose batch scores are
    /// non-causal padding).
    fn score_offset(&self) -> usize {
        0
    }

    /// Steady-state emission lag: `push` number `t` emits the score for
    /// series index `t − lag()` (0-based, once warmed up).
    fn lag(&self) -> usize;

    /// Upper bound on retained state, in `f64`-equivalents. Constant in
    /// stream length by construction.
    fn memory_bound(&self) -> usize;

    /// Convenience: streams a whole slice and returns the full score
    /// sequence (`push` outputs then `finish`), aligned to
    /// `score_offset()`.
    fn score_stream(&mut self, xs: &[f64]) -> Vec<f64> {
        let mut out: Vec<f64> = xs.iter().filter_map(|&v| self.push(v)).collect();
        out.extend(self.finish());
        out
    }

    /// Serializes the detector's *dynamic* state (configuration is carried
    /// by the instance and only fingerprinted, see [`checkpoint::checkpoint`]).
    ///
    /// Together with [`load_state`](Self::load_state) this must satisfy the
    /// resume contract: saving after `k` pushes and loading into an
    /// identically-configured fresh instance yields a detector whose
    /// remaining outputs are **bitwise identical** to the uninterrupted run.
    fn save_state(&self, w: &mut CkptWriter);

    /// Rehydrates state written by [`save_state`](Self::save_state) into an
    /// identically-configured instance. Returns
    /// [`CoreError::Checkpoint`](tsad_core::CoreError) on malformed blobs
    /// or configuration mismatch; the detector is left in an unspecified
    /// but safe state on error (callers should `reset` before reuse).
    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()>;
}

/// Boxed detectors stream like their contents — this is what lets the
/// replay panel (`Vec<Box<dyn StreamingDetector>>`) be wrapped by
/// [`Sanitized`] and checkpointed without unboxing.
impl<T: StreamingDetector + ?Sized> StreamingDetector for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn push(&mut self, x: f64) -> Option<f64> {
        (**self).push(x)
    }
    fn finish(&mut self) -> Vec<f64> {
        (**self).finish()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn score_offset(&self) -> usize {
        (**self).score_offset()
    }
    fn lag(&self) -> usize {
        (**self).lag()
    }
    fn memory_bound(&self) -> usize {
        (**self).memory_bound()
    }
    fn save_state(&self, w: &mut CkptWriter) {
        (**self).save_state(w)
    }
    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        (**self).load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_stream_concatenates_pushes_and_finish() {
        struct Delay1 {
            held: Option<f64>,
        }
        impl StreamingDetector for Delay1 {
            fn name(&self) -> String {
                "delay1".into()
            }
            fn push(&mut self, x: f64) -> Option<f64> {
                self.held.replace(x)
            }
            fn finish(&mut self) -> Vec<f64> {
                self.held.take().into_iter().collect()
            }
            fn reset(&mut self) {
                self.held = None;
            }
            fn lag(&self) -> usize {
                1
            }
            fn memory_bound(&self) -> usize {
                1
            }
            fn save_state(&self, w: &mut CkptWriter) {
                w.opt_f64(self.held);
            }
            fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
                self.held = r.opt_f64()?;
                Ok(())
            }
        }
        let mut d = Delay1 { held: None };
        assert_eq!(d.score_stream(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(d.score_offset(), 0);
    }
}
