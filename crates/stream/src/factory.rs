//! Spawn hooks that let any [`StreamingDetector`] be fleet-hosted.
//!
//! A multi-tenant engine (`tsad-fleet`) manages one detector instance per
//! series and must be able to construct, evict, and re-construct them on
//! demand — at registration, and again when restoring a sharded
//! checkpoint. [`DetectorFactory`] is that constructor: a `Sync` recipe
//! mapping a raw series key to a freshly configured detector.
//!
//! The [`fingerprint`](DetectorFactory::fingerprint) doubles as the
//! fleet-level configuration check, exactly like the per-detector `name()`
//! fingerprint in [`checkpoint`](crate::checkpoint()): a sharded checkpoint
//! records the producing factory's fingerprint and restore refuses to load
//! it through a differently-configured factory.
//!
//! Closures are factories too, via [`FnFactory`]:
//!
//! ```
//! use tsad_stream::{DetectorFactory, FnFactory, StreamingDetector, StreamingGlobalZScore};
//!
//! let factory = FnFactory(|_id: u64| StreamingGlobalZScore::new(32).unwrap());
//! let det = factory.spawn(7);
//! assert_eq!(factory.fingerprint(), det.name());
//! ```

use crate::StreamingDetector;

/// A recipe for constructing identically-configured streaming detectors,
/// one per series.
///
/// `spawn` may vary configuration *by series id* (per-tenant windows,
/// per-metric thresholds); the per-entry `name()` fingerprint recorded in
/// checkpoints keeps that honest, because a restored entry is always
/// spawned through the same factory with the same id before its state is
/// rehydrated.
pub trait DetectorFactory: Sync {
    /// The detector type this factory produces.
    type Detector: StreamingDetector + Send;

    /// Constructs the detector for series `id`, in its freshly-reset
    /// state.
    fn spawn(&self, id: u64) -> Self::Detector;

    /// Configuration fingerprint for checkpoint envelopes. The default —
    /// the name of the detector spawned for id 0 — is right whenever
    /// `spawn` ignores the id; id-dependent factories should override
    /// this with something that captures the whole mapping.
    fn fingerprint(&self) -> String {
        self.spawn(0).name()
    }
}

/// Adapter making any `Fn(u64) -> D` closure a [`DetectorFactory`].
#[derive(Debug, Clone, Copy)]
pub struct FnFactory<F>(pub F);

impl<D, F> DetectorFactory for FnFactory<F>
where
    D: StreamingDetector + Send,
    F: Fn(u64) -> D + Sync,
{
    type Detector = D;

    fn spawn(&self, id: u64) -> D {
        (self.0)(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::StreamingGlobalZScore;

    #[test]
    fn closure_factory_spawns_fresh_detectors() {
        let factory = FnFactory(|_id| StreamingGlobalZScore::new(4).unwrap());
        let mut a = factory.spawn(1);
        let mut b = factory.spawn(2);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(a.score_stream(&xs), b.score_stream(&xs));
        assert_eq!(factory.fingerprint(), factory.spawn(9).name());
    }

    #[test]
    fn id_dependent_factories_vary_configuration() {
        let factory =
            FnFactory(|id: u64| StreamingGlobalZScore::new(2 + (id % 3) as usize).unwrap());
        assert_ne!(factory.spawn(0).name(), factory.spawn(1).name());
        // the default fingerprint only sees id 0 — id-dependent factories
        // are expected to override it; this pins the documented default
        assert_eq!(factory.fingerprint(), factory.spawn(0).name());
    }
}
