//! Native streaming port of the SPOT/EVT tail detector.
//!
//! SPOT is *born* streaming (Siffer et al. run it one point at a time), so
//! the port is the thin part: buffer the `train_len` calibration prefix,
//! hand it to [`SpotState::calibrate`], score the prefix retroactively
//! with the frozen initial state, then score-and-update every subsequent
//! push — the exact sequence `tsad_detectors::spot::Spot::run` executes,
//! driving the *same* state machine. The equivalence is therefore bitwise
//! by construction and machine-checked in this module's tests.

use std::collections::VecDeque;

use tsad_core::ckpt::{corrupt, CkptReader, CkptWriter};
use tsad_core::error::Result;
use tsad_detectors::registry::display;
use tsad_detectors::spot::{Spot, SpotState, TailState};

use crate::StreamingDetector;

/// Streaming SPOT: calibrates on the first `train_len` pushes, then O(1)
/// per point.
#[derive(Debug, Clone)]
pub struct StreamingSpot {
    params: Spot,
    train_len: usize,
    prefix: Vec<f64>,
    state: Option<SpotState>,
    ready: VecDeque<f64>,
}

impl StreamingSpot {
    /// Creates the detector; the tail fit freezes its initial thresholds
    /// after `train_len` pushes (must satisfy the batch calibration
    /// minimum). Parameter validation matches [`SpotState::calibrate`] and
    /// happens eagerly by calibrating on a probe prefix.
    pub fn new(params: Spot, train_len: usize) -> Result<Self> {
        // validate level/risk/train_len now rather than at push #train_len:
        // a synthetic ramp prefix exercises the same checks calibrate runs
        if train_len < tsad_detectors::spot::MIN_CALIBRATION {
            return Err(tsad_core::CoreError::BadWindow {
                window: tsad_detectors::spot::MIN_CALIBRATION,
                len: train_len,
            });
        }
        let probe: Vec<f64> = (0..train_len.min(64)).map(|i| i as f64).collect();
        SpotState::calibrate(&probe, params.level, params.risk)?;
        Ok(Self {
            params,
            train_len,
            prefix: Vec::with_capacity(train_len),
            state: None,
            ready: VecDeque::new(),
        })
    }
}

fn save_tail(w: &mut CkptWriter, t: &TailState) {
    w.f64(t.t);
    w.u64(t.n_excess);
    w.f64(t.sum);
    w.f64(t.sum_sq);
    w.f64(t.zq);
}

fn load_tail(r: &mut CkptReader<'_>) -> Result<TailState> {
    Ok(TailState {
        t: r.f64()?,
        n_excess: r.u64()?,
        sum: r.f64()?,
        sum_sq: r.f64()?,
        zq: r.f64()?,
    })
}

impl StreamingDetector for StreamingSpot {
    fn name(&self) -> String {
        format!(
            "{} (stream, train={}, level={}, risk={})",
            display::SPOT,
            self.train_len,
            self.params.level,
            self.params.risk
        )
    }

    fn push(&mut self, x: f64) -> Option<f64> {
        match &mut self.state {
            None => {
                self.prefix.push(x);
                if self.prefix.len() == self.train_len {
                    // infallible: constructor pre-validated level/risk and
                    // the prefix length equals train_len >= MIN_CALIBRATION
                    let state =
                        SpotState::calibrate(&self.prefix, self.params.level, self.params.risk)
                            .expect("parameters validated at construction");
                    for &v in &self.prefix {
                        self.ready.push_back(state.score(v));
                    }
                    self.prefix = Vec::new();
                    self.state = Some(state);
                }
            }
            Some(state) => {
                self.ready.push_back(state.score(x));
                state.update(x);
            }
        }
        self.ready.pop_front()
    }

    fn finish(&mut self) -> Vec<f64> {
        // a stream shorter than train_len never calibrates: emit nothing,
        // exactly like the other prefix-calibrated ports
        self.ready.drain(..).collect()
    }

    fn reset(&mut self) {
        self.prefix.clear();
        self.state = None;
        self.ready.clear();
    }

    fn lag(&self) -> usize {
        self.train_len - 1
    }

    fn memory_bound(&self) -> usize {
        // prefix + backlog + the two 5-field tails + bookkeeping
        2 * self.train_len + 16
    }

    fn save_state(&self, w: &mut CkptWriter) {
        w.f64_seq(self.prefix.len(), self.prefix.iter().copied());
        match &self.state {
            Some(s) => {
                w.bool(true);
                w.u64(s.seen);
                save_tail(w, &s.up);
                save_tail(w, &s.down);
            }
            None => w.bool(false),
        }
        w.f64_seq(self.ready.len(), self.ready.iter().copied());
    }

    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        self.prefix = r.f64_vec()?;
        if self.prefix.len() > self.train_len {
            return Err(corrupt(format!(
                "SPOT prefix holds {} samples but train_len is {}",
                self.prefix.len(),
                self.train_len
            )));
        }
        self.state = if r.bool()? {
            Some(SpotState {
                risk: self.params.risk,
                seen: r.u64()?,
                up: load_tail(r)?,
                down: load_tail(r)?,
            })
        } else {
            None
        };
        self.ready = r.f64_vec()?.into();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::TimeSeries;
    use tsad_detectors::Detector;

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let noise = (((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64
                    / (1u64 << 24) as f64)
                    - 0.5;
                let spike = if i == 3 * n / 4 { 7.0 } else { 0.0 };
                (i as f64 * 0.07).sin() * 0.4 + noise + spike
            })
            .collect()
    }

    #[test]
    fn spot_stream_is_bitwise_batch() {
        let xs = series(600);
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        let params = Spot::default();
        let batch = params.score(&ts, 150).unwrap();
        let mut det = StreamingSpot::new(params, 150).unwrap();
        let got = det.score_stream(&xs);
        assert_eq!(batch.len(), got.len());
        for (i, (a, b)) in batch.iter().zip(&got).enumerate() {
            assert!(a.to_bits() == b.to_bits(), "i={i}: {a} vs {b}");
        }
        det.reset();
        assert_eq!(got, det.score_stream(&xs));
    }

    #[test]
    fn constructor_validates_eagerly() {
        assert!(StreamingSpot::new(Spot::default(), 4).is_err());
        assert!(StreamingSpot::new(
            Spot {
                level: 0.2,
                risk: 1e-3
            },
            100
        )
        .is_err());
        assert!(StreamingSpot::new(
            Spot {
                level: 0.98,
                risk: 0.9
            },
            100
        )
        .is_err());
    }

    #[test]
    fn checkpoint_mid_stream_resumes_bitwise() {
        let xs = series(500);
        let mut full = StreamingSpot::new(Spot::default(), 100).unwrap();
        let full_scores = full.score_stream(&xs);

        for cut in [50usize, 100, 250] {
            let mut a = StreamingSpot::new(Spot::default(), 100).unwrap();
            let mut head: Vec<f64> = xs[..cut].iter().filter_map(|&v| a.push(v)).collect();
            let blob = crate::checkpoint(&a);
            let mut b = StreamingSpot::new(Spot::default(), 100).unwrap();
            crate::restore(&mut b, &blob).unwrap();
            head.extend(xs[cut..].iter().filter_map(|&v| b.push(v)));
            head.extend(b.finish());
            assert_eq!(full_scores, head, "cut={cut}");
        }
    }

    #[test]
    fn short_stream_emits_nothing() {
        let mut det = StreamingSpot::new(Spot::default(), 100).unwrap();
        assert_eq!(det.score_stream(&[1.0, 2.0, 3.0]), Vec::<f64>::new());
    }

    #[test]
    fn name_carries_the_configuration_fingerprint() {
        let det = StreamingSpot::new(Spot::default(), 64).unwrap();
        let name = det.name();
        assert!(name.starts_with(display::SPOT), "{name}");
        assert!(name.contains("train=64"), "{name}");
        assert!(
            name.contains("level=0.98") && name.contains("risk=0.001"),
            "{name}"
        );
    }
}
