//! Native streaming ports of the batch threshold detectors.
//!
//! All three detectors here are **bitwise-equivalent** to their batch
//! counterparts: they buffer exactly the data the batch version derives its
//! statistics from (a finite calibration prefix, or a centered window),
//! compute those statistics with the *same* `tsad-core` calls in the same
//! order, and evaluate the same per-sample expression. See
//! [`equivalence`](crate::equivalence) for the machine-checked claim.
//!
//! The batch [`GlobalZScore`](tsad_detectors::baselines::GlobalZScore) and
//! [`Cusum`] fall back to whole-series statistics
//! when `train_len < 2`; a bounded-memory stream cannot do that (the
//! "whole series" never ends), so the streaming constructors require
//! `train_len ≥ 2` and score the calibration prefix retroactively once it
//! completes — exactly the values the batch detector assigns those indices.

use std::collections::VecDeque;

use tsad_core::ckpt::{corrupt, CkptReader, CkptState, CkptWriter};
use tsad_core::error::{CoreError, Result};
use tsad_core::ops::incremental::{MovMean, MovStd, RingBuffer};
use tsad_core::stats;
use tsad_detectors::cusum::Cusum;

use crate::StreamingDetector;

fn require_train_len(train_len: usize) -> Result<()> {
    if train_len < 2 {
        return Err(CoreError::BadParameter {
            name: "train_len",
            value: train_len as f64,
            expected: "train_len >= 2 (a stream has no whole-series fallback)",
        });
    }
    Ok(())
}

/// Streaming [`GlobalZScore`](tsad_detectors::baselines::GlobalZScore): buffers the
/// `train_len` calibration samples, then scores every sample (prefix
/// included) as `|x − μ| / σ` with μ, σ frozen from the prefix.
///
/// Bitwise-equivalent to the batch detector for the same `train_len ≥ 2`.
#[derive(Debug, Clone)]
pub struct StreamingGlobalZScore {
    train_len: usize,
    prefix: Vec<f64>,
    calibrated: Option<(f64, f64)>,
    ready: VecDeque<f64>,
}

impl StreamingGlobalZScore {
    /// Creates the detector; statistics freeze after `train_len ≥ 2` pushes.
    pub fn new(train_len: usize) -> Result<Self> {
        require_train_len(train_len)?;
        Ok(Self {
            train_len,
            prefix: Vec::with_capacity(train_len),
            calibrated: None,
            ready: VecDeque::new(),
        })
    }

    fn score_one(&self, v: f64) -> f64 {
        // invariant: only called after `calibrated` is set in `push`
        let (mu, sd) = self.calibrated.expect("calibrated");
        (v - mu).abs() / sd
    }
}

impl StreamingDetector for StreamingGlobalZScore {
    fn name(&self) -> String {
        // the registry display const is the fingerprint prefix: renames
        // propagate to TSCK fingerprints from one place
        format!(
            "{} (stream, train={})",
            tsad_detectors::registry::display::GLOBAL_ZSCORE,
            self.train_len
        )
    }

    fn push(&mut self, x: f64) -> Option<f64> {
        if self.calibrated.is_none() {
            self.prefix.push(x);
            if self.prefix.len() < self.train_len {
                return None;
            }
            // Same calls, same slice, same order as the batch detector.
            let mu = stats::mean(&self.prefix).expect("train_len >= 2");
            let sd = stats::std_dev(&self.prefix)
                .expect("train_len >= 2")
                .max(1e-12);
            self.calibrated = Some((mu, sd));
            for i in 0..self.prefix.len() {
                self.ready.push_back(self.score_one(self.prefix[i]));
            }
            self.prefix = Vec::new();
        } else {
            let s = self.score_one(x);
            self.ready.push_back(s);
        }
        self.ready.pop_front()
    }

    fn finish(&mut self) -> Vec<f64> {
        // a stream shorter than train_len never calibrates; score what we
        // have the way the batch detector would be *unable* to — emit
        // nothing rather than invent statistics
        self.ready.drain(..).collect()
    }

    fn reset(&mut self) {
        self.prefix.clear();
        self.calibrated = None;
        self.ready.clear();
    }

    fn lag(&self) -> usize {
        self.train_len - 1
    }

    fn memory_bound(&self) -> usize {
        2 * self.train_len + 2
    }

    fn save_state(&self, w: &mut CkptWriter) {
        w.f64_seq(self.prefix.len(), self.prefix.iter().copied());
        match self.calibrated {
            Some((mu, sd)) => {
                w.bool(true);
                w.f64(mu);
                w.f64(sd);
            }
            None => w.bool(false),
        }
        w.f64_seq(self.ready.len(), self.ready.iter().copied());
    }

    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        self.prefix = r.f64_vec()?;
        if self.prefix.len() > self.train_len {
            return Err(corrupt(format!(
                "z-score prefix holds {} samples but train_len is {}",
                self.prefix.len(),
                self.train_len
            )));
        }
        self.calibrated = if r.bool()? {
            Some((r.f64()?, r.f64()?))
        } else {
            None
        };
        self.ready = r.f64_vec()?.into();
        Ok(())
    }
}

/// Streaming two-sided CUSUM: calibrates μ, σ on the first `train_len`
/// samples, replays the recursion over the buffered prefix, then updates
/// the two one-sided statistics in O(1) per push.
///
/// Bitwise-equivalent to the batch [`Cusum`] for the same `train_len ≥ 2`:
/// the recursion `hi ← max(0, d·hi + z − k)`, `lo ← max(0, d·lo − z − k)`
/// is replayed in identical order with identical constants.
#[derive(Debug, Clone)]
pub struct StreamingCusum {
    params: Cusum,
    train_len: usize,
    prefix: Vec<f64>,
    // (mu, sd, hi, lo) once calibrated
    state: Option<(f64, f64, f64, f64)>,
    ready: VecDeque<f64>,
}

impl StreamingCusum {
    /// Creates the detector from batch parameters; validation matches
    /// [`Cusum::statistics`].
    pub fn new(params: Cusum, train_len: usize) -> Result<Self> {
        require_train_len(train_len)?;
        // same checks as Cusum::statistics, performed eagerly
        if !(0.0..10.0).contains(&params.allowance) {
            return Err(CoreError::BadParameter {
                name: "allowance",
                value: params.allowance,
                expected: "0 <= allowance < 10",
            });
        }
        if !(0.0 < params.decay && params.decay <= 1.0) {
            return Err(CoreError::BadParameter {
                name: "decay",
                value: params.decay,
                expected: "0 < decay <= 1",
            });
        }
        Ok(Self {
            params,
            train_len,
            prefix: Vec::with_capacity(train_len),
            state: None,
            ready: VecDeque::new(),
        })
    }

    fn step(&mut self, v: f64) -> f64 {
        // invariant: only called after `state` is set in `push`
        let (mu, sd, hi, lo) = self.state.expect("calibrated");
        let z = (v - mu) / sd;
        let hi = (self.params.decay * hi + z - self.params.allowance).max(0.0);
        let lo = (self.params.decay * lo - z - self.params.allowance).max(0.0);
        self.state = Some((mu, sd, hi, lo));
        hi.max(lo)
    }
}

impl StreamingDetector for StreamingCusum {
    fn name(&self) -> String {
        format!(
            "{} (stream, train={})",
            tsad_detectors::registry::display::CUSUM,
            self.train_len
        )
    }

    fn push(&mut self, x: f64) -> Option<f64> {
        if self.state.is_none() {
            self.prefix.push(x);
            if self.prefix.len() < self.train_len {
                return None;
            }
            let mu = stats::mean(&self.prefix).expect("train_len >= 2");
            let sd = stats::std_dev(&self.prefix)
                .expect("train_len >= 2")
                .max(1e-9);
            self.state = Some((mu, sd, 0.0, 0.0));
            let prefix = std::mem::take(&mut self.prefix);
            for &v in &prefix {
                let s = self.step(v);
                self.ready.push_back(s);
            }
        } else {
            let s = self.step(x);
            self.ready.push_back(s);
        }
        self.ready.pop_front()
    }

    fn finish(&mut self) -> Vec<f64> {
        self.ready.drain(..).collect()
    }

    fn reset(&mut self) {
        self.prefix.clear();
        self.state = None;
        self.ready.clear();
    }

    fn lag(&self) -> usize {
        self.train_len - 1
    }

    fn memory_bound(&self) -> usize {
        2 * self.train_len + 4
    }

    fn save_state(&self, w: &mut CkptWriter) {
        w.f64_seq(self.prefix.len(), self.prefix.iter().copied());
        match self.state {
            Some((mu, sd, hi, lo)) => {
                w.bool(true);
                w.f64(mu);
                w.f64(sd);
                w.f64(hi);
                w.f64(lo);
            }
            None => w.bool(false),
        }
        w.f64_seq(self.ready.len(), self.ready.iter().copied());
    }

    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        self.prefix = r.f64_vec()?;
        if self.prefix.len() > self.train_len {
            return Err(corrupt(format!(
                "CUSUM prefix holds {} samples but train_len is {}",
                self.prefix.len(),
                self.train_len
            )));
        }
        self.state = if r.bool()? {
            Some((r.f64()?, r.f64()?, r.f64()?, r.f64()?))
        } else {
            None
        };
        self.ready = r.f64_vec()?.into();
        Ok(())
    }
}

/// Streaming [`MovingAvgResidual`](tsad_detectors::baselines::MovingAvgResidual):
/// `|x − movmean(x, k)| / (movstd(x, k) + ε)` with the centered,
/// endpoint-shrinking MATLAB windows.
///
/// Bitwise-equivalent to the batch detector: the incremental
/// `MovMean`/`MovStd` nodes materialize the same windows and reduce them
/// through the same `window_mean`/`window_std` helpers the batch ops use.
#[derive(Debug, Clone)]
pub struct StreamingMovingAvgResidual {
    window: usize,
    mm: MovMean,
    ms: MovStd,
    raw: RingBuffer,
    emitted: usize,
}

impl StreamingMovingAvgResidual {
    /// Creates the detector with window `k ≥ 1`.
    pub fn new(window: usize) -> Result<Self> {
        Ok(Self {
            window,
            mm: MovMean::new(window)?,
            ms: MovStd::new(window)?,
            raw: RingBuffer::new(window)?,
            emitted: 0,
        })
    }

    fn residual(&mut self, m: f64, s: f64) -> f64 {
        // invariant: the raw sample at the emission index is still retained
        // — the node delay (k−1)/2 is strictly less than the ring capacity k
        let v = self.raw.get(self.emitted).expect("raw sample retained");
        self.emitted += 1;
        (v - m).abs() / (s + 1e-9)
    }
}

impl StreamingDetector for StreamingMovingAvgResidual {
    fn name(&self) -> String {
        format!(
            "{} (stream, k={})",
            tsad_detectors::registry::display::MOVING_AVG_RESIDUAL,
            self.window
        )
    }

    fn push(&mut self, x: f64) -> Option<f64> {
        self.raw.push(x);
        // same k ⇒ the two nodes warm up and emit in lockstep
        match (self.mm.push(x), self.ms.push(x)) {
            (Some(m), Some(s)) => Some(self.residual(m, s)),
            _ => None,
        }
    }

    fn finish(&mut self) -> Vec<f64> {
        let means = self.mm.finish();
        let stds = self.ms.finish();
        means
            .into_iter()
            .zip(stds)
            .map(|(m, s)| self.residual(m, s))
            .collect()
    }

    fn reset(&mut self) {
        self.mm.reset();
        self.ms.reset();
        self.raw.clear();
        self.emitted = 0;
    }

    fn lag(&self) -> usize {
        self.mm.delay()
    }

    fn memory_bound(&self) -> usize {
        self.mm.memory_bound() + self.ms.memory_bound() + self.raw.capacity()
    }

    fn save_state(&self, w: &mut CkptWriter) {
        self.mm.save(w);
        self.ms.save(w);
        self.raw.save(w);
        w.usize(self.emitted);
    }

    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        self.mm.load(r)?;
        self.ms.load(r)?;
        self.raw.load(r)?;
        self.emitted = r.usize()?;
        // the next emission reads raw index `emitted`; it must be retained
        if self.emitted > self.raw.next_index() || self.emitted < self.raw.first_index() {
            return Err(corrupt(format!(
                "moving-average residual emission cursor {} outside retained \
                 raw range [{}, {}]",
                self.emitted,
                self.raw.first_index(),
                self.raw.next_index()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::TimeSeries;
    use tsad_detectors::baselines::{GlobalZScore, MovingAvgResidual};
    use tsad_detectors::Detector;

    /// Deterministic wiggly series with a level shift and a spike.
    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let noise = (((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64
                    / (1u64 << 24) as f64)
                    - 0.5;
                let shift = if i >= 2 * n / 3 { 1.2 } else { 0.0 };
                let spike = if i == n / 2 { 6.0 } else { 0.0 };
                (i as f64 * 0.07).sin() + noise + shift + spike
            })
            .collect()
    }

    fn assert_bitwise(batch: &[f64], stream: &[f64], what: &str) {
        assert_eq!(batch.len(), stream.len(), "{what}: length");
        for (i, (a, b)) in batch.iter().zip(stream).enumerate() {
            assert!(a.to_bits() == b.to_bits(), "{what} i={i}: {a} vs {b}");
        }
    }

    #[test]
    fn zscore_stream_is_bitwise_batch() {
        let xs = series(400);
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        let batch = GlobalZScore.score(&ts, 60).unwrap();
        let mut det = StreamingGlobalZScore::new(60).unwrap();
        let got = det.score_stream(&xs);
        assert_bitwise(&batch, &got, "zscore");
        // reset reproduces the identical stream
        det.reset();
        assert_bitwise(&batch, &det.score_stream(&xs), "zscore after reset");
    }

    #[test]
    fn zscore_emission_schedule() {
        let mut det = StreamingGlobalZScore::new(5).unwrap();
        assert_eq!(det.lag(), 4);
        for i in 0..4 {
            assert_eq!(det.push(i as f64), None, "warm-up push {i}");
        }
        assert!(det.push(4.0).is_some(), "calibration push emits score 0");
        assert!(det.push(5.0).is_some());
        assert_eq!(det.finish().len(), 4);
        assert!(StreamingGlobalZScore::new(1).is_err());
    }

    #[test]
    fn short_stream_never_calibrates_and_emits_nothing() {
        let mut det = StreamingGlobalZScore::new(100).unwrap();
        assert_eq!(det.score_stream(&[1.0, 2.0, 3.0]), Vec::<f64>::new());
    }

    #[test]
    fn cusum_stream_is_bitwise_batch() {
        let xs = series(600);
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        for params in [
            Cusum::default(),
            Cusum {
                allowance: 0.25,
                decay: 1.0,
            },
        ] {
            let batch = params.score(&ts, 150).unwrap();
            let mut det = StreamingCusum::new(params, 150).unwrap();
            assert_bitwise(&batch, &det.score_stream(&xs), "cusum");
        }
    }

    #[test]
    fn cusum_validates_eagerly() {
        assert!(StreamingCusum::new(
            Cusum {
                allowance: -1.0,
                decay: 1.0
            },
            10
        )
        .is_err());
        assert!(StreamingCusum::new(
            Cusum {
                allowance: 0.5,
                decay: 0.0
            },
            10
        )
        .is_err());
        assert!(StreamingCusum::new(Cusum::default(), 1).is_err());
    }

    #[test]
    fn moving_avg_residual_stream_is_bitwise_batch() {
        let xs = series(257);
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        for k in [1usize, 2, 5, 21, 64] {
            let batch = MovingAvgResidual::new(k).score(&ts, 0).unwrap();
            let mut det = StreamingMovingAvgResidual::new(k).unwrap();
            assert_bitwise(&batch, &det.score_stream(&xs), &format!("mavg k={k}"));
            det.reset();
            assert_bitwise(
                &batch,
                &det.score_stream(&xs),
                &format!("mavg k={k} after reset"),
            );
        }
        assert!(StreamingMovingAvgResidual::new(0).is_err());
    }

    #[test]
    fn memory_bounds_are_constant_in_stream_length() {
        let mut z = StreamingGlobalZScore::new(50).unwrap();
        let mut c = StreamingCusum::new(Cusum::default(), 50).unwrap();
        let mut m = StreamingMovingAvgResidual::new(31).unwrap();
        let (bz, bc, bm) = (z.memory_bound(), c.memory_bound(), m.memory_bound());
        for i in 0..10_000 {
            let v = (i as f64 * 0.1).sin();
            z.push(v);
            c.push(v);
            m.push(v);
        }
        assert_eq!(z.memory_bound(), bz);
        assert_eq!(c.memory_bound(), bc);
        assert_eq!(m.memory_bound(), bm);
        // the z-score backlog really is bounded by train_len
        assert!(z.ready.len() <= 50);
    }
}
