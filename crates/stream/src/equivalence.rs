//! Machine-checked batch ↔ stream equivalence.
//!
//! The crate's central claim — a streaming port computes *the same scores*
//! as its batch counterpart — is cheap to state and easy to silently
//! break. This module turns it into a harness: feed the same series to
//! both, align by [`score_offset`](crate::StreamingDetector::score_offset),
//! and compare every position.
//!
//! Two modes:
//!
//! * [`EquivalenceMode::Bitwise`] — `f64::to_bits` equality. Holds for the
//!   z-score, CUSUM, moving-average-residual, and compiled one-liner ports,
//!   which reuse the batch arithmetic verbatim.
//! * [`EquivalenceMode::Tolerance`] — `|a − b| ≤ tol` per position. Used
//!   for the left-discord port, whose diagonal dot-product seeds and window
//!   moments are computed by different (equally valid) summations than the
//!   batch FFT/prefix-sum path.

use std::fmt;

use tsad_core::error::{CoreError, Result};

use crate::StreamingDetector;

/// How strictly batch and stream scores must agree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EquivalenceMode {
    /// Exact `to_bits` equality.
    Bitwise,
    /// `|batch − stream| ≤ tol` at every compared position.
    Tolerance(f64),
}

/// Outcome of one batch ↔ stream comparison.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// Streaming detector name.
    pub detector: String,
    /// Dataset label (for table rendering).
    pub dataset: String,
    /// Number of positions compared (`series len − score_offset`).
    pub compared: usize,
    /// Score offset skipped at the front (batch-side non-causal padding).
    pub offset: usize,
    /// Largest `|batch − stream|` over compared positions.
    pub max_abs_diff: f64,
    /// First disagreeing position (series index), if any.
    pub first_mismatch: Option<usize>,
    /// Mode the comparison ran under.
    pub mode: EquivalenceMode,
    /// Verdict.
    pub passed: bool,
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.mode {
            EquivalenceMode::Bitwise => "bitwise".to_string(),
            EquivalenceMode::Tolerance(t) => format!("tol {t:.0e}"),
        };
        let verdict = if self.passed { "PASS" } else { "FAIL" };
        write!(
            f,
            "{verdict} [{mode}] {} on {}: {} positions, max |Δ| = {:.3e}",
            self.detector, self.dataset, self.compared, self.max_abs_diff
        )?;
        if let Some(i) = self.first_mismatch {
            write!(f, ", first mismatch at {i}")?;
        }
        Ok(())
    }
}

/// Streams `xs` through `det` (after a `reset`) and compares against the
/// batch scores position by position.
///
/// `batch_scores` must cover the whole series; the first
/// `det.score_offset()` positions are skipped (the batch pads them with
/// non-causal values no stream can reproduce).
pub fn check_equivalence(
    dataset: &str,
    batch_scores: &[f64],
    det: &mut dyn StreamingDetector,
    xs: &[f64],
    mode: EquivalenceMode,
) -> Result<EquivalenceReport> {
    if batch_scores.len() != xs.len() {
        return Err(CoreError::LengthMismatch {
            left: batch_scores.len(),
            right: xs.len(),
        });
    }
    det.reset();
    let stream = det.score_stream(xs);
    let offset = det.score_offset();
    let expected = xs.len() - offset.min(xs.len());
    if stream.len() != expected {
        return Err(CoreError::LengthMismatch {
            left: stream.len(),
            right: expected,
        });
    }

    let mut max_abs_diff = 0.0f64;
    let mut first_mismatch = None;
    for (t, (&a, &b)) in batch_scores[offset..].iter().zip(&stream).enumerate() {
        let agree = match mode {
            EquivalenceMode::Bitwise => a.to_bits() == b.to_bits(),
            EquivalenceMode::Tolerance(tol) => (a - b).abs() <= tol,
        };
        let diff = (a - b).abs();
        if diff.is_nan() || diff > max_abs_diff {
            max_abs_diff = if diff.is_nan() { f64::NAN } else { diff };
        }
        if !agree && first_mismatch.is_none() {
            first_mismatch = Some(offset + t);
        }
    }
    Ok(EquivalenceReport {
        detector: det.name(),
        dataset: dataset.to_string(),
        compared: stream.len(),
        offset,
        max_abs_diff,
        first_mismatch,
        mode,
        passed: first_mismatch.is_none(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamingGlobalZScore;
    use tsad_core::TimeSeries;
    use tsad_detectors::baselines::GlobalZScore;
    use tsad_detectors::Detector;

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.3).sin() * (1.0 + i as f64 * 1e-3))
            .collect()
    }

    #[test]
    fn bitwise_pass_and_report_fields() {
        let xs = series(200);
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        let batch = GlobalZScore.score(&ts, 40).unwrap();
        let mut det = StreamingGlobalZScore::new(40).unwrap();
        let r = check_equivalence("synthetic", &batch, &mut det, &xs, EquivalenceMode::Bitwise)
            .unwrap();
        assert!(r.passed, "{r}");
        assert_eq!(r.compared, 200);
        assert_eq!(r.offset, 0);
        assert_eq!(r.max_abs_diff, 0.0);
        assert!(r.to_string().contains("PASS"));
    }

    #[test]
    fn detects_a_mismatch() {
        let xs = series(100);
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        let mut batch = GlobalZScore.score(&ts, 40).unwrap();
        batch[57] += 1e-9;
        let mut det = StreamingGlobalZScore::new(40).unwrap();
        let bitwise =
            check_equivalence("synthetic", &batch, &mut det, &xs, EquivalenceMode::Bitwise)
                .unwrap();
        assert!(!bitwise.passed);
        assert_eq!(bitwise.first_mismatch, Some(57));
        assert!(bitwise.to_string().contains("FAIL"));
        // …but a tolerance pass absorbs it
        let tol = check_equivalence(
            "synthetic",
            &batch,
            &mut det,
            &xs,
            EquivalenceMode::Tolerance(1e-6),
        )
        .unwrap();
        assert!(tol.passed);
        assert!(tol.max_abs_diff > 0.0);
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let xs = series(50);
        let mut det = StreamingGlobalZScore::new(10).unwrap();
        assert!(
            check_equivalence("bad", &xs[..49], &mut det, &xs, EquivalenceMode::Bitwise).is_err()
        );
    }
}
