//! Generic adapter running any batch [`Detector`] over a sliding chunk.
//!
//! Not every detector has a native streaming port. [`BatchAdapter`] keeps
//! the last `window` samples in a ring and re-runs the batch detector every
//! `every` pushes, freezing each point's score the first time it is
//! computed. This gives bounded memory and bounded (amortized) work for
//! *any* batch detector, at the price of the equivalence guarantee: the
//! batch detector sees a truncated history, so the adapter is explicitly
//! **approximate** — the equivalence harness does not certify it, and the
//! replay tables label it as such.

use std::collections::VecDeque;

use tsad_core::ckpt::{corrupt, CkptReader, CkptState, CkptWriter};
use tsad_core::error::{CoreError, Result};
use tsad_core::ops::incremental::RingBuffer;
use tsad_core::TimeSeries;
use tsad_detectors::Detector;

use crate::StreamingDetector;

/// Sliding-chunk re-scoring wrapper for a batch detector.
#[derive(Debug, Clone)]
pub struct BatchAdapter<D: Detector> {
    detector: D,
    window: usize,
    every: usize,
    train_len: usize,
    ring: RingBuffer,
    ready: VecDeque<f64>,
    pushed: usize,
    /// Number of points whose (frozen) score has been computed.
    scored: usize,
}

impl<D: Detector> BatchAdapter<D> {
    /// Wraps `detector`: retain `window` samples, re-score every `every`
    /// pushes (`1 ≤ every ≤ window`). `train_len` is forwarded to the batch
    /// detector, clamped to the chunk length.
    pub fn new(detector: D, window: usize, every: usize, train_len: usize) -> Result<Self> {
        if every == 0 || every > window {
            return Err(CoreError::BadParameter {
                name: "every",
                value: every as f64,
                expected: "1 <= every <= window (otherwise points are \
                           evicted before they are ever scored)",
            });
        }
        Ok(Self {
            detector,
            window,
            every,
            train_len,
            ring: RingBuffer::new(window)?,
            ready: VecDeque::new(),
            pushed: 0,
            scored: 0,
        })
    }

    /// Runs the batch detector over the current chunk and freezes scores
    /// for the not-yet-scored points. Batch errors (e.g. a chunk still too
    /// short for the detector's window) score those points 0.0.
    fn rescore(&mut self) {
        let chunk: Vec<f64> = self.ring.iter().collect();
        let first = self.ring.first_index();
        let scores = TimeSeries::from_values(chunk)
            .and_then(|ts| self.detector.score(&ts, self.train_len.min(ts.len())))
            .unwrap_or_default();
        for p in self.scored..self.pushed {
            let s = scores.get(p - first).copied().unwrap_or(0.0);
            self.ready.push_back(s);
        }
        self.scored = self.pushed;
    }
}

impl<D: Detector> StreamingDetector for BatchAdapter<D> {
    fn name(&self) -> String {
        format!(
            "{}({}, window={}, every={})",
            tsad_detectors::registry::display::BATCH_ADAPTER,
            self.detector.name(),
            self.window,
            self.every
        )
    }

    fn push(&mut self, x: f64) -> Option<f64> {
        self.ring.push(x);
        self.pushed += 1;
        if self.pushed.is_multiple_of(self.every) {
            self.rescore();
        }
        self.ready.pop_front()
    }

    fn finish(&mut self) -> Vec<f64> {
        if self.scored < self.pushed {
            self.rescore();
        }
        self.ready.drain(..).collect()
    }

    fn reset(&mut self) {
        self.ring.clear();
        self.ready.clear();
        self.pushed = 0;
        self.scored = 0;
    }

    fn lag(&self) -> usize {
        self.every - 1
    }

    fn memory_bound(&self) -> usize {
        // ring + score backlog (≤ every) + one transient chunk copy during
        // rescoring
        2 * self.window + self.every
    }

    fn save_state(&self, w: &mut CkptWriter) {
        // `train_len` is config but is not part of `name()`, so echo it
        // into the blob as an extra fingerprint field
        w.usize(self.train_len);
        self.ring.save(w);
        w.f64_seq(self.ready.len(), self.ready.iter().copied());
        w.usize(self.pushed);
        w.usize(self.scored);
    }

    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        let train_len = r.usize()?;
        if train_len != self.train_len {
            return Err(corrupt(format!(
                "batch-adapter train_len mismatch: blob {train_len}, \
                 instance {}",
                self.train_len
            )));
        }
        self.ring.load(r)?;
        self.ready = r.f64_vec()?.into();
        self.pushed = r.usize()?;
        self.scored = r.usize()?;
        if self.scored > self.pushed || self.pushed != self.ring.next_index() {
            return Err(corrupt(format!(
                "batch-adapter counters inconsistent: pushed {}, scored {}, \
                 ring next {}",
                self.pushed,
                self.scored,
                self.ring.next_index()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_detectors::baselines::{GlobalZScore, MovingAvgResidual};

    fn series(n: usize, spike_at: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.1).sin() + if i == spike_at { 7.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn emits_one_score_per_point_in_order() {
        let xs = series(203, 150);
        let mut a = BatchAdapter::new(MovingAvgResidual::new(11), 64, 16, 0).unwrap();
        let got = a.score_stream(&xs);
        assert_eq!(got.len(), xs.len());
        // the spike is inside the chunk when its score freezes, so it peaks
        let peak = got
            .iter()
            .enumerate()
            .max_by(|p, q| p.1.total_cmp(q.1))
            .map(|(i, _)| i)
            .unwrap();
        assert!(peak.abs_diff(150) <= 1, "peak {peak}");
    }

    #[test]
    fn emission_lag_is_every_minus_one() {
        let xs = series(40, 20);
        let mut a = BatchAdapter::new(GlobalZScore, 32, 8, 0).unwrap();
        assert_eq!(a.lag(), 7);
        for (t, &v) in xs.iter().enumerate() {
            // the first rescore fires on push 8 and the backlog then drains
            // exactly one score per push
            assert_eq!(a.push(v).is_some(), t >= 7, "t={t}");
        }
        assert_eq!(a.finish().len(), 7);
    }

    #[test]
    fn memory_bound_is_constant() {
        let mut a = BatchAdapter::new(GlobalZScore, 128, 32, 64).unwrap();
        let bound = a.memory_bound();
        for i in 0..5000 {
            a.push((i as f64 * 0.01).cos());
        }
        assert_eq!(a.memory_bound(), bound);
        assert!(a.ready.len() <= 32);
        assert!(a.ring.len() <= 128);
    }

    #[test]
    fn validates_parameters() {
        assert!(BatchAdapter::new(GlobalZScore, 16, 0, 0).is_err());
        assert!(BatchAdapter::new(GlobalZScore, 16, 17, 0).is_err());
    }

    #[test]
    fn reset_replays_identically() {
        let xs = series(100, 60);
        let mut a = BatchAdapter::new(MovingAvgResidual::new(7), 48, 12, 0).unwrap();
        let first = a.score_stream(&xs);
        a.reset();
        assert_eq!(a.score_stream(&xs), first);
    }
}
