//! Streaming side of the detector registry: spawn-by-id from one table.
//!
//! `tsad_detectors::registry` is the single catalog — names, schemas,
//! costs, and the [`StreamingSupport`] plan. This module executes that
//! plan: entries marked [`StreamingSupport::Native`] get their handwritten
//! bitwise-equivalent port, everything else is wrapped in a
//! [`BatchAdapter`] with the chunk geometry the catalog chose for the
//! entry's cost class. [`RegistryFactory`] then makes any catalog id a
//! [`DetectorFactory`], so `tsad-fleet` shards, TSCK fingerprints, and the
//! replay harness all resolve detectors from the same table as the batch
//! experiments and the generated `DETECTORS.md`.

use tsad_core::error::{CoreError, Result};
use tsad_detectors::cusum::Cusum;
use tsad_detectors::matrix_profile::{exclusion_zone, ProfileMetric};
use tsad_detectors::oneliner::{equation, Equation};
use tsad_detectors::registry::{DetectorRegistry, Params, StreamingSupport};
use tsad_detectors::spot::Spot;

use crate::adapter::BatchAdapter;
use crate::detectors::{StreamingCusum, StreamingGlobalZScore, StreamingMovingAvgResidual};
use crate::discord::StreamingLeftDiscord;
use crate::oneliner::StreamingOneLiner;
use crate::spot::StreamingSpot;
use crate::StreamingDetector;

// Re-exported here so one `use tsad_stream::registry::*`-style import gives
// callers the whole spawn-by-id surface; the fleet resolves through this
// module rather than reaching into `factory` directly.
pub use crate::factory::{DetectorFactory, FnFactory};

/// Deployment-side knobs the catalog schema deliberately does not carry:
/// how much history a port may treat as its training prefix and how far
/// back the left-discord horizon reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHints {
    /// Training-prefix length forwarded to prefix-calibrated ports
    /// (z-score, CUSUM, SPOT) and to every [`BatchAdapter`] chunk.
    pub train_len: usize,
    /// Retained-window horizon for the streaming left discord (clamped up
    /// to the exclusion zone of the entry's subsequence length).
    pub horizon: usize,
}

impl Default for StreamHints {
    fn default() -> Self {
        Self {
            train_len: 200,
            horizon: 256,
        }
    }
}

/// Builds streaming detectors from [`DetectorRegistry`] entries.
#[derive(Debug)]
pub struct StreamRegistry {
    batch: DetectorRegistry,
}

impl Default for StreamRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl StreamRegistry {
    /// The streaming view of the standard catalog.
    pub fn standard() -> Self {
        Self {
            batch: DetectorRegistry::standard(),
        }
    }

    /// The underlying batch catalog (ids, schemas, metadata).
    pub fn catalog(&self) -> &DetectorRegistry {
        &self.batch
    }

    /// Builds the streaming form of catalog entry `id`: the native port
    /// when one exists, otherwise a [`BatchAdapter`] with the catalog's
    /// chunk geometry for that entry. Parameter overrides are validated
    /// against the same schema as the batch build.
    pub fn build(
        &self,
        id: &str,
        params: &Params,
        hints: &StreamHints,
    ) -> Result<Box<dyn StreamingDetector + Send + Sync>> {
        let entry = self.batch.get(id)?;
        match entry.streaming {
            StreamingSupport::Adapted { window, every } => {
                let det = entry.build(params)?;
                Ok(Box::new(BatchAdapter::new(
                    det,
                    window,
                    every,
                    hints.train_len,
                )?))
            }
            StreamingSupport::Native => {
                let p = entry.resolve(params)?;
                Ok(match entry.id {
                    "global-zscore" => Box::new(StreamingGlobalZScore::new(hints.train_len)?),
                    "moving-avg-residual" => {
                        Box::new(StreamingMovingAvgResidual::new(p.usize("window"))?)
                    }
                    "cusum" => Box::new(StreamingCusum::new(
                        Cusum {
                            allowance: p.f64("allowance"),
                            decay: p.f64("decay"),
                        },
                        hints.train_len,
                    )?),
                    "oneliner" => Box::new(StreamingOneLiner::compile(&equation(
                        Equation::Eq5,
                        p.usize("k"),
                        p.f64("c"),
                        p.f64("b"),
                    ))?),
                    "left-discord" => {
                        let m = p.usize("window");
                        Box::new(StreamingLeftDiscord::new(
                            m,
                            ProfileMetric::ZNormalized,
                            hints.horizon.max(exclusion_zone(m)),
                        )?)
                    }
                    "spot" => Box::new(StreamingSpot::new(
                        Spot {
                            level: p.f64("level"),
                            risk: p.f64("risk"),
                        },
                        hints.train_len,
                    )?),
                    other => {
                        // a Native entry must have an arm above; reaching
                        // here means the catalog and this module diverged
                        return Err(CoreError::Unknown {
                            what: "native streaming port",
                            name: other.to_string(),
                        });
                    }
                })
            }
        }
    }
}

/// A [`DetectorFactory`] that spawns one catalog entry with fixed
/// parameters — the bridge from the registry to `tsad-fleet`.
///
/// Construction builds the detector once, so a bad id or parameter set
/// fails *before* the factory reaches a fleet; `spawn` can then be
/// infallible as the trait requires.
#[derive(Debug)]
pub struct RegistryFactory {
    registry: StreamRegistry,
    id: String,
    params: Params,
    hints: StreamHints,
    fingerprint: String,
}

impl RegistryFactory {
    /// Creates a factory for catalog entry `id`, validating the
    /// configuration eagerly by building a probe detector.
    pub fn new(id: &str, params: Params, hints: StreamHints) -> Result<Self> {
        let registry = StreamRegistry::standard();
        let probe = registry.build(id, &params, &hints)?;
        Ok(Self {
            registry,
            id: id.to_string(),
            params,
            hints,
            fingerprint: probe.name(),
        })
    }

    /// The catalog id this factory spawns.
    pub fn id(&self) -> &str {
        &self.id
    }
}

impl DetectorFactory for RegistryFactory {
    type Detector = Box<dyn StreamingDetector + Send + Sync>;

    fn spawn(&self, _id: u64) -> Self::Detector {
        self.registry
            .build(&self.id, &self.params, &self.hints)
            .expect("configuration validated at construction")
    }

    fn fingerprint(&self) -> String {
        self.fingerprint.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let noise = (((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64
                    / (1u64 << 24) as f64)
                    - 0.5;
                (i as f64 * 0.05).sin() + 0.3 * noise + if i == 400 { 6.0 } else { 0.0 }
            })
            .collect()
    }

    #[test]
    fn every_catalog_entry_builds_a_streaming_detector() {
        let reg = StreamRegistry::standard();
        let hints = StreamHints::default();
        let xs = series(600);
        for entry in reg.catalog().entries() {
            let mut det = reg
                .build(entry.id, &Params::new(), &hints)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
            let scores = det.score_stream(&xs);
            assert!(
                scores.len() + det.score_offset() == xs.len() || scores.is_empty(),
                "{}: {} scores for {} points (offset {})",
                entry.id,
                scores.len(),
                xs.len(),
                det.score_offset()
            );
            assert!(
                scores.iter().all(|s| s.is_finite()),
                "{}: non-finite score",
                entry.id
            );
        }
    }

    #[test]
    fn native_entries_bypass_the_adapter() {
        let reg = StreamRegistry::standard();
        let hints = StreamHints::default();
        let adapter_prefix = tsad_detectors::registry::display::BATCH_ADAPTER;
        for entry in reg.catalog().entries() {
            let det = reg.build(entry.id, &Params::new(), &hints).unwrap();
            let is_adapted = matches!(entry.streaming, StreamingSupport::Adapted { .. });
            assert_eq!(
                det.name().starts_with(adapter_prefix),
                is_adapted,
                "{}: name {:?} vs plan {:?}",
                entry.id,
                det.name(),
                entry.streaming
            );
        }
    }

    #[test]
    fn overrides_flow_through_to_native_ports() {
        let reg = StreamRegistry::standard();
        let hints = StreamHints::default();
        let det = reg
            .build(
                "moving-avg-residual",
                &Params::new().set_int("window", 9),
                &hints,
            )
            .unwrap();
        assert!(det.name().contains("k=9"), "{}", det.name());
        let err = reg
            .build("spot", &Params::new().set_f64("nope", 1.0), &hints)
            .err()
            .expect("unknown parameter must fail");
        assert!(err.to_string().contains("unknown parameter"), "{err}");
    }

    #[test]
    fn factory_spawns_identical_detectors_and_fingerprints_them() {
        let factory = RegistryFactory::new("cusum", Params::new(), StreamHints::default()).unwrap();
        let xs = series(500);
        let mut a = factory.spawn(1);
        let mut b = factory.spawn(2);
        let sa = a.score_stream(&xs);
        assert_eq!(sa, b.score_stream(&xs));
        assert_eq!(factory.fingerprint(), a.name());
        assert!(RegistryFactory::new("no-such", Params::new(), StreamHints::default()).is_err());
    }
}
