//! Replay harness: drive a [`StreamingDetector`] with a recorded series as
//! if it were live.
//!
//! The driver feeds the series in configurable chunk sizes (chunk 1 ≈ a
//! point-by-point sensor feed; larger chunks ≈ micro-batched ingestion),
//! measures throughput and per-push latency, thresholds the emitted scores
//! into alarms, and scores them with the detection-delay metric from
//! `tsad-eval` (`first alarm − anomaly onset` per labeled region).
//!
//! Scores — and therefore alarms, delays, and false-alarm counts — are
//! **independent of the chunking**: chunk size only affects the timing
//! numbers. The replay tests assert this.

use std::time::Instant;

use tsad_core::error::{CoreError, Result};
use tsad_core::Labels;
use tsad_eval::streaming::{delays_from_scores, DelayReport};
use tsad_obs::{Counter, Gauge, Histogram};

use crate::StreamingDetector;

/// Total points fed through [`replay`] across all runs since reset.
static REPLAY_POINTS: Counter = Counter::new("stream.replay.points");
/// Alarms raised outside every labeled region, summed over replay runs.
static REPLAY_FALSE_ALARMS: Counter = Counter::new("stream.replay.false_alarms");
/// Throughput of the most recent replay run, in points per second
/// (last-wins across runs; per-run values live in `ReplayOutcome`).
static REPLAY_POINTS_PER_SEC: Gauge = Gauge::new("stream.replay.points_per_sec");
/// Wall-clock nanoseconds per pushed chunk — the detection-latency side of
/// the throughput/latency trade the chunk size controls.
static REPLAY_CHUNK_PUSH_NS: Histogram = Histogram::new("stream.replay.chunk_push_ns", "ns");
/// Detection delay per detected region, in points past the anomaly onset.
static REPLAY_DELAY_POINTS: Histogram = Histogram::new("stream.replay.delay_points", "points");

/// Replay parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Points fed per timed chunk (≥ 1).
    pub chunk_size: usize,
    /// Alarm threshold: positions with `score > threshold` alarm.
    pub threshold: f64,
    /// Detection-delay slop (see `tsad_eval::streaming`).
    pub slop: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            chunk_size: 1,
            threshold: 3.0,
            slop: 0,
        }
    }
}

/// Measurements from one replay run.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Streaming detector name.
    pub detector: String,
    /// Points replayed.
    pub points: usize,
    /// Chunk size used.
    pub chunk_size: usize,
    /// Wall-clock nanoseconds across all pushes plus `finish`.
    pub total_ns: u128,
    /// Throughput in points per second.
    pub points_per_sec: f64,
    /// Mean per-push latency in nanoseconds.
    pub mean_push_ns: f64,
    /// Worst chunk, normalized per point (latency spike indicator).
    pub max_chunk_ns_per_point: f64,
    /// Reported memory bound of the detector, in `f64`-equivalents.
    pub memory_bound: usize,
    /// Detection-delay evaluation of the thresholded scores.
    pub delays: DelayReport,
}

/// Replays `xs` (with per-point `labels`) through `det` under `cfg`.
///
/// The detector is `reset` first, so a single instance can be replayed at
/// several chunk sizes back to back.
pub fn replay(
    det: &mut dyn StreamingDetector,
    xs: &[f64],
    labels: &Labels,
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome> {
    if cfg.chunk_size == 0 {
        return Err(CoreError::BadParameter {
            name: "chunk_size",
            value: 0.0,
            expected: "chunk_size >= 1",
        });
    }
    if labels.len() != xs.len() {
        return Err(CoreError::LengthMismatch {
            left: labels.len(),
            right: xs.len(),
        });
    }

    det.reset();
    let mut scores: Vec<f64> = Vec::with_capacity(xs.len());
    let mut total_ns: u128 = 0;
    let mut max_chunk_ns_per_point = 0.0f64;

    for chunk in xs.chunks(cfg.chunk_size) {
        let t0 = Instant::now();
        for &v in chunk {
            if let Some(s) = det.push(v) {
                scores.push(s);
            }
        }
        let ns = t0.elapsed().as_nanos();
        REPLAY_CHUNK_PUSH_NS.record(ns.min(u64::MAX as u128) as u64);
        total_ns += ns;
        let per_point = ns as f64 / chunk.len() as f64;
        if per_point > max_chunk_ns_per_point {
            max_chunk_ns_per_point = per_point;
        }
    }
    let t0 = Instant::now();
    scores.extend(det.finish());
    total_ns += t0.elapsed().as_nanos();

    let secs = total_ns as f64 / 1e9;
    let points_per_sec = if secs > 0.0 {
        xs.len() as f64 / secs
    } else {
        f64::INFINITY
    };
    let delays = delays_from_scores(&scores, det.score_offset(), cfg.threshold, labels, cfg.slop)?;

    REPLAY_POINTS.add(xs.len() as u64);
    REPLAY_FALSE_ALARMS.add(delays.false_alarms as u64);
    if points_per_sec.is_finite() {
        REPLAY_POINTS_PER_SEC.set(points_per_sec as u64);
    }
    for region in &delays.regions {
        if let Some(delay) = region.delay {
            REPLAY_DELAY_POINTS.record(delay as u64);
        }
    }

    Ok(ReplayOutcome {
        detector: det.name(),
        points: xs.len(),
        chunk_size: cfg.chunk_size,
        total_ns,
        points_per_sec,
        mean_push_ns: total_ns as f64 / xs.len() as f64,
        max_chunk_ns_per_point,
        memory_bound: det.memory_bound(),
        delays,
    })
}

/// One independent replay: a detector instance, its input, and a config.
///
/// Owned (not borrowed) detectors so each job can run on its own thread.
pub struct ReplayJob<'a> {
    /// The streaming detector (consumed by the replay).
    pub detector: Box<dyn StreamingDetector + Send>,
    /// The series to feed.
    pub xs: &'a [f64],
    /// Per-point ground truth.
    pub labels: &'a Labels,
    /// Replay parameters.
    pub cfg: ReplayConfig,
}

/// Replays a panel of independent jobs on the `tsad-parallel` pool.
///
/// Outcomes come back in job order. Scores — and therefore alarms, delays,
/// and false-alarm counts — are chunking- **and thread-count**-invariant;
/// only the wall-clock fields (`total_ns`, `points_per_sec`, …) vary
/// between runs, exactly as they do sequentially.
pub fn replay_many(jobs: Vec<ReplayJob<'_>>) -> Vec<Result<ReplayOutcome>> {
    let tasks: Vec<Box<dyn FnOnce() -> Result<ReplayOutcome> + Send + '_>> = jobs
        .into_iter()
        .map(|mut job| {
            Box::new(move || replay(job.detector.as_mut(), job.xs, job.labels, &job.cfg))
                as Box<dyn FnOnce() -> Result<ReplayOutcome> + Send + '_>
        })
        .collect();
    tsad_parallel::par_invoke(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamingGlobalZScore;
    use tsad_core::Region;

    fn spiky() -> (Vec<f64>, Labels) {
        let n = 3000;
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                let base = (i as f64 * 0.05).sin() * 0.3;
                if (2000..2010).contains(&i) {
                    base + 8.0
                } else {
                    base
                }
            })
            .collect();
        let labels = Labels::new(
            n,
            vec![Region {
                start: 2000,
                end: 2010,
            }],
        )
        .unwrap();
        (xs, labels)
    }

    #[test]
    fn delays_are_independent_of_chunking() {
        let (xs, labels) = spiky();
        let mut det = StreamingGlobalZScore::new(500).unwrap();
        let mut reports = Vec::new();
        for chunk_size in [1usize, 64, 4096] {
            let cfg = ReplayConfig {
                chunk_size,
                threshold: 4.0,
                slop: 16,
            };
            let r = replay(&mut det, &xs, &labels, &cfg).unwrap();
            assert_eq!(r.points, 3000);
            assert!(r.points_per_sec > 0.0);
            assert!(r.mean_push_ns >= 0.0);
            reports.push(r);
        }
        for r in &reports[1..] {
            assert_eq!(r.delays, reports[0].delays, "chunking changed the alarms");
        }
        // the spike is found with zero delay: score > 4 on the onset sample
        assert_eq!(reports[0].delays.detected(), 1);
        assert_eq!(reports[0].delays.regions[0].delay, Some(0));
        assert_eq!(reports[0].delays.false_alarms, 0);
    }

    #[test]
    fn replay_many_matches_sequential_replays_in_order() {
        let (xs, labels) = spiky();
        let cfgs = [
            ReplayConfig {
                chunk_size: 1,
                threshold: 4.0,
                slop: 16,
            },
            ReplayConfig {
                chunk_size: 64,
                threshold: 4.0,
                slop: 16,
            },
        ];
        let windows = [300usize, 500];
        let jobs: Vec<ReplayJob<'_>> = windows
            .iter()
            .zip(&cfgs)
            .map(|(&w, cfg)| ReplayJob {
                detector: Box::new(StreamingGlobalZScore::new(w).unwrap()),
                xs: &xs,
                labels: &labels,
                cfg: *cfg,
            })
            .collect();
        let outcomes = tsad_parallel::with_threads(4, || replay_many(jobs));
        assert_eq!(outcomes.len(), 2);
        for ((outcome, &w), cfg) in outcomes.into_iter().zip(&windows).zip(&cfgs) {
            let got = outcome.unwrap();
            let mut det = StreamingGlobalZScore::new(w).unwrap();
            let want = replay(&mut det, &xs, &labels, cfg).unwrap();
            assert_eq!(got.chunk_size, want.chunk_size);
            assert_eq!(got.delays, want.delays);
            assert_eq!(got.memory_bound, want.memory_bound);
        }
    }

    #[test]
    fn rejects_bad_config_and_mismatched_labels() {
        let (xs, labels) = spiky();
        let mut det = StreamingGlobalZScore::new(100).unwrap();
        let bad = ReplayConfig {
            chunk_size: 0,
            threshold: 1.0,
            slop: 0,
        };
        assert!(replay(&mut det, &xs, &labels, &bad).is_err());
        let short = Labels::new(10, vec![]).unwrap();
        let cfg = ReplayConfig::default();
        assert!(replay(&mut det, &xs, &short, &cfg).is_err());
    }
}
