//! Streaming execution of the paper's one-line detectors.
//!
//! [`StreamingOneLiner::compile`] lowers a batch
//! [`OneLiner`] predicate into a tree of
//! incremental nodes (one per AST operator) that consumes the series one
//! sample at a time. The emitted scores are the margins `lhs − rhs` — the
//! same values [`OneLiner::score_values`] computes — produced **bitwise
//! identically**, because every `movmean`/`movstd` window is materialized
//! and reduced through the same `tsad-core` helpers as the batch ops, and
//! every elementwise combination preserves the batch operand order.
//!
//! ## Alignment
//!
//! `diff` shifts meaning: after `d` diffs the first margin describes series
//! index `d`. Batch `score_values` pads indices `0..d` with the *global
//! minimum* margin — a non-causal value no stream can know up front — so
//! the streaming engine simply starts emitting at
//! [`score_offset`](crate::StreamingDetector::score_offset)` = d` and the
//! equivalence harness compares `batch[d..]`.
//!
//! ## Constant broadcasting
//!
//! The batch evaluator broadcasts any operand that *evaluates* to a uniform
//! vector across diff depths. A stream cannot decide runtime uniformity in
//! advance, so the compiler folds subtrees that are uniform *by
//! construction* (`Const`, scaled/negated/summed constants, `diff` of a
//! constant) and rejects depth-mismatched binaries whose lower side is not
//! such a fold with [`CoreError::BadParameter`]. Every equation family the
//! Table-1 search emits (Eq. 1–6) compiles.

use std::collections::VecDeque;

use tsad_core::ckpt::{corrupt, CkptReader, CkptState, CkptWriter};
use tsad_core::error::{CoreError, Result};
use tsad_core::ops::incremental;
use tsad_detectors::oneliner::{Expr, OneLiner};

use crate::StreamingDetector;

/// One incremental operator of the compiled plan.
#[derive(Debug, Clone)]
enum Node {
    /// Emits the raw sample.
    Source,
    /// Emits the constant once per push (depth-polymorphic; surplus outputs
    /// are discarded when paired against a deeper operand).
    Const(f64),
    Diff(Box<Node>, incremental::Diff),
    Abs(Box<Node>),
    Scale(f64, Box<Node>),
    MovMean(Box<Node>, incremental::MovMean),
    MovStd(Box<Node>, incremental::MovStd),
    MovMax(Box<Node>, incremental::MovMax),
    MovMin(Box<Node>, incremental::MovMin),
    Bin {
        sub: bool,
        a: Box<Node>,
        b: Box<Node>,
        qa: VecDeque<f64>,
        qb: VecDeque<f64>,
        /// Emission-delay gap between the children: the faster side's queue
        /// never grows beyond this (+1 in-flight value).
        gap: usize,
    },
}

impl Node {
    /// Consumes one raw sample; emits at most one in-order output.
    fn push(&mut self, v: f64) -> Option<f64> {
        match self {
            Node::Source => Some(v),
            Node::Const(c) => Some(*c),
            Node::Diff(inner, d) => inner.push(v).and_then(|x| d.push(x)),
            Node::Abs(inner) => inner.push(v).map(f64::abs),
            Node::Scale(c, inner) => inner.push(v).map(|x| *c * x),
            Node::MovMean(inner, n) => inner.push(v).and_then(|x| n.push(x)),
            Node::MovStd(inner, n) => inner.push(v).and_then(|x| n.push(x)),
            Node::MovMax(inner, n) => inner.push(v).and_then(|x| n.push(x)),
            Node::MovMin(inner, n) => inner.push(v).and_then(|x| n.push(x)),
            Node::Bin {
                sub, a, b, qa, qb, ..
            } => {
                if let Some(x) = a.push(v) {
                    qa.push_back(x);
                }
                if let Some(x) = b.push(v) {
                    qb.push_back(x);
                }
                combine(*sub, qa, qb)
            }
        }
    }

    /// Drains the outputs held back by centered windows at end of stream.
    fn finish(&mut self) -> Vec<f64> {
        match self {
            Node::Source | Node::Const(_) => Vec::new(),
            Node::Diff(inner, d) => inner
                .finish()
                .into_iter()
                .filter_map(|x| d.push(x))
                .collect(),
            Node::Abs(inner) => inner.finish().into_iter().map(f64::abs).collect(),
            Node::Scale(c, inner) => inner.finish().into_iter().map(|x| *c * x).collect(),
            Node::MovMean(inner, n) => drain_window(inner, n),
            Node::MovStd(inner, n) => drain_window(inner, n),
            Node::MovMax(inner, n) => drain_window(inner, n),
            Node::MovMin(inner, n) => drain_window(inner, n),
            Node::Bin {
                sub, a, b, qa, qb, ..
            } => {
                qa.extend(a.finish());
                qb.extend(b.finish());
                let mut out = Vec::new();
                while let Some(x) = combine(*sub, qa, qb) {
                    out.push(x);
                }
                // a depth-polymorphic Const side legitimately over-produces
                // by `depth` values; they pair with nothing, as in batch
                // broadcasting
                qa.clear();
                qb.clear();
                out
            }
        }
    }

    fn reset(&mut self) {
        match self {
            Node::Source | Node::Const(_) => {}
            Node::Diff(inner, d) => {
                inner.reset();
                d.reset();
            }
            Node::Abs(inner) | Node::Scale(_, inner) => inner.reset(),
            Node::MovMean(inner, n) => {
                inner.reset();
                n.reset();
            }
            Node::MovStd(inner, n) => {
                inner.reset();
                n.reset();
            }
            Node::MovMax(inner, n) => {
                inner.reset();
                n.reset();
            }
            Node::MovMin(inner, n) => {
                inner.reset();
                n.reset();
            }
            Node::Bin { a, b, qa, qb, .. } => {
                a.reset();
                b.reset();
                qa.clear();
                qb.clear();
            }
        }
    }

    /// Structural tag for checkpoint framing; [`load`](Self::load) verifies
    /// the blob's tree shape against the compiled plan node by node.
    fn tag(&self) -> u8 {
        match self {
            Node::Source => 0,
            Node::Const(_) => 1,
            Node::Diff(..) => 2,
            Node::Abs(_) => 3,
            Node::Scale(..) => 4,
            Node::MovMean(..) => 5,
            Node::MovStd(..) => 6,
            Node::MovMax(..) => 7,
            Node::MovMin(..) => 8,
            Node::Bin { .. } => 9,
        }
    }

    /// Serializes the dynamic state of the whole subtree, pre-order.
    fn save(&self, w: &mut CkptWriter) {
        w.u8(self.tag());
        match self {
            Node::Source | Node::Const(_) => {}
            Node::Diff(inner, d) => {
                inner.save(w);
                d.save(w);
            }
            Node::Abs(inner) | Node::Scale(_, inner) => inner.save(w),
            Node::MovMean(inner, n) => {
                inner.save(w);
                n.save(w);
            }
            Node::MovStd(inner, n) => {
                inner.save(w);
                n.save(w);
            }
            Node::MovMax(inner, n) => {
                inner.save(w);
                n.save(w);
            }
            Node::MovMin(inner, n) => {
                inner.save(w);
                n.save(w);
            }
            Node::Bin { a, b, qa, qb, .. } => {
                a.save(w);
                b.save(w);
                w.f64_seq(qa.len(), qa.iter().copied());
                w.f64_seq(qb.len(), qb.iter().copied());
            }
        }
    }

    /// Rehydrates the subtree's dynamic state, failing on any structural
    /// mismatch between the blob and the compiled plan.
    fn load(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        let tag = r.u8()?;
        if tag != self.tag() {
            return Err(corrupt(format!(
                "one-liner plan shape mismatch: blob node tag {tag}, plan tag {}",
                self.tag()
            )));
        }
        match self {
            Node::Source | Node::Const(_) => Ok(()),
            Node::Diff(inner, d) => {
                inner.load(r)?;
                d.load(r)
            }
            Node::Abs(inner) | Node::Scale(_, inner) => inner.load(r),
            Node::MovMean(inner, n) => {
                inner.load(r)?;
                n.load(r)
            }
            Node::MovStd(inner, n) => {
                inner.load(r)?;
                n.load(r)
            }
            Node::MovMax(inner, n) => {
                inner.load(r)?;
                n.load(r)
            }
            Node::MovMin(inner, n) => {
                inner.load(r)?;
                n.load(r)
            }
            Node::Bin { a, b, qa, qb, .. } => {
                a.load(r)?;
                b.load(r)?;
                *qa = r.f64_vec()?.into();
                *qb = r.f64_vec()?.into();
                Ok(())
            }
        }
    }

    /// Upper bound on retained `f64`-equivalents.
    fn memory_bound(&self) -> usize {
        match self {
            Node::Source | Node::Const(_) => 1,
            Node::Diff(inner, _) => inner.memory_bound() + 1,
            Node::Abs(inner) | Node::Scale(_, inner) => inner.memory_bound(),
            Node::MovMean(inner, n) => inner.memory_bound() + n.memory_bound(),
            Node::MovStd(inner, n) => inner.memory_bound() + n.memory_bound(),
            Node::MovMax(inner, n) => inner.memory_bound() + n.memory_bound(),
            Node::MovMin(inner, n) => inner.memory_bound() + n.memory_bound(),
            Node::Bin { a, b, gap, .. } => a.memory_bound() + b.memory_bound() + 2 * (gap + 1),
        }
    }
}

/// Small helper so the macro-generated window nodes share drain logic.
trait WindowNode {
    fn push_w(&mut self, v: f64) -> Option<f64>;
    fn finish_w(&mut self) -> Vec<f64>;
}
macro_rules! window_node {
    ($t:ty) => {
        impl WindowNode for $t {
            fn push_w(&mut self, v: f64) -> Option<f64> {
                self.push(v)
            }
            fn finish_w(&mut self) -> Vec<f64> {
                self.finish()
            }
        }
    };
}
window_node!(incremental::MovMean);
window_node!(incremental::MovStd);
window_node!(incremental::MovMax);
window_node!(incremental::MovMin);

fn drain_window<W: WindowNode>(inner: &mut Node, node: &mut W) -> Vec<f64> {
    let mut out: Vec<f64> = inner
        .finish()
        .into_iter()
        .filter_map(|x| node.push_w(x))
        .collect();
    out.extend(node.finish_w());
    out
}

fn combine(sub: bool, qa: &mut VecDeque<f64>, qb: &mut VecDeque<f64>) -> Option<f64> {
    if qa.is_empty() || qb.is_empty() {
        return None;
    }
    let p = qa.pop_front().expect("non-empty");
    let q = qb.pop_front().expect("non-empty");
    // batch evaluates `p + q` / `p − q` with the a-side first; keep that
    // operand order for bitwise agreement
    Some(if sub { p - q } else { p + q })
}

/// Compile output for one subtree.
struct Compiled {
    node: Node,
    /// Diff depth: the first output describes series index `depth`.
    depth: usize,
    /// Emission delay: output `t` emerges on push `t + delay`.
    delay: usize,
    /// True when the subtree folded to a constant (depth-polymorphic).
    poly: bool,
}

/// Uniform-by-construction subtrees fold to a single constant. This mirrors
/// exactly the cases where the batch broadcaster is *guaranteed* to see a
/// uniform vector; `movmean`/`movstd` of a constant are excluded because
/// their endpoint-shrinking windows break uniformity in general.
fn const_fold(e: &Expr) -> Option<f64> {
    match e {
        Expr::Const(c) => Some(*c),
        Expr::Scale(c, e) => const_fold(e).map(|v| c * v),
        Expr::Abs(e) => const_fold(e).map(f64::abs),
        Expr::Add(a, b) => Some(const_fold(a)? + const_fold(b)?),
        Expr::Sub(a, b) => Some(const_fold(a)? - const_fold(b)?),
        // diff of a uniform vector is uniformly v − v = 0
        // `v - v` (not 0.0): keeps the batch bit pattern for non-finite
        // constants (inf − inf = NaN) and +0.0 for every finite `v`
        #[allow(clippy::eq_op)]
        Expr::Diff(e) => const_fold(e).map(|v| v - v),
        Expr::MovMax(e, _) | Expr::MovMin(e, _) => const_fold(e),
        Expr::Ts | Expr::MovMean(..) | Expr::MovStd(..) => None,
    }
}

fn depth_mismatch(left: usize) -> CoreError {
    CoreError::BadParameter {
        name: "diff depth",
        value: left as f64,
        expected: "equal diff depth on both operands of a binary op \
                   (or a constant operand)",
    }
}

fn compile_expr(e: &Expr) -> Result<Compiled> {
    if let Some(c) = const_fold(e) {
        return Ok(Compiled {
            node: Node::Const(c),
            depth: 0,
            delay: 0,
            poly: true,
        });
    }
    match e {
        Expr::Ts => Ok(Compiled {
            node: Node::Source,
            depth: 0,
            delay: 0,
            poly: false,
        }),
        Expr::Const(_) => unreachable!("handled by const_fold"),
        Expr::Diff(inner) => {
            let c = compile_expr(inner)?;
            Ok(Compiled {
                node: Node::Diff(Box::new(c.node), incremental::Diff::new()),
                depth: c.depth + 1,
                delay: c.delay + 1,
                poly: false,
            })
        }
        Expr::Abs(inner) => {
            let c = compile_expr(inner)?;
            Ok(Compiled {
                node: Node::Abs(Box::new(c.node)),
                depth: c.depth,
                delay: c.delay,
                poly: false,
            })
        }
        Expr::Scale(f, inner) => {
            let c = compile_expr(inner)?;
            Ok(Compiled {
                node: Node::Scale(*f, Box::new(c.node)),
                depth: c.depth,
                delay: c.delay,
                poly: false,
            })
        }
        Expr::MovMean(inner, k) => window(inner, *k, |n, w| {
            Ok(Node::MovMean(n, incremental::MovMean::new(w)?))
        }),
        Expr::MovStd(inner, k) => window(inner, *k, |n, w| {
            Ok(Node::MovStd(n, incremental::MovStd::new(w)?))
        }),
        Expr::MovMax(inner, k) => window(inner, *k, |n, w| {
            Ok(Node::MovMax(n, incremental::MovMax::new(w)?))
        }),
        Expr::MovMin(inner, k) => window(inner, *k, |n, w| {
            Ok(Node::MovMin(n, incremental::MovMin::new(w)?))
        }),
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            let ca = compile_expr(a)?;
            let cb = compile_expr(b)?;
            let (depth, delay) = match (ca.poly, cb.poly) {
                (false, false) if ca.depth != cb.depth => {
                    return Err(depth_mismatch(ca.depth));
                }
                (false, false) => (ca.depth, ca.delay.max(cb.delay)),
                (true, false) => (cb.depth, cb.delay),
                (false, true) => (ca.depth, ca.delay),
                (true, true) => unreachable!("handled by const_fold"),
            };
            let gap = ca.delay.abs_diff(cb.delay);
            Ok(Compiled {
                node: Node::Bin {
                    sub: matches!(e, Expr::Sub(..)),
                    a: Box::new(ca.node),
                    b: Box::new(cb.node),
                    qa: VecDeque::new(),
                    qb: VecDeque::new(),
                    gap,
                },
                depth,
                delay,
                poly: false,
            })
        }
    }
}

fn window(
    inner: &Expr,
    k: usize,
    make: impl FnOnce(Box<Node>, usize) -> Result<Node>,
) -> Result<Compiled> {
    let c = compile_expr(inner)?;
    Ok(Compiled {
        node: make(Box::new(c.node), k)?,
        depth: c.depth,
        delay: c.delay + (k - 1) / 2,
        poly: false,
    })
}

/// A compiled one-liner: streams the margin `lhs − rhs` per sample.
///
/// `concat(push outputs, finish())` equals
/// `OneLiner::score_values(x)[depth..]` bitwise; the batch scores before
/// `depth` are non-causal padding (the global minimum margin) and are not
/// emitted.
#[derive(Debug, Clone)]
pub struct StreamingOneLiner {
    name: String,
    root: Node,
    depth: usize,
    delay: usize,
}

impl StreamingOneLiner {
    /// Compiles the predicate `lhs > rhs` into an incremental plan.
    pub fn compile(ol: &OneLiner) -> Result<Self> {
        // margin = lhs − rhs, exactly as OneLiner::score_values computes it
        let margin = Expr::Sub(Box::new(ol.lhs.clone()), Box::new(ol.rhs.clone()));
        let c = compile_expr(&margin)?;
        Ok(Self {
            name: ol.to_string(),
            root: c.node,
            depth: c.depth,
            delay: c.delay,
        })
    }

    /// Diff depth of the compiled predicate (= `score_offset`).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl StreamingDetector for StreamingOneLiner {
    fn name(&self) -> String {
        format!(
            "{} (stream): {}",
            tsad_detectors::registry::display::ONE_LINER,
            self.name
        )
    }

    fn push(&mut self, x: f64) -> Option<f64> {
        self.root.push(x)
    }

    fn finish(&mut self) -> Vec<f64> {
        self.root.finish()
    }

    fn reset(&mut self) {
        self.root.reset();
    }

    fn score_offset(&self) -> usize {
        self.depth
    }

    fn lag(&self) -> usize {
        self.delay - self.depth
    }

    fn memory_bound(&self) -> usize {
        self.root.memory_bound()
    }

    fn save_state(&self, w: &mut CkptWriter) {
        self.root.save(w);
    }

    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        self.root.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::TimeSeries;
    use tsad_detectors::Detector;

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let noise = (((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64
                    / (1u64 << 24) as f64)
                    - 0.5;
                (i as f64 * 0.11).sin() * 2.0 + noise + if i == 2 * n / 3 { 5.0 } else { 0.0 }
            })
            .collect()
    }

    /// The paper's equation shapes (Table 1 search space).
    fn panel() -> Vec<OneLiner> {
        vec![
            // Eq. 3: abs(diff(TS)) > c
            OneLiner::new(Expr::Ts.diff().abs(), Expr::Const(1.8)),
            // Eq. 4 (signed): diff(TS) > c
            OneLiner::new(Expr::Ts.diff(), Expr::Const(1.8)),
            // frozen-signal: movstd(TS, k) < c  ⇒  c − movstd > 0 form
            OneLiner::new(Expr::Const(0.05), Expr::Ts.movstd(11)),
            // Eq. 5: TS − movmean(TS, k) > c * movstd(TS, k)
            OneLiner::new(
                Expr::Ts.minus(Expr::Ts.movmean(21)),
                Expr::Ts.movstd(21).scale(2.5),
            ),
            // Eq. 6: abs(diff(TS)) − movmean(abs(diff(TS)), k) > c * movstd(...)
            OneLiner::new(
                Expr::Ts
                    .diff()
                    .abs()
                    .minus(Expr::Ts.diff().abs().movmean(15)),
                Expr::Ts.diff().abs().movstd(15).scale(3.0),
            ),
            // mixed windows on the two sides (unequal delays exercise the
            // Bin queues)
            OneLiner::new(Expr::Ts.movmean(5), Expr::Ts.movmean(41)),
            // movmax/movmin
            OneLiner::new(
                Expr::MovMax(Box::new(Expr::Ts), 9),
                Expr::MovMin(Box::new(Expr::Ts), 31).plus(Expr::Const(3.0)),
            ),
        ]
    }

    #[test]
    fn compiled_panel_is_bitwise_batch_after_depth() {
        let xs = series(500);
        let ts = TimeSeries::from_values(xs.clone()).unwrap();
        for ol in panel() {
            let batch = ol.score_values(&xs).unwrap();
            let mut s = StreamingOneLiner::compile(&ol).unwrap();
            let got = s.score_stream(&xs);
            let d = s.score_offset();
            assert_eq!(got.len(), xs.len() - d, "{ol}: output count");
            for (i, (a, b)) in batch[d..].iter().zip(&got).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{ol} i={}: batch {a} vs stream {b}",
                    i + d
                );
            }
            // and via the Detector trait (same padding story)
            let det = ol.score(&ts, 0).unwrap();
            assert_eq!(det.len(), xs.len());
            // reset → identical replay
            s.reset();
            assert_eq!(s.score_stream(&xs), got, "{ol}: reset replay");
        }
    }

    #[test]
    fn depth_and_lag_follow_the_ast() {
        // Eq. 6 shape: depth 1 (one diff), delay 1 + (15−1)/2 = 8
        let ol = OneLiner::new(
            Expr::Ts
                .diff()
                .abs()
                .minus(Expr::Ts.diff().abs().movmean(15)),
            Expr::Ts.diff().abs().movstd(15).scale(3.0),
        );
        let s = StreamingOneLiner::compile(&ol).unwrap();
        assert_eq!(s.score_offset(), 1);
        assert_eq!(s.lag(), 7);
        assert!(s.memory_bound() >= 30);
        assert!(
            s.memory_bound() < 200,
            "bound should be O(k), got {}",
            s.memory_bound()
        );
    }

    #[test]
    fn constant_threshold_broadcasts_across_depth() {
        // Const is depth-polymorphic: scaled consts pair with a depth-1 lhs
        let ol = OneLiner::new(
            Expr::Ts.diff().abs(),
            Expr::Const(0.9).scale(2.0).plus(Expr::Const(0.2)),
        );
        let xs = series(60);
        let batch = ol.score_values(&xs).unwrap();
        let mut s = StreamingOneLiner::compile(&ol).unwrap();
        let got = s.score_stream(&xs);
        assert_eq!(got.len(), 59);
        for (a, b) in batch[1..].iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn depth_mismatch_without_a_constant_is_rejected() {
        let ol = OneLiner::new(Expr::Ts.diff(), Expr::Ts.movstd(5));
        assert!(StreamingOneLiner::compile(&ol).is_err());
    }

    #[test]
    fn memory_stays_bounded_on_long_streams() {
        let ol = OneLiner::new(Expr::Ts.movmean(5), Expr::Ts.movmean(41));
        let mut s = StreamingOneLiner::compile(&ol).unwrap();
        let bound = s.memory_bound();
        let mut emitted = 0usize;
        for i in 0..50_000 {
            if s.push((i as f64 * 0.01).sin()).is_some() {
                emitted += 1;
            }
        }
        assert_eq!(s.memory_bound(), bound);
        assert_eq!(emitted, 50_000 - s.lag());
        // Bin queue backlog is bounded by the delay gap
        if let Node::Bin { qa, qb, gap, .. } = &s.root {
            assert!(qa.len() <= gap + 1, "qa backlog {} > gap {}", qa.len(), gap);
            assert!(qb.len() <= gap + 1);
        } else {
            panic!("root should be a Bin");
        }
    }
}
