//! Streaming left matrix profile — the bounded-memory port of
//! [`OnlineDiscordDetector`](tsad_detectors::matrix_profile::OnlineDiscordDetector).
//!
//! The batch left profile already respects causality (window `i` is only
//! compared against windows `j ≤ i − excl`), but it holds the whole series.
//! This port retains a sliding **horizon** of the most recent `H` windows
//! and maintains the STOMP dot-product recurrence along diagonals as
//! samples arrive: when window `i` completes, every retained dot
//! `QT(j, i−1)` becomes `QT(j+1, i)` with one multiply-add, and the one
//! diagonal entering the horizon is seeded with a direct `O(m)` dot
//! product. Per-push work is `O(H + m)`; memory is `O(H + m)`.
//!
//! ## Equivalence
//!
//! With `horizon ≥ count` the admissible-neighbor set matches the batch
//! left profile exactly, but the arithmetic does not: the batch seeds each
//! diagonal from an FFT sliding dot product and takes window moments from
//! mean-shifted prefix sums, while the stream seeds diagonals with direct
//! summation and computes two-pass moments. The scores therefore agree to a
//! floating-point **tolerance** (≈1e-6 on well-conditioned signals), not
//! bitwise — this is the one detector family the equivalence harness checks
//! in [`EquivalenceMode::Tolerance`](crate::EquivalenceMode) rather than
//! bitwise mode.

use std::collections::VecDeque;

use tsad_core::ckpt::{corrupt, CkptReader, CkptState, CkptWriter};
use tsad_core::dist::dot_to_znorm_dist;
use tsad_core::error::{CoreError, Result};
use tsad_core::ops::incremental::RingBuffer;
use tsad_detectors::matrix_profile::{exclusion_zone, ProfileMetric};

use crate::StreamingDetector;

/// Per-window summary retained for the horizon.
#[derive(Debug, Clone, Copy)]
struct WindowStats {
    mean: f64,
    std: f64,
    sq_norm: f64,
}

/// Streaming left-matrix-profile discord detector.
///
/// Emits one point score per sample (lag `m − 1`): the maximum left-profile
/// value among the windows covering the point, exactly the expansion
/// [`MatrixProfile::point_scores`](tsad_detectors::matrix_profile::MatrixProfile::point_scores)
/// performs. Warm-up windows (`i < excl + 2m`) score 0, matching the batch
/// convention that early windows carry no evidence.
#[derive(Debug, Clone)]
pub struct StreamingLeftDiscord {
    m: usize,
    excl: usize,
    metric: ProfileMetric,
    horizon: usize,
    /// Raw samples; window `j` needs `x[j − 1 .. j + m]` for the recurrence,
    /// so capacity is `horizon + m + 1`.
    values: RingBuffer,
    /// `dots[idx] = QT(dots_lo + idx, i_cur)` for the retained diagonals.
    dots: VecDeque<f64>,
    dots_lo: usize,
    /// Moments/norms for the retained windows `[i_cur − len + 1, i_cur]`.
    wstats: VecDeque<WindowStats>,
    /// Last `≤ m` window-profile values, for the point-score expansion.
    tail: VecDeque<f64>,
    pushed: usize,
    scratch: Vec<f64>,
}

impl StreamingLeftDiscord {
    /// Creates the detector: subsequence length `m ≥ 2`, retained-window
    /// horizon `horizon ≥ excl(m)`. Choose `horizon ≥ n − m + 1` for exact
    /// agreement (to tolerance) with the batch left profile.
    pub fn new(m: usize, metric: ProfileMetric, horizon: usize) -> Result<Self> {
        if m < 2 {
            return Err(CoreError::BadWindow { window: m, len: 0 });
        }
        let excl = exclusion_zone(m);
        if horizon < excl {
            return Err(CoreError::BadParameter {
                name: "horizon",
                value: horizon as f64,
                expected: "horizon >= exclusion_zone(m), or no window ever \
                           has an admissible left neighbor",
            });
        }
        Ok(Self {
            m,
            excl,
            metric,
            horizon,
            values: RingBuffer::new(horizon + m + 1)?,
            dots: VecDeque::new(),
            dots_lo: 0,
            wstats: VecDeque::new(),
            tail: VecDeque::new(),
            pushed: 0,
            scratch: Vec::with_capacity(m),
        })
    }

    fn val(&self, idx: usize) -> f64 {
        // invariant: callers only index diagonals/windows inside the
        // horizon the ring was sized for (capacity = horizon + m + 1)
        self.values
            .get(idx)
            .expect("sample within the retained horizon")
    }

    /// Direct O(m) dot product of windows `j` and `i` (both retained).
    fn direct_dot(&self, j: usize, i: usize) -> f64 {
        (0..self.m).map(|o| self.val(j + o) * self.val(i + o)).sum()
    }

    /// Two-pass moments + squared norm of the just-completed window `i`.
    fn window_stats(&mut self, i: usize) -> WindowStats {
        self.values.extract(i, i + self.m, &mut self.scratch);
        let mf = self.m as f64;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for &v in &self.scratch {
            sum += v;
            sq += v * v;
        }
        let mean = sum / mf;
        let mut acc = 0.0;
        for &v in &self.scratch {
            let d = v - mean;
            acc += d * d;
        }
        WindowStats {
            mean,
            std: (acc / mf).sqrt(),
            sq_norm: sq,
        }
    }

    /// Left-profile value of window `i` over the retained horizon.
    ///
    /// `dots` and `wstats` advance in lockstep over neighbors
    /// `j = dots_lo ..= i − excl`, as iterators rather than per-element
    /// deque indexing (each `VecDeque` index costs wraparound arithmetic
    /// and a bounds check — this loop is the `O(H)` hot path of every
    /// push). The metric dispatch is hoisted out of the loop; the per-pair
    /// arithmetic is unchanged, so scores are bitwise identical to the
    /// indexed form.
    fn profile_of(&self, i: usize, cur: WindowStats) -> f64 {
        if i < self.excl + 2 * self.m {
            return 0.0; // batch warm-up convention
        }
        let hi = i - self.excl;
        let take = hi - self.dots_lo + 1;
        // wstats slot for j = dots_lo is len − 1 − (i − dots_lo); each
        // subsequent neighbor is the next slot.
        let start_w = self.wstats.len() - 1 - (i - self.dots_lo);
        let pairs = self
            .dots
            .iter()
            .take(take)
            .zip(self.wstats.iter().skip(start_w));
        let mut best = f64::INFINITY;
        match self.metric {
            ProfileMetric::ZNormalized => {
                for (&dot, s) in pairs {
                    let d = dot_to_znorm_dist(dot, self.m, cur.mean, cur.std, s.mean, s.std);
                    if d < best {
                        best = d;
                    }
                }
            }
            ProfileMetric::Euclidean => {
                for (&dot, s) in pairs {
                    let d = (cur.sq_norm + s.sq_norm - 2.0 * dot).max(0.0).sqrt();
                    if d < best {
                        best = d;
                    }
                }
            }
        }
        if best.is_finite() {
            best
        } else {
            0.0 // no admissible neighbor in the horizon: no evidence
        }
    }

    fn tail_max(&self) -> f64 {
        self.tail.iter().copied().fold(0.0f64, f64::max)
    }
}

impl StreamingDetector for StreamingLeftDiscord {
    fn name(&self) -> String {
        let metric = match self.metric {
            ProfileMetric::ZNormalized => "znorm",
            ProfileMetric::Euclidean => "euclid",
        };
        format!(
            "{} (stream, m={}, {metric}, horizon={})",
            tsad_detectors::registry::display::LEFT_DISCORD,
            self.m,
            self.horizon
        )
    }

    fn push(&mut self, x: f64) -> Option<f64> {
        self.values.push(x);
        self.pushed += 1;
        if self.pushed < self.m {
            return None;
        }
        let i = self.pushed - self.m; // just-completed window index
        let cur = self.window_stats(i);

        if i == 0 {
            self.dots.push_back(cur.sq_norm); // QT(0, 0) is the self-dot
        } else {
            // Advance every retained diagonal one row:
            // QT(j+1, i) = QT(j, i−1) − x[i−1]·x[j] + x[i+m−1]·x[j+m].
            let xl = self.val(i - 1);
            let xr = self.val(i + self.m - 1);
            let m = self.m;
            let values = &self.values;
            for (j_old, dot) in (self.dots_lo..).zip(self.dots.iter_mut()) {
                let vl = values.get(j_old).expect("sample within horizon");
                let vr = values.get(j_old + m).expect("sample within horizon");
                *dot = *dot - xl * vl + xr * vr;
            }
            self.dots_lo += 1;
            // seed the diagonal that (re-)enters the horizon with a direct
            // dot product — at most one per push in steady state
            let lo_target = i.saturating_sub(self.horizon);
            while self.dots_lo > lo_target {
                self.dots_lo -= 1;
                let d = self.direct_dot(self.dots_lo, i);
                self.dots.push_front(d);
            }
            while self.dots_lo < lo_target {
                self.dots.pop_front();
                self.dots_lo += 1;
            }
        }

        self.wstats.push_back(cur);
        while self.wstats.len() > self.horizon + 1 {
            self.wstats.pop_front();
        }

        let p = self.profile_of(i, cur);
        self.tail.push_back(p);
        if self.tail.len() > self.m {
            self.tail.pop_front();
        }
        // point i is now covered only by completed windows [i − m + 1, i]
        Some(self.tail_max())
    }

    fn finish(&mut self) -> Vec<f64> {
        // remaining points: the last m − 1 (or all, on streams shorter than
        // one window) — point p is covered by windows [max(0, p−m+1),
        // count−1], a suffix of the tail that shrinks once p ≥ m
        let emitted = self.pushed.saturating_sub(self.m - 1).min(self.pushed);
        let mut out = Vec::with_capacity(self.pushed - emitted);
        for p in emitted..self.pushed {
            if p >= self.m {
                self.tail.pop_front();
            }
            out.push(self.tail_max());
        }
        out
    }

    fn reset(&mut self) {
        self.values.clear();
        self.dots.clear();
        self.dots_lo = 0;
        self.wstats.clear();
        self.tail.clear();
        self.pushed = 0;
        self.scratch.clear();
    }

    fn lag(&self) -> usize {
        self.m - 1
    }

    fn memory_bound(&self) -> usize {
        self.values.capacity() + 4 * (self.horizon + 1) + 2 * self.m
    }

    fn save_state(&self, w: &mut CkptWriter) {
        self.values.save(w);
        w.f64_seq(self.dots.len(), self.dots.iter().copied());
        w.usize(self.dots_lo);
        w.usize(self.wstats.len());
        for s in &self.wstats {
            w.f64(s.mean);
            w.f64(s.std);
            w.f64(s.sq_norm);
        }
        w.f64_seq(self.tail.len(), self.tail.iter().copied());
        w.usize(self.pushed);
    }

    fn load_state(&mut self, r: &mut CkptReader<'_>) -> Result<()> {
        self.values.load(r)?;
        self.dots = r.f64_vec()?.into();
        self.dots_lo = r.usize()?;
        let n_stats = r.usize()?;
        if n_stats > self.horizon + 1 {
            return Err(corrupt(format!(
                "discord retains {n_stats} window stats but horizon is {}",
                self.horizon
            )));
        }
        self.wstats.clear();
        for _ in 0..n_stats {
            self.wstats.push_back(WindowStats {
                mean: r.f64()?,
                std: r.f64()?,
                sq_norm: r.f64()?,
            });
        }
        self.tail = r.f64_vec()?.into();
        self.pushed = r.usize()?;
        self.scratch.clear();
        if self.pushed != self.values.next_index()
            || self.tail.len() > self.m
            || self.dots.len() > self.horizon + 1
        {
            return Err(corrupt(format!(
                "discord counters inconsistent: pushed {}, ring next {}, \
                 tail {}, dots {}",
                self.pushed,
                self.values.next_index(),
                self.tail.len(),
                self.dots.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsad_core::TimeSeries;
    use tsad_detectors::matrix_profile::OnlineDiscordDetector;
    use tsad_detectors::Detector;

    fn anomalous_sine(n: usize, period: usize, at: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let base = (i as f64 * std::f64::consts::TAU / period as f64).sin();
                if i >= at && i < at + period / 2 {
                    base * 0.2 + 0.8
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn full_horizon_matches_batch_left_profile_to_tolerance() {
        let x = anomalous_sine(500, 25, 360);
        let ts = TimeSeries::from_values(x.clone()).unwrap();
        for m in [16usize, 25] {
            let batch = OnlineDiscordDetector::new(m).score(&ts, 0).unwrap();
            let mut s = StreamingLeftDiscord::new(m, ProfileMetric::ZNormalized, x.len()).unwrap();
            let got = s.score_stream(&x);
            assert_eq!(got.len(), batch.len(), "m={m}");
            for (i, (a, b)) in batch.iter().zip(&got).enumerate() {
                assert!((a - b).abs() < 1e-6, "m={m} i={i}: batch {a} vs stream {b}");
            }
            // reset replays identically
            s.reset();
            assert_eq!(s.score_stream(&x), got, "m={m} reset");
        }
    }

    #[test]
    fn euclidean_metric_matches_batch_too() {
        let x = anomalous_sine(400, 20, 300);
        let ts = TimeSeries::from_values(x.clone()).unwrap();
        let m = 20;
        let batch = tsad_detectors::matrix_profile::left_stomp(&x, m, ProfileMetric::Euclidean)
            .unwrap()
            .point_scores(ts.len());
        let mut s = StreamingLeftDiscord::new(m, ProfileMetric::Euclidean, x.len()).unwrap();
        let got = s.score_stream(&x);
        for (i, (a, b)) in batch.iter().zip(&got).enumerate() {
            assert!((a - b).abs() < 1e-6, "i={i}: {a} vs {b}");
        }
    }

    #[test]
    fn bounded_horizon_still_flags_the_novel_cycle() {
        let x = anomalous_sine(2000, 25, 1700);
        let m = 25;
        // horizon of 300 windows ≪ 1976 total
        let mut s = StreamingLeftDiscord::new(m, ProfileMetric::ZNormalized, 300).unwrap();
        let bound = s.memory_bound();
        let got = s.score_stream(&x);
        assert_eq!(got.len(), x.len());
        assert_eq!(s.memory_bound(), bound, "memory bound must not grow");
        let peak = got
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert!((1670..=1740).contains(&peak), "peak at {peak}");
    }

    #[test]
    fn emission_schedule_and_short_streams() {
        let mut s = StreamingLeftDiscord::new(8, ProfileMetric::ZNormalized, 64).unwrap();
        assert_eq!(s.lag(), 7);
        for i in 0..7 {
            assert_eq!(s.push(i as f64), None, "push {i}");
        }
        assert!(s.push(7.0).is_some());
        assert_eq!(s.finish().len(), 7);
        // shorter than one window: all points drain at finish as zeros
        s.reset();
        s.push(1.0);
        s.push(2.0);
        assert_eq!(s.finish(), vec![0.0, 0.0]);
        // parameter validation
        assert!(StreamingLeftDiscord::new(1, ProfileMetric::ZNormalized, 10).is_err());
        assert!(StreamingLeftDiscord::new(10, ProfileMetric::ZNormalized, 2).is_err());
    }
}
