//! Versioned checkpoint/restore for streaming detectors.
//!
//! A checkpoint is a sealed [`tsad_core::ckpt`] blob with a fixed envelope:
//!
//! ```text
//! magic  u32  = 0x5453_434B ("TSCK")
//! version u32 = 1
//! name   str  — the detector's `name()`, used as a configuration fingerprint
//! state  ...  — detector-specific dynamic state (`save_state`)
//! digest u64  — FNV-1a/64 over everything above (added by the codec)
//! ```
//!
//! The detector's configuration (windows, train lengths, thresholds, the
//! compiled one-liner equation) is **not** serialized: every `name()` in
//! this crate embeds its parameters, so the name doubles as a fingerprint
//! and [`restore`] refuses to load a blob into a differently-configured
//! instance. Restore therefore means: construct the detector exactly as it
//! was constructed originally, then call [`restore`] to rehydrate its
//! dynamic state.
//!
//! ## Resume contract
//!
//! For every detector `D` in this crate, any split point `k`, and any input:
//! checkpointing after `k` pushes, restoring into a fresh identically-
//! configured instance, and pushing the remaining samples yields outputs
//! **bitwise identical** to the uninterrupted run — at any thread count
//! (verified at 1/2/8 by `tests/checkpoint_equivalence.rs`).

use crate::StreamingDetector;
use tsad_core::ckpt::{corrupt, CkptReader, CkptWriter};
use tsad_core::error::Result;

/// Envelope magic: `"TSCK"` in big-endian byte order.
pub const CKPT_MAGIC: u32 = 0x5453_434B;

/// Current envelope version. Bump when any detector's state layout changes.
pub const CKPT_VERSION: u32 = 1;

/// Serializes `det` into a sealed, versioned checkpoint blob.
pub fn checkpoint(det: &dyn StreamingDetector) -> Vec<u8> {
    let mut w = CkptWriter::new();
    w.u32(CKPT_MAGIC);
    w.u32(CKPT_VERSION);
    w.str(&det.name());
    det.save_state(&mut w);
    w.finish()
}

/// Rehydrates `det` from a blob produced by [`checkpoint`].
///
/// `det` must be configured identically to the instance that was
/// checkpointed (same constructor arguments); the embedded name
/// fingerprint enforces this. On any error the detector is reset rather
/// than left half-loaded.
pub fn restore(det: &mut dyn StreamingDetector, bytes: &[u8]) -> Result<()> {
    let result = try_restore(det, bytes);
    if result.is_err() {
        det.reset();
    }
    result
}

fn try_restore(det: &mut dyn StreamingDetector, bytes: &[u8]) -> Result<()> {
    let mut r = CkptReader::new(bytes)?;
    let magic = r.u32()?;
    if magic != CKPT_MAGIC {
        return Err(corrupt(format!(
            "bad magic {magic:#010x}, expected {CKPT_MAGIC:#010x}"
        )));
    }
    let version = r.u32()?;
    if version != CKPT_VERSION {
        return Err(corrupt(format!(
            "unsupported checkpoint version {version}, this build reads {CKPT_VERSION}"
        )));
    }
    let name = r.string()?;
    if name != det.name() {
        return Err(corrupt(format!(
            "configuration fingerprint mismatch: blob is for `{name}`, \
             detector is `{}`",
            det.name()
        )));
    }
    det.reset();
    det.load_state(&mut r)?;
    r.done()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StreamingCusum, StreamingGlobalZScore};
    use tsad_detectors::cusum::Cusum;

    #[test]
    fn envelope_rejects_wrong_magic_version_and_name() {
        let mut det = StreamingGlobalZScore::new(10).unwrap();
        for i in 0..25 {
            det.push(i as f64 * 0.3);
        }
        let blob = checkpoint(&det);

        // right detector, right config: round-trips
        let mut fresh = StreamingGlobalZScore::new(10).unwrap();
        restore(&mut fresh, &blob).unwrap();

        // differently-configured instance: fingerprint mismatch
        let mut other = StreamingGlobalZScore::new(11).unwrap();
        assert!(restore(&mut other, &blob).is_err());

        // different detector entirely
        let mut cusum = StreamingCusum::new(Cusum::default(), 10).unwrap();
        assert!(restore(&mut cusum, &blob).is_err());

        // wrong magic (flip a payload byte; the checksum catches it first,
        // so rebuild a well-sealed blob with a bad magic instead)
        let mut w = tsad_core::ckpt::CkptWriter::new();
        w.u32(0xBAD0_BAD0);
        w.u32(CKPT_VERSION);
        w.str(&det.name());
        det.save_state(&mut w);
        let bad = w.finish();
        assert!(restore(&mut fresh, &bad).is_err());

        // wrong version
        let mut w = tsad_core::ckpt::CkptWriter::new();
        w.u32(CKPT_MAGIC);
        w.u32(CKPT_VERSION + 1);
        w.str(&det.name());
        det.save_state(&mut w);
        let bad = w.finish();
        assert!(restore(&mut fresh, &bad).is_err());
    }

    #[test]
    fn failed_restore_leaves_a_usable_detector() {
        let mut det = StreamingGlobalZScore::new(5).unwrap();
        assert!(restore(&mut det, b"definitely not a checkpoint").is_err());
        // the detector still works from scratch
        let out = det.score_stream(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn truncated_blob_is_an_error_not_a_panic() {
        let mut det = StreamingGlobalZScore::new(10).unwrap();
        for i in 0..25 {
            det.push(i as f64);
        }
        let blob = checkpoint(&det);
        for cut in 0..blob.len() {
            let mut fresh = StreamingGlobalZScore::new(10).unwrap();
            assert!(restore(&mut fresh, &blob[..cut]).is_err(), "cut at {cut}");
        }
    }
}
