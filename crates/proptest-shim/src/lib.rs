//! Offline stand-in for the subset of the `proptest` API used in this
//! workspace.
//!
//! The build environment cannot fetch crates.io dependencies, so the real
//! `proptest` is unavailable. This shim keeps every property test in the
//! repository source-compatible:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * range / `vec` / `bool::weighted` / `option::of` strategies,
//! * [`Strategy::prop_map`] / [`Strategy::prop_flat_map`] and tuple
//!   composition,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (deterministic across runs and platforms) and failing
//! cases are **not shrunk** — the panic message reports the raw
//! counterexample inputs instead.

use std::fmt::Debug;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Error raised inside a property-test body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case does not count, try another.
    Reject(String),
    /// `prop_assert!`-family failure — the property is violated.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic RNG for a named test: every run of the suite generates the
/// same cases (FNV-1a over the test path seeds the stream).
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, dynamically-typed strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<T>>);

trait StrategyObject<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let first = self.base.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String-pattern strategy: a `&str` literal used as a strategy generates
/// strings matching it, as in the real crate. Only the pattern shape this
/// repository uses is supported — `.{lo,hi}` (between `lo` and `hi`
/// arbitrary printable characters); anything else panics loudly rather
/// than silently generating the wrong distribution.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!("proptest shim: unsupported string pattern {self:?} (only \".{{lo,hi}}\")")
        });
        let len = rng.gen_range(lo..=hi);
        // Printable ASCII plus the separators the UCR name parser cares
        // about, so "never panics" tests exercise interesting inputs.
        const POOL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ\
                              0123456789_-. ,:/\\\t";
        (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())] as char)
            .collect()
    }
}

/// Parses `.{lo,hi}` into `(lo, hi)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for a full-domain draw of a primitive type.
#[derive(Debug, Default, Clone, Copy)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(core::marker::PhantomData)
            }
        }
    )*};
}
impl_any!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// The canonical strategy for `T` (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection-size specification accepted by [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Strategy namespace (mirror of `proptest::prelude::prop`).
pub mod prop {
    /// `Vec` strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy producing vectors of `element` draws with a length in
        /// `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Builds a [`VecStrategy`].
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                use rand::Rng;
                let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Strategy yielding `true` with probability `p`.
        #[derive(Debug, Clone, Copy)]
        pub struct Weighted(pub f64);

        /// `true` with probability `probability_true`.
        pub fn weighted(probability_true: f64) -> Weighted {
            Weighted(probability_true)
        }

        impl Strategy for Weighted {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                use rand::Rng;
                rng.gen_bool(self.0)
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy yielding `None` a quarter of the time, `Some(inner)`
        /// otherwise (the real crate's default weighting).
        pub struct OptionStrategy<S>(S);

        /// Wraps `inner` draws in `Option`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                use rand::Rng;
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests (mirror of `proptest::proptest!`).
///
/// Supports the forms used in this repository: an optional leading
/// `#![proptest_config(...)]`, then `#[test] fn name(pat in strategy, ...)
/// { body }` items.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match result {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(what)) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(20).max(1024) {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({}): {}",
                                stringify!($name), rejected, what
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case #{}: {}",
                            stringify!($name), accepted, msg
                        );
                    }
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn flat_map_threads_values(
            (n, v) in (2usize..6).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0.0f64..1.0, n..=n))
            }),
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_form_parses(mask in prop::collection::vec(any::<bool>(), 0..20)) {
            prop_assert!(mask.len() < 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for_test("x");
        let mut b = crate::rng_for_test("x");
        let sa = (0.0f64..1.0).generate(&mut a);
        let sb = (0.0f64..1.0).generate(&mut b);
        assert_eq!(sa.to_bits(), sb.to_bits());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        inner();
    }
}
