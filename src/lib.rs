//! # tsad — a reproduction of Wu & Keogh (ICDE 2022)
//!
//! *"Current Time Series Anomaly Detection Benchmarks are Flawed and are
//! Creating the Illusion of Progress."*
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — time series, labels, datasets, vectorized ops, statistics,
//!   FFT/MASS, DTW, SAX;
//! * [`detectors`] — one-liners (+ the Table 1 brute-force search), matrix
//!   profile / discords / HOT SAX / MERLIN, the Telemanom substitute, and
//!   naive baselines;
//! * [`synth`] — seeded simulators of the flawed benchmarks (Yahoo,
//!   Numenta, NASA, OMNI) and the physiological/gait generators;
//! * [`eval`] — scoring protocols and the four flaw analyzers;
//! * [`stream`] — bounded-memory streaming ports of the detector panel,
//!   with a replay harness and batch-equivalence checking;
//! * [`archive`] — the UCR-style single-anomaly archive (naming, IO,
//!   validation, builder, contest).
//!
//! ## Quickstart
//!
//! ```
//! use tsad::prelude::*;
//!
//! // generate a simulated Yahoo A1 series with its (flawed) labels
//! let series = tsad::synth::yahoo::generate(7, YahooFamily::A1, 1);
//!
//! // is it trivially solvable with one line of "MATLAB"?
//! let solution = one_liner_search(
//!     series.dataset.values(),
//!     series.dataset.labels(),
//!     &SearchConfig::default(),
//! )
//! .unwrap();
//! if let Some(sol) = solution {
//!     println!("{} solves {}", sol.one_liner, series.dataset.name());
//! }
//! ```

pub use tsad_archive as archive;
pub use tsad_core as core;
pub use tsad_detectors as detectors;
pub use tsad_eval as eval;
pub use tsad_obs as obs;
pub use tsad_stream as stream;
pub use tsad_synth as synth;

/// The most common imports, renamed to avoid collisions.
pub mod prelude {
    pub use tsad_core::{Dataset, Labels, Region, TimeSeries};
    pub use tsad_detectors::baselines::{GlobalZScore, MovingAvgResidual, NaiveLastPoint};
    pub use tsad_detectors::matrix_profile::DiscordDetector;
    pub use tsad_detectors::oneliner::{search as one_liner_search, Equation, SearchConfig};
    pub use tsad_detectors::telemanom::Telemanom;
    pub use tsad_detectors::{most_anomalous_point, Detector};
    pub use tsad_eval::scoring::{best_f1_over_thresholds, F1Protocol};
    pub use tsad_eval::streaming::{detection_delays, DelayReport};
    pub use tsad_eval::ucr::{ucr_accuracy, ucr_correct};
    pub use tsad_stream::{
        check_equivalence, replay as stream_replay, BatchAdapter, EquivalenceMode, ReplayConfig,
        StreamingDetector, StreamingOneLiner,
    };
    pub use tsad_synth::yahoo::Family as YahooFamily;
}
