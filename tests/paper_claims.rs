//! Cross-crate integration tests: the paper's headline claims, verified
//! end-to-end through the public facade.
//!
//! These use subsampled workloads so they stay fast in debug mode; the
//! full-size reproductions live in the `repro` binary and the Criterion
//! benches.

use tsad::eval::flaws::{density, position, triviality};
use tsad::prelude::*;

/// §2.2 / Table 1 — a large majority of simulated Yahoo series yield to a
/// one-liner, and the *hard* archetypes do not.
#[test]
fn most_yahoo_series_are_trivial() {
    let config = SearchConfig::default();
    let mut solved = 0;
    let mut total = 0;
    // First 10 per family: quota ordering puts solvable archetypes first in
    // every family, so this subsample should be fully or almost fully
    // trivial.
    for family in [
        YahooFamily::A1,
        YahooFamily::A2,
        YahooFamily::A3,
        YahooFamily::A4,
    ] {
        for index in 1..=10 {
            let series = tsad::synth::yahoo::generate(42, family, index);
            total += 1;
            if triviality::analyze(&series.dataset, &config)
                .unwrap()
                .is_trivial()
            {
                solved += 1;
            }
        }
    }
    assert!(solved as f64 / total as f64 > 0.85, "{solved}/{total}");
}

/// §2.2 — the hard tail of A1 (indices 45..67 are the Hard archetype by
/// quota) resists the one-liner search.
#[test]
fn hard_a1_series_are_not_trivial() {
    let config = SearchConfig::default();
    let mut unsolved = 0;
    for index in 48..=55 {
        let series = tsad::synth::yahoo::generate(42, YahooFamily::A1, index);
        if !triviality::analyze(&series.dataset, &config)
            .unwrap()
            .is_trivial()
        {
            unsolved += 1;
        }
    }
    assert!(
        unsolved >= 6,
        "hard archetype should mostly resist: {unsolved}/8"
    );
}

/// §2.3 — the benchmark simulators reproduce the density pathologies.
#[test]
fn density_flaws_reproduce() {
    let criteria = density::DensityCriteria::default();
    let dense = tsad::synth::nasa::dense_anomaly(42, 0.6);
    assert!(density::analyze(&dense).is_flawed(&criteria));
    let crowded = tsad::synth::nasa::crowded_anomalies(42, 21);
    let report = density::analyze(&crowded);
    assert_eq!(report.region_count, 21);
    assert!(report.is_flawed(&criteria));
}

/// §2.5 / Fig. 10 — A1 anomaly positions are end-biased; the naive
/// last-point strategy profits.
#[test]
fn run_to_failure_bias_reproduces() {
    let datasets: Vec<Dataset> = (1..=67)
        .map(|i| tsad::synth::yahoo::generate(42, YahooFamily::A1, i).dataset)
        .collect();
    let report = position::analyze(datasets.iter(), 0.1).unwrap();
    assert!(report.is_biased(0.01), "{report:?}");
    assert!(
        report.naive_last_hit_rate > 0.25,
        "{}",
        report.naive_last_hit_rate
    );
}

/// §3 — the archive rejects multi-anomaly datasets and the file-name
/// codec round-trips through disk.
#[test]
fn archive_roundtrip_through_disk() {
    let dir = std::env::temp_dir().join(format!("tsad-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let entry = tsad::archive::builder::build_entry(
        11,
        tsad::archive::builder::Domain::Robotics,
        tsad::archive::builder::Difficulty::Medium,
    );
    let path = tsad::archive::io::write_dataset(&dir, Some(1), &entry.dataset).unwrap();
    let loaded = tsad::archive::io::read_dataset(&path).unwrap();
    assert_eq!(loaded.train_len(), entry.dataset.train_len());
    assert_eq!(loaded.labels().regions(), entry.dataset.labels().regions());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// §3 / Fig. 12 — end-to-end: build the gait dataset, run the discord
/// detector through the facade, score with the UCR rule.
#[test]
fn gait_discord_end_to_end() {
    let gait = tsad::synth::gait::park_gait(42, 90, 40);
    let detector = DiscordDetector::new(tsad::synth::gait::CYCLE_LEN);
    let predicted =
        most_anomalous_point(&detector, gait.dataset.series(), gait.dataset.train_len()).unwrap();
    assert!(ucr_correct(predicted, gait.dataset.labels()).unwrap());
}

/// §2.6 — a trivial baseline beats random decisively on the flawed
/// benchmarks, once the evaluation has the boundary slop §4.4 calls for
/// (a point spike's |diff| fires on the jump *and* the recovery, one
/// point right of the label — slopless protocols call that half wrong).
#[test]
fn trivial_baseline_beats_random_under_tolerant_f1() {
    let one_liner = tsad::detectors::oneliner::equation(Equation::Eq3, 1, 0.0, 0.0);
    let mut oneliner_sum = 0.0;
    let mut random_sum = 0.0;
    let count = 5;
    for index in 1..=count {
        let dataset = tsad::synth::yahoo::generate(42, YahooFamily::A2, index).dataset;
        let score = one_liner.score(dataset.series(), 0).unwrap();
        let (f1, _) =
            best_f1_over_thresholds(&score, dataset.labels(), F1Protocol::Tolerance(3)).unwrap();
        oneliner_sum += f1;
        let random = tsad::detectors::baselines::RandomDetector::new(index as u64);
        let rscore = random.score(dataset.series(), 0).unwrap();
        let (f1_random, _) =
            best_f1_over_thresholds(&rscore, dataset.labels(), F1Protocol::Tolerance(3)).unwrap();
        random_sum += f1_random;
    }
    let oneliner_mean = oneliner_sum / count as f64;
    let random_mean = random_sum / count as f64;
    assert!(oneliner_mean > 0.9, "{oneliner_mean}");
    assert!(
        oneliner_mean > 2.0 * random_mean,
        "{oneliner_mean} vs {random_mean}"
    );
    // the moving-average residual baseline is also far above random
    let _ = MovingAvgResidual::new(21);
}

/// The facade prelude exposes a coherent API surface.
#[test]
fn prelude_smoke() {
    let ts = TimeSeries::new("smoke", (0..256).map(|i| (i as f64 * 0.2).sin()).collect()).unwrap();
    let labels = Labels::single(256, Region::new(100, 110).unwrap()).unwrap();
    let d = Dataset::unsupervised(ts, labels).unwrap();
    let z = GlobalZScore;
    let s = z.score(d.series(), 0).unwrap();
    assert_eq!(s.len(), 256);
    let last = NaiveLastPoint;
    assert_eq!(most_anomalous_point(&last, d.series(), 0).unwrap(), 255);
    let acc = ucr_accuracy(vec![(105, d.labels())]).unwrap();
    assert_eq!(acc, 1.0);
}
