//! End-to-end archive pipeline: build → write to disk (with manifest) →
//! reload → contest → audit. This is the full §3 workflow a downstream
//! user would run.

use tsad::archive::builder::build_archive;
use tsad::archive::contest::run_contest;
use tsad::archive::io::read_archive_dir;
use tsad::archive::manifest::{read_manifest, write_archive};
use tsad::eval::flaws::audit::{audit, AuditConfig};
use tsad::prelude::*;

#[test]
fn full_archive_pipeline_on_disk() {
    let dir = std::env::temp_dir().join(format!("tsad-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // build + write
    let entries = build_archive(42, 7).unwrap();
    let rows = write_archive(&dir, &entries).unwrap();
    assert_eq!(rows.len(), 7);

    // reload: data files and manifest agree
    let datasets = read_archive_dir(&dir).unwrap();
    assert_eq!(datasets.len(), 7);
    let manifest = read_manifest(&dir).unwrap();
    assert_eq!(manifest.len(), 7);
    let mut files: Vec<&str> = manifest.iter().map(|r| r.file.as_str()).collect();
    files.sort_unstable();
    for (d, f) in datasets.iter().zip(&files) {
        assert_eq!(format!("{}.txt", d.name()), *f);
    }

    // every reloaded dataset keeps the archive invariants
    for d in &datasets {
        assert_eq!(d.labels().region_count(), 1, "{}", d.name());
        assert!(
            d.labels().regions()[0].start >= d.train_len(),
            "{}",
            d.name()
        );
        assert!(d.train_len() > 0, "{}", d.name());
    }

    // contest on the reloaded data: a real detector beats random
    let discord = run_contest(&DiscordDetector::new(128), &datasets).unwrap();
    let random = run_contest(
        &tsad::detectors::baselines::RandomDetector::new(3),
        &datasets,
    )
    .unwrap();
    assert!(
        discord.accuracy() > random.accuracy(),
        "discord {} vs random {}",
        discord.accuracy(),
        random.accuracy()
    );
    assert!(discord.accuracy() >= 0.5, "{}", discord.accuracy());

    // audit on the reloaded data: not trivially dominated, no end bias gift
    let report = audit(datasets.iter(), &AuditConfig::default()).unwrap();
    assert!(
        report.trivial_fraction() < 0.6,
        "{}",
        report.trivial_fraction()
    );
    assert!(
        report.position_bias.naive_last_hit_rate < 0.3,
        "{}",
        report.position_bias.naive_last_hit_rate
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
